"""The fleet controller: a deterministic event loop over a live fleet.

This is the subsystem the paper's motivation (section 2.1) asks for but
its one-shot algorithms stop short of: a provider that *keeps* hosting
workflows as tenants arrive and leave, servers fail and join, and load
drifts away from fairness. The controller consumes the typed events of
:mod:`repro.service.events` and drives the per-event primitives the
experiment layer already provides:

* ``DeployRequest`` -- admission control against remaining fleet
  capacity, then placement with any registered algorithm (sharing the
  fleet's router/cost caches);
* ``UndeployRequest`` -- release a tenant;
* ``ServerFailed`` -- orphan re-homing with the failover experiment's
  worst-fit policy generalised to fleet-wide budgets;
* ``ServerJoined`` -- opportunistic spreading of hosted load onto the
  new capacity, bounded like a rebalance;
* ``LinkFailure`` / ``LinkDegrade`` -- patch the live topology (drop or
  re-parameterise a link), invalidate only the route-delay state via
  :meth:`repro.core.compiled.CompiledInstance.invalidate_routes`, and
  run the tick's drift check immediately -- re-routed traffic may have
  pushed the fleet past the rebalance threshold;
* ``RegionOutage`` -- fail every server of one geo region
  (``{region}/{i}`` naming, see :mod:`repro.scenarios.geo`), then
  re-home all orphans in a single fleet-wide pass;
* ``Tick`` -- fairness-drift check; when the time-penalty share of the
  fleet objective exceeds the configured threshold, a bounded greedy
  rebalance runs and its churn vs. cost-gain is logged, mirroring
  :func:`repro.experiments.incremental.adaptation_report`.

Every decision appends one record to the :class:`~repro.service.log.FleetLog`.
With a deterministic clock (see :class:`~repro.core.clock.StepClock`)
an entire run is a pure function of the initial fleet and the event
list -- replaying a seeded scenario twice produces byte-identical logs
and metrics.

Rebalancing and join-spreading run as step generators on the shared
:class:`~repro.algorithms.runtime.SearchRuntime`: the
:attr:`FleetConfig.rebalance_budget` bounds them (on top of the churn
cap), :meth:`FleetController.preempt_rebalance` cancels the one in
flight at its next step boundary -- e.g. from the
:attr:`FleetController.on_search_step` progress hook when a surge
arrives -- and the applied-moves prefix always leaves the fleet
consistent because every move is only applied after it strictly
improved the fleet objective.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.algorithms.base import get_algorithm
from repro.algorithms.runtime import (
    CancelToken,
    SearchBudget,
    SearchProgress,
    SearchReport,
    SearchRuntime,
    SearchStep,
)
from repro.core.clock import StepClock
from repro.core.compiled import batch_evaluator_or_none
from repro.core.cost import PENALTY_MODES
from repro.core.incremental import MoveEvaluator
from repro.core.migration import MigrationCostModel
from repro.core.rng import coerce_rng
from repro.exceptions import ServiceError
from repro.network.topology import ServerNetwork
from repro.scenarios.geo import region_servers
from repro.service.events import (
    CapacityDrift,
    DeployRequest,
    FleetEvent,
    LinkDegrade,
    LinkFailure,
    RegionOutage,
    ServerFailed,
    ServerJoined,
    Tick,
    UndeployRequest,
    WorkloadDrift,
)
from repro.service.log import FleetLog, FleetMetrics, LogRecord, format_detail
from repro.service.state import (
    ROUTE_INVALIDATION_MODES,
    FleetSnapshot,
    FleetState,
    load_penalty,
)

# StepClock lives in repro.core.clock now (the search runtime needs it
# too); re-exported here because it is part of this module's public API.
__all__ = ["FleetConfig", "FleetController", "StepClock"]


@dataclass(frozen=True)
class FleetConfig:
    """Controller policy knobs.

    Attributes
    ----------
    algorithm:
        Default registered algorithm for tenant placement (deploy
        requests may override per tenant).
    admission_load_limit_s:
        Admission-control capacity: the maximum projected *mean*
        per-server load in seconds the fleet accepts. ``None`` disables
        admission control (everything is admitted).
    drift_threshold:
        A tick triggers a rebalance when the time-penalty share of the
        fleet objective (``penalty_weight * TimePenalty / objective``)
        exceeds this fraction.
    max_moves_per_rebalance:
        Churn bound: at most this many operation moves per rebalance or
        per join-spreading pass.
    rebalance_budget:
        Optional :class:`~repro.algorithms.runtime.SearchBudget` on each
        rebalance / spreading search, on top of the churn bound: an
        evaluation cap or wall-clock deadline stops the scan at the next
        step boundary, keeping whatever improving moves were already
        applied. ``None`` (the default) leaves only the churn bound.
    execution_weight, penalty_weight, penalty_mode:
        Fleet-objective knobs, as in :class:`~repro.core.cost.CostModel`.
    seed:
        Seed of the controller's private RNG (handed to placement
        algorithms that need random initial mappings).
    use_batch:
        Price rebalance / join candidate sets through each tenant's
        shared :class:`~repro.core.batch.BatchEvaluator` (one kernel
        call per tenant per round). Decisions and logs are
        byte-identical either way (only the cache hit/miss counters in
        the metrics differ, because the two paths touch the caches
        differently); the scalar
        :class:`~repro.core.incremental.MoveEvaluator` path is used
        automatically when NumPy is missing.
    parallel_workers:
        Opt-in: when > 1, each rebalance round's per-tenant candidate
        pricing fans out across this many worker processes (one
        :class:`~repro.parallel.worker.PricingTask` per tenant, served
        by a pool the controller keeps across rounds -- call
        :meth:`FleetController.close` when done). The workers run the
        same batch kernel, so the priced floats -- and therefore the
        applied moves and the decision log -- are byte-identical to the
        serial path. Requires ``use_batch``.
    migration:
        Optional :class:`~repro.core.migration.MigrationCostModel`
        pricing what an applied move *costs* (checkpoint transfer over
        the current links plus fixed downtime). When set, every
        rebalance / spreading move is priced and accumulated in
        :attr:`FleetController.migration_paid`, even at weight 0 --
        so a migration-blind controller can still be *billed* for its
        churn in benchmarks without changing a single decision.
    migration_weight:
        Weight of the migration cost in the hysteresis acceptance test:
        a candidate move is accepted only when
        ``objective_after + migration_weight * move_cost`` undercuts
        the current objective by more than :attr:`rebalance_min_gain`.
        0 (the default) keeps decisions byte-identical to a
        migration-blind controller; > 0 requires :attr:`migration`.
    rebalance_min_gain:
        Hysteresis threshold (seconds of objective): moves must clear
        this net gain to be applied. 0 keeps the historical
        strictly-improving test (an epsilon of 1e-12).
    rebalance_cooldown_ticks:
        Per-tenant cooldown: after a tick rebalance moves one of a
        tenant's operations, that tenant's operations are not eligible
        rebalance candidates for this many subsequent ticks --
        dampening move-it-back oscillation under drift. 0 disables.
    route_invalidation:
        How link events (failures/degrades) refresh the shared routing
        caches -- one of
        :data:`~repro.service.state.ROUTE_INVALIDATION_MODES`.
        ``"scoped"`` (default) eagerly recomputes only the route pairs
        whose paths cross a strictly *worsened* link (a failure, or a
        degrade that is no faster and no less laggy) and bulk-refills
        every tenant's delay tables in one pass; improvements and
        upgrades fall back to a full eager recompile, because a better
        link can attract routes that never crossed it -- the asymmetry
        is inherent, not an optimisation choice. ``"eager"`` always
        recompiles the whole table; ``"lazy"`` is the legacy
        drop-and-refill-on-demand policy. All three modes produce
        byte-identical fleet decisions and logs; they differ only in
        when Dijkstra runs (see ``benchmarks/bench_routing.py``).
    """

    algorithm: str = "HeavyOps-LargeMsgs"
    admission_load_limit_s: float | None = None
    drift_threshold: float = 0.35
    max_moves_per_rebalance: int = 4
    rebalance_budget: SearchBudget | None = None
    execution_weight: float = 0.5
    penalty_weight: float = 0.5
    penalty_mode: str = "mad"
    seed: int = 0
    use_batch: bool = True
    parallel_workers: int = 1
    migration: MigrationCostModel | None = None
    migration_weight: float = 0.0
    rebalance_min_gain: float = 0.0
    rebalance_cooldown_ticks: int = 0
    route_invalidation: str = "scoped"

    def __post_init__(self) -> None:
        if self.penalty_mode not in PENALTY_MODES:
            raise ServiceError(
                f"unknown penalty mode {self.penalty_mode!r}; expected one "
                f"of {PENALTY_MODES}"
            )
        if self.route_invalidation not in ROUTE_INVALIDATION_MODES:
            raise ServiceError(
                f"unknown route invalidation mode "
                f"{self.route_invalidation!r}; expected one of "
                f"{ROUTE_INVALIDATION_MODES}"
            )
        if not 0.0 <= self.drift_threshold <= 1.0:
            raise ServiceError("drift_threshold must lie in [0, 1]")
        if self.max_moves_per_rebalance < 0:
            raise ServiceError("max_moves_per_rebalance must be >= 0")
        if self.parallel_workers < 1:
            raise ServiceError("parallel_workers must be >= 1")
        if self.parallel_workers > 1 and not self.use_batch:
            raise ServiceError(
                "parallel_workers requires use_batch (workers price "
                "through the batch kernel)"
            )
        if not (
            math.isfinite(self.migration_weight)
            and self.migration_weight >= 0.0
        ):
            raise ServiceError("migration_weight must be finite and >= 0")
        if self.migration_weight > 0.0 and self.migration is None:
            raise ServiceError(
                "migration_weight > 0 needs a MigrationCostModel "
                "(set FleetConfig.migration)"
            )
        if not (
            math.isfinite(self.rebalance_min_gain)
            and self.rebalance_min_gain >= 0.0
        ):
            raise ServiceError("rebalance_min_gain must be finite and >= 0")
        if self.rebalance_cooldown_ticks < 0:
            raise ServiceError("rebalance_cooldown_ticks must be >= 0")


class FleetController:
    """Event loop owning a :class:`~repro.service.state.FleetState`.

    Parameters
    ----------
    network:
        The initial fleet. Ownership passes to the controller's state.
    config:
        Policy knobs; defaults are reasonable for small fleets.
    clock:
        A zero-argument callable returning seconds. Defaults to
        :func:`time.perf_counter`; pass a :class:`StepClock` for
        deterministic replays.
    """

    def __init__(
        self,
        network: ServerNetwork,
        config: FleetConfig | None = None,
        clock: Callable[[], float] | None = None,
    ):
        self.config = config or FleetConfig()
        # captured before any event mutates the network: checkpointing
        # replays the event history against this initial fleet
        from repro.io.json_codec import network_to_dict

        self._initial_network_doc = network_to_dict(network)
        self.state = FleetState(
            network,
            execution_weight=self.config.execution_weight,
            penalty_weight=self.config.penalty_weight,
            penalty_mode=self.config.penalty_mode,
            route_invalidation=self.config.route_invalidation,
        )
        self.log = FleetLog()
        #: Every event handled so far, in order -- the append-only
        #: event log that checkpoint/restore replays.
        self.history: list[FleetEvent] = []
        self._clock = clock if clock is not None else time.perf_counter
        self._rng = coerce_rng(self.config.seed)
        #: Deterministic work counter: fleet-objective evaluations spent
        #: on rebalancing / spreading decisions.
        self.evaluations = 0
        self._balance_timeline: list[float] = []
        #: Optional per-step observer of in-flight rebalance searches
        #: (receives :class:`~repro.algorithms.runtime.SearchProgress`).
        #: Runs before the cancellation check, so the hook may call
        #: :meth:`preempt_rebalance` on the search it is observing.
        self.on_search_step: Callable[[SearchProgress], None] | None = None
        #: Report of the most recent rebalance / spreading search.
        self.last_rebalance_report: SearchReport | None = None
        self._active_rebalance_cancel: CancelToken | None = None
        self._pricing_runtime = None
        #: Cumulative migration cost (seconds) of every applied move,
        #: priced by :attr:`FleetConfig.migration`. Tracked whenever a
        #: migration model is configured -- weight 0 included -- so a
        #: migration-blind run can still be billed for its churn.
        self.migration_paid = 0.0
        # tenant -> remaining ticks it is excluded from rebalancing
        self._tenant_cooldowns: dict[str, int] = {}

    def close(self) -> None:
        """Release the pricing worker pool, if one was started."""
        if self._pricing_runtime is not None:
            self._pricing_runtime.close()
            self._pricing_runtime = None

    def __enter__(self) -> "FleetController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _pricing_pool(self):
        """The lazily started pricing runtime (parallel_workers > 1)."""
        if self._pricing_runtime is None:
            from repro.parallel.runtime import ParallelRuntime

            self._pricing_runtime = ParallelRuntime(
                self.config.parallel_workers
            )
        return self._pricing_runtime

    def preempt_rebalance(self, reason: str = "") -> bool:
        """Cancel the rebalance currently in flight, if any.

        Cooperative: the search observes the token at its next step
        boundary, so the moves already applied (each one strictly
        improving) are kept and fleet state stays consistent. Returns
        True when there was a search to preempt.
        """
        token = self._active_rebalance_cancel
        if token is None:
            return False
        token.cancel(reason)
        return True

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def handle(self, event: FleetEvent) -> LogRecord:
        """Process one event; append and return its log record."""
        self.history.append(event)
        start = self._clock()
        if isinstance(event, DeployRequest):
            subject, action, details = self._on_deploy(event)
        elif isinstance(event, UndeployRequest):
            subject, action, details = self._on_undeploy(event)
        elif isinstance(event, ServerFailed):
            subject, action, details = self._on_server_failed(event)
        elif isinstance(event, ServerJoined):
            subject, action, details = self._on_server_joined(event)
        elif isinstance(event, WorkloadDrift):
            subject, action, details = self._on_workload_drift(event)
        elif isinstance(event, CapacityDrift):
            subject, action, details = self._on_capacity_drift(event)
        elif isinstance(event, LinkFailure):
            subject, action, details = self._on_link_failure(event)
        elif isinstance(event, LinkDegrade):
            subject, action, details = self._on_link_degrade(event)
        elif isinstance(event, RegionOutage):
            subject, action, details = self._on_region_outage(event)
        elif isinstance(event, Tick):
            subject, action, details = self._on_tick(event)
        else:
            raise ServiceError(
                f"unknown fleet event type {type(event).__name__!r}"
            )
        snapshot = self.state.snapshot()
        details["objective"] = format_detail(snapshot.objective)
        details["balance"] = format_detail(snapshot.balance_index)
        latency = self._clock() - start
        self._balance_timeline.append(snapshot.balance_index)
        return self.log.append(event.kind, subject, action, latency, details)

    def run(self, events: Iterable[FleetEvent]) -> FleetLog:
        """Process *events* in order; return the accumulated log."""
        for event in events:
            self.handle(event)
        return self.log

    def snapshot(self) -> FleetSnapshot:
        """The current aggregate fleet snapshot."""
        return self.state.snapshot()

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    @property
    def initial_network_doc(self) -> dict:
        """The JSON document of the fleet as first constructed."""
        return self._initial_network_doc

    @property
    def clock(self) -> Callable[[], float]:
        """The controller's clock (checkpointing serialises StepClocks)."""
        return self._clock

    def checkpoint(
        self,
        path,
        pending: Sequence[FleetEvent | tuple[FleetEvent, int | None]] = (),
    ):
        """Write a durable checkpoint of this controller to *path*.

        *pending* optionally records not-yet-processed events (e.g. the
        queued remainder of a scenario) so a restore can resume them;
        entries may be bare events or ``(event, priority)`` pairs when
        a work queue's current priorities must survive the round trip.
        See :mod:`repro.service.checkpoint` for the format.
        """
        from repro.service.checkpoint import write_checkpoint

        return write_checkpoint(self, path, pending=pending)

    @classmethod
    def restore(cls, path) -> "FleetController":
        """Rebuild a controller from a checkpoint written by
        :meth:`checkpoint`.

        The event history is replayed from the initial fleet under a
        fresh deterministic clock and the result is verified against
        the checkpointed decision log and snapshot -- byte-identical
        state reproduction, enforced, not assumed. Use
        :func:`repro.service.checkpoint.restore_controller` to also get
        the pending events back.
        """
        from repro.service.checkpoint import restore_controller

        controller, _ = restore_controller(path)
        return controller

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _on_deploy(
        self, event: DeployRequest
    ) -> tuple[str, str, dict[str, str]]:
        state = self.state
        if event.tenant in state:
            return event.tenant, "rejected", {"reason": "duplicate-tenant"}
        cost_model = state.build_cost_model(event.workflow)
        extra = cost_model.total_weighted_cycles()
        projected = state.mean_load_s(extra_cycles=extra)
        limit = self.config.admission_load_limit_s
        if limit is not None and projected > limit:
            return (
                event.tenant,
                "rejected",
                {
                    "reason": "capacity",
                    "projected_load": format_detail(projected),
                    "limit": format_detail(limit),
                },
            )
        name = event.algorithm or self.config.algorithm
        algorithm = get_algorithm(name)()
        deployment = algorithm.deploy(
            event.workflow, state.network, cost_model=cost_model, rng=self._rng
        )
        state.add_tenant(
            event.tenant, event.workflow, deployment, cost_model=cost_model
        )
        return (
            event.tenant,
            "admitted",
            {
                "algorithm": name,
                "operations": format_detail(len(event.workflow)),
                "projected_load": format_detail(projected),
                "servers_used": format_detail(len(deployment.used_servers())),
            },
        )

    def _on_undeploy(
        self, event: UndeployRequest
    ) -> tuple[str, str, dict[str, str]]:
        if event.tenant not in self.state:
            return event.tenant, "rejected", {"reason": "unknown-tenant"}
        record = self.state.remove_tenant(event.tenant)
        self._tenant_cooldowns.pop(event.tenant, None)
        return (
            event.tenant,
            "removed",
            {"operations": format_detail(len(record.workflow))},
        )

    def _on_workload_drift(
        self, event: WorkloadDrift
    ) -> tuple[str, str, dict[str, str]]:
        state = self.state
        if event.tenant not in state:
            return event.tenant, "rejected", {"reason": "unknown-tenant"}
        hosted = state.tenant(event.tenant).workflow
        if sorted(event.workflow.operation_names) != sorted(
            hosted.operation_names
        ):
            return event.tenant, "rejected", {"reason": "operations-changed"}
        state.update_tenant_workflow(event.tenant, event.workflow)
        return (
            event.tenant,
            "drifted",
            {"operations": format_detail(len(event.workflow))},
        )

    def _on_capacity_drift(
        self, event: CapacityDrift
    ) -> tuple[str, str, dict[str, str]]:
        state = self.state
        if event.server not in state.network:
            return event.server, "rejected", {"reason": "unknown-server"}
        if not (math.isfinite(event.power_hz) and event.power_hz > 0):
            return event.server, "rejected", {"reason": "bad-power"}
        state.set_server_power(event.server, event.power_hz)
        return (
            event.server,
            "rescaled",
            {"power_hz": format_detail(event.power_hz)},
        )

    def _on_server_failed(
        self, event: ServerFailed
    ) -> tuple[str, str, dict[str, str]]:
        state = self.state
        if event.server not in state.network:
            return event.server, "rejected", {"reason": "unknown-server"}
        if len(state.network) <= 1:
            return event.server, "rejected", {"reason": "last-server"}
        orphans = state.fail_server(event.server)
        rehomed = self._rehome_orphans(orphans)
        return (
            event.server,
            "recovered",
            {
                "orphans": format_detail(rehomed),
                "tenants_affected": format_detail(len(orphans)),
                "servers_left": format_detail(len(state.network)),
            },
        )

    def _on_server_joined(
        self, event: ServerJoined
    ) -> tuple[str, str, dict[str, str]]:
        state = self.state
        if event.server in state.network:
            return event.server, "rejected", {"reason": "duplicate-server"}
        state.join_server(
            event.server,
            event.power_hz,
            event.link_speed_bps,
            event.propagation_s,
        )
        moves, before, after, _ = self._greedy_moves(
            targets=(event.server,),
            candidates=self._all_operations,
            max_moves=self.config.max_moves_per_rebalance,
        )
        details = {
            "spread_moves": format_detail(len(moves)),
            "gain": format_detail(before - after),
            "servers": format_detail(len(state.network)),
        }
        report = self.last_rebalance_report
        if report is not None and not report.exhausted:
            details["stopped"] = report.stop_reason
        return event.server, "joined", details

    def _on_link_failure(
        self, event: LinkFailure
    ) -> tuple[str, str, dict[str, str]]:
        state = self.state
        subject = f"{event.a}-{event.b}"
        if event.a not in state.network or event.b not in state.network:
            return subject, "rejected", {"reason": "unknown-server"}
        if not state.network.has_link(event.a, event.b):
            return subject, "rejected", {"reason": "unknown-link"}
        try:
            state.drop_link(event.a, event.b)
        except ServiceError:
            # no redundant path: keeping the link beats partitioning
            return subject, "rejected", {"reason": "would-partition"}
        details = {"links": format_detail(len(state.network.links))}
        details.update(self._drive_rebalance())
        return subject, "rerouted", details

    def _on_link_degrade(
        self, event: LinkDegrade
    ) -> tuple[str, str, dict[str, str]]:
        state = self.state
        subject = f"{event.a}-{event.b}"
        if event.a not in state.network or event.b not in state.network:
            return subject, "rejected", {"reason": "unknown-server"}
        if not state.network.has_link(event.a, event.b):
            return subject, "rejected", {"reason": "unknown-link"}
        link = state.degrade_link(
            event.a,
            event.b,
            event.speed_factor,
            event.propagation_factor,
            worsening=event.is_worsening,
        )
        details = {
            "speed_bps": format_detail(link.speed_bps),
            "propagation_s": format_detail(link.propagation_s),
        }
        details.update(self._drive_rebalance())
        return subject, "degraded", details

    def _on_region_outage(
        self, event: RegionOutage
    ) -> tuple[str, str, dict[str, str]]:
        state = self.state
        members = region_servers(state.network, event.region)
        if not members:
            return event.region, "rejected", {"reason": "unknown-region"}
        if len(members) >= len(state.network):
            return event.region, "rejected", {"reason": "whole-fleet"}
        # fail every member first, re-home once: orphans must never be
        # parked on a server that dies later in the same outage
        merged: dict[str, list[str]] = {}
        for server in members:
            for tenant, operations in state.fail_server(server).items():
                merged.setdefault(tenant, []).extend(operations)
        rehomed = self._rehome_orphans(
            {tenant: tuple(ops) for tenant, ops in merged.items()}
        )
        return (
            event.region,
            "recovered",
            {
                "servers_lost": format_detail(len(members)),
                "orphans": format_detail(rehomed),
                "tenants_affected": format_detail(len(merged)),
                "servers_left": format_detail(len(state.network)),
            },
        )

    def _drive_rebalance(self) -> dict[str, str]:
        """Drift check + bounded rebalance after a topology patch.

        The same test :meth:`_on_tick` applies, run immediately when a
        link failed or degraded: re-routed traffic may have shifted the
        time-penalty share of the objective past the threshold, and
        waiting for the next scheduled tick would leave the fleet
        unbalanced in between. Cooldowns are *set* for moved tenants
        (hysteresis must keep damping oscillation) but not decayed --
        these events are not ticks. Returns the detail entries for the
        event's log record.
        """
        snapshot = self.state.snapshot()
        if snapshot.objective > 0:
            drift = (
                self.state.penalty_weight * snapshot.time_penalty
                / snapshot.objective
            )
        else:
            drift = 0.0
        details = {"drift": format_detail(drift)}
        if drift <= self.config.drift_threshold:
            return details
        moves, before, after, migration_total = self._greedy_moves(
            targets=None,
            candidates=self._busiest_server_operations,
            max_moves=self.config.max_moves_per_rebalance,
        )
        if self.config.rebalance_cooldown_ticks > 0:
            for tenant, _operation, _source, _target in moves:
                self._tenant_cooldowns[tenant] = (
                    self.config.rebalance_cooldown_ticks
                )
        details.update(
            {
                "churn": format_detail(len(moves)),
                "objective_before": format_detail(before),
                "objective_after": format_detail(after),
                "gain": format_detail(before - after),
            }
        )
        if self._transition_aware:
            details["migration"] = format_detail(migration_total)
            details["net_gain"] = format_detail(
                before - after
                - self.config.migration_weight * migration_total
            )
        report = self.last_rebalance_report
        if report is not None and not report.exhausted:
            details["stopped"] = report.stop_reason
        return details

    def _on_tick(self, event: Tick) -> tuple[str, str, dict[str, str]]:
        snapshot = self.state.snapshot()
        if snapshot.objective > 0:
            drift = (
                self.state.penalty_weight * snapshot.time_penalty
                / snapshot.objective
            )
        else:
            drift = 0.0
        if drift <= self.config.drift_threshold:
            self._decay_cooldowns()
            return "fleet", "steady", {"drift": format_detail(drift)}
        moves, before, after, migration_total = self._greedy_moves(
            targets=None,
            candidates=self._busiest_server_operations,
            max_moves=self.config.max_moves_per_rebalance,
        )
        # cooldown bookkeeping: candidates were filtered against the
        # *pre-decrement* counters, so a cooldown of N skips exactly N
        # ticks; tenants moved this tick start their cooldown afresh
        self._decay_cooldowns()
        if self.config.rebalance_cooldown_ticks > 0:
            for tenant, _operation, _source, _target in moves:
                self._tenant_cooldowns[tenant] = (
                    self.config.rebalance_cooldown_ticks
                )
        details = {
            "drift": format_detail(drift),
            "churn": format_detail(len(moves)),
            "objective_before": format_detail(before),
            "objective_after": format_detail(after),
            "gain": format_detail(before - after),
        }
        if self._transition_aware:
            details["migration"] = format_detail(migration_total)
            details["net_gain"] = format_detail(
                before - after
                - self.config.migration_weight * migration_total
            )
        report = self.last_rebalance_report
        if report is not None and not report.exhausted:
            details["stopped"] = report.stop_reason
        return "fleet", "rebalanced", details

    @property
    def _transition_aware(self) -> bool:
        """True when migration cost changes rebalance decisions."""
        return (
            self.config.migration is not None
            and self.config.migration_weight > 0.0
        )

    def _decay_cooldowns(self) -> None:
        """One tick elapsed: count every tenant cooldown down by one."""
        for tenant in list(self._tenant_cooldowns):
            remaining = self._tenant_cooldowns[tenant] - 1
            if remaining <= 0:
                del self._tenant_cooldowns[tenant]
            else:
                self._tenant_cooldowns[tenant] = remaining

    # ------------------------------------------------------------------
    # placement / rebalancing machinery
    # ------------------------------------------------------------------
    def _rehome_orphans(self, orphans: dict[str, tuple[str, ...]]) -> int:
        """Worst-fit re-homing of failure orphans, fleet-wide.

        The policy of :func:`repro.experiments.failover.replace_orphans`
        lifted to the multi-tenant fleet: budgets are the fleet-wide
        capacity-proportional shares minus *all* hosted load, and the
        orphans of every affected tenant compete in one heaviest-first
        queue. Returns the number of operations re-homed.
        """
        state = self.state
        queue: list[tuple[float, str, str]] = []
        for tenant, operations in orphans.items():
            compiled = state.cost_model(tenant).compiled
            for operation in operations:
                weighted = compiled.wcycles[compiled.op_index[operation]]
                queue.append((weighted, tenant, operation))
        queue.sort(key=lambda item: (-item[0], item[1], item[2]))
        budgets = state.remaining_budgets()
        rank = {name: i for i, name in enumerate(state.network.server_names)}
        for weighted, tenant, operation in queue:
            target = max(budgets, key=lambda s: (budgets[s], -rank[s]))
            state.tenant(tenant).deployment.assign(operation, target)
            budgets[target] -= weighted
        return len(queue)

    def _all_operations(
        self, loads: dict[str, float]
    ) -> list[tuple[str, str]]:
        """Every hosted (tenant, operation) pair, in deterministic order."""
        return [
            (tenant, operation)
            for tenant in self.state.tenants
            for operation in self.state.tenant(tenant).workflow.operation_names
        ]

    def _busiest_server_operations(
        self, loads: dict[str, float]
    ) -> list[tuple[str, str]]:
        """Operations hosted on the most-loaded server (rebalance source)."""
        if not loads:
            return []
        rank = {name: i for i, name in enumerate(self.state.network.server_names)}
        busiest = max(loads, key=lambda s: (loads[s], -rank[s]))
        return [
            (tenant, operation)
            for tenant in self.state.tenants
            if self._tenant_cooldowns.get(tenant, 0) <= 0
            for operation in (
                self.state.tenant(tenant).deployment.operations_on(busiest)
            )
        ]

    def _greedy_moves(
        self,
        targets: Sequence[str] | None,
        candidates: Callable[[dict[str, float]], list[tuple[str, str]]],
        max_moves: int,
    ) -> tuple[list[tuple[str, str, str, str]], float, float, float]:
        """Apply up to *max_moves* objective-improving single-op moves.

        *candidates* maps the current combined loads to the (tenant,
        operation) pairs eligible to move; *targets* restricts the
        destination servers (``None`` = any server). Each applied move is
        the best strictly-improving candidate under the fleet objective;
        the loop stops early when no candidate improves. Returns the
        moves ``(tenant, operation, source, target)``, the objective
        before and after -- the churn-vs-gain numbers the log reports --
        and the summed migration cost of the applied moves (0.0 without
        a migration model).

        With a :attr:`FleetConfig.migration` model at weight > 0 the
        acceptance test is *hysteretic*: a candidate's score is its
        objective plus the weighted one-time cost of moving that
        operation's state over the current links, and it must undercut
        the standing objective by :attr:`FleetConfig.rebalance_min_gain`
        -- churn that does not pay for itself is left alone. At weight 0
        the historical strictly-improving comparison is preserved bit
        for bit (migration cost is still *billed* into
        :attr:`migration_paid` when a model is configured).

        Per-tenant execution times are priced in bulk through each
        tenant's shared :class:`~repro.core.batch.BatchEvaluator`: one
        kernel call per tenant per round scores that tenant's whole
        candidate set (falling back to the per-candidate dirty-region
        :class:`~repro.core.incremental.MoveEvaluator` pass when NumPy
        is unavailable or :attr:`FleetConfig.use_batch` is off -- both
        paths produce the identical floats, so the applied moves and
        logs are byte-identical).

        The scan runs on the :class:`~repro.algorithms.runtime.
        SearchRuntime` -- one applied move per step -- under
        :attr:`FleetConfig.rebalance_budget` and a fresh per-call
        :class:`~repro.algorithms.runtime.CancelToken` (see
        :meth:`preempt_rebalance`). Budgets and preemption only ever
        drop *pending* moves; applied ones already improved the
        objective, so the fleet is consistent at every step boundary.
        The runtime's report lands in :attr:`last_rebalance_report`.
        """
        state = self.state
        network = state.network
        evaluators = {
            tenant: MoveEvaluator(
                state.cost_model(tenant), state.tenant(tenant).deployment
            )
            for tenant in state.tenants
        }
        exec_times = {
            tenant: evaluators[tenant].execution_time
            for tenant in state.tenants
        }
        loads = state.combined_loads()

        def objective(execs: dict[str, float], load_map: dict[str, float]) -> float:
            self.evaluations += 1
            execution = max(execs.values(), default=0.0)
            penalty = load_penalty(list(load_map.values()), state.penalty_mode)
            # the one fleet-level combine, shared with FleetState.snapshot
            return state.objective_value(execution, penalty)

        migration_model = self.config.migration
        aware = self._transition_aware
        # min_gain == 0 keeps the historical strict-improvement epsilon
        threshold = (
            self.config.rebalance_min_gain
            if self.config.rebalance_min_gain > 0.0
            else 1e-12
        )

        def move_cost(
            tenant: str, operation: str, source: str, target: str
        ) -> float:
            """One-time cost of moving *operation*'s state to *target*.

            Checkpoint transfer over the fleet's current links (routed
            through the tenant's compiled instance) plus the model's
            fixed downtime. State size scales with the operation's raw
            cycle count -- probability never shrinks a checkpoint.
            """
            compiled = state.cost_model(tenant).compiled
            op = compiled.op_index[operation]
            return migration_model.downtime_s + compiled.delay(
                compiled.server_index[source],
                compiled.server_index[target],
                migration_model.state_bits(compiled.cycles[op]),
            )

        current = objective(exec_times, loads)
        before = current
        migration_total = 0.0
        moves: list[tuple[str, str, str, str]] = []

        def price_candidates(
            pairs: list[tuple[str, str]],
        ) -> dict[tuple[str, str, str], float] | None:
            """Batch-price tenant execution for every candidate move.

            One kernel call per tenant per round over that tenant's
            ``(operation, target)`` rows; the kernel's forward pass is
            bit-identical to the dirty-region proposal it replaces.
            Returns ``None`` to use the scalar path.
            """
            if not self.config.use_batch:
                return None
            rows: dict[str, list[list[int]]] = {}
            keys: dict[str, list[tuple[str, str, str]]] = {}
            for tenant, operation in pairs:
                compiled = state.cost_model(tenant).compiled
                batch = batch_evaluator_or_none(compiled)
                if batch is None:
                    return None
                deployment = state.tenant(tenant).deployment
                source = deployment.server_of(operation)
                base = compiled.server_vector(deployment)
                op = compiled.op_index[operation]
                destinations = (
                    targets if targets is not None else network.server_names
                )
                for target in destinations:
                    if target == source:
                        continue
                    row = list(base)
                    row[op] = compiled.server_index[target]
                    rows.setdefault(tenant, []).append(row)
                    keys.setdefault(tenant, []).append(
                        (tenant, operation, target)
                    )
            priced: dict[tuple[str, str, str], float] = {}
            if self.config.parallel_workers > 1 and len(rows) > 1:
                # one PricingTask per tenant, fanned across the pool;
                # same kernel in every worker, so the floats (and the
                # moves chosen from them) match the serial loop below
                from repro.parallel.worker import (
                    PricingTask,
                    payload_from,
                    run_pricing_task,
                )

                tenants = list(rows)
                tasks = [
                    PricingTask(
                        index=position,
                        payload=payload_from(
                            state.tenant(tenant).workflow,
                            network,
                            state.cost_model(tenant),
                        ),
                        rows=tuple(tuple(row) for row in rows[tenant]),
                    )
                    for position, tenant in enumerate(tenants)
                ]
                executions = self._pricing_pool().map_plain(
                    run_pricing_task, tasks
                )
                for tenant, tenant_execs in zip(tenants, executions):
                    for key, execution in zip(keys[tenant], tenant_execs):
                        priced[key] = float(execution)
                return priced
            for tenant, tenant_rows in rows.items():
                compiled = state.cost_model(tenant).compiled
                scores = compiled.batch_evaluator().evaluate(tenant_rows)
                for key, execution in zip(keys[tenant], scores.execution):
                    priced[key] = float(execution)
            return priced

        def steps() -> Iterator[SearchStep]:
            nonlocal current, loads, migration_total
            yield SearchStep(current, lambda: tuple(moves), evals=1)
            for _ in range(max_moves):
                best: tuple | None = None
                scanned = 0
                pairs = candidates(loads)
                priced = price_candidates(pairs)
                for tenant, operation in pairs:
                    record = state.tenant(tenant)
                    compiled = state.cost_model(tenant).compiled
                    source = record.deployment.server_of(operation)
                    weighted = compiled.wcycles[compiled.op_index[operation]]
                    destinations = (
                        targets
                        if targets is not None
                        else network.server_names
                    )
                    for target in destinations:
                        if target == source:
                            continue
                        if priced is not None:
                            tenant_exec = priced[(tenant, operation, target)]
                        else:
                            tenant_exec = evaluators[tenant].propose(
                                operation, target
                            ).execution_time
                        trial_loads = dict(loads)
                        trial_loads[source] -= (
                            weighted / network.server(source).power_hz
                        )
                        trial_loads[target] += (
                            weighted / network.server(target).power_hz
                        )
                        trial_execs = dict(exec_times)
                        trial_execs[tenant] = tenant_exec
                        value = objective(trial_execs, trial_loads)
                        scanned += 1
                        if aware:
                            cost = move_cost(
                                tenant, operation, source, target
                            )
                            net = value + (
                                self.config.migration_weight * cost
                            )
                        else:
                            cost = 0.0
                            net = value
                        if net < current - threshold and (
                            best is None or net < best[0]
                        ):
                            best = (
                                net,
                                tenant,
                                operation,
                                source,
                                target,
                                tenant_exec,
                                trial_loads,
                                value,
                                cost,
                            )
                if best is None:
                    yield SearchStep(
                        current,
                        lambda: tuple(moves),
                        evals=scanned,
                        rejected=scanned,
                    )
                    break
                (_net, tenant, operation, source, target,
                 tenant_exec, new_loads, value, cost) = best
                if migration_model is not None and not aware:
                    # weight 0: the move was chosen blind, but its cost
                    # is still billed (benchmarks charge naive churn)
                    cost = move_cost(tenant, operation, source, target)
                # apply() assigns into the tenant's live deployment too
                evaluators[tenant].apply(operation, target)
                exec_times[tenant] = tenant_exec
                # the standing objective never carries the one-time
                # migration term -- hysteresis compares future nets
                # against the objective actually achieved
                current = value
                loads = new_loads
                if migration_model is not None:
                    migration_total += cost
                    self.migration_paid += cost
                moves.append((tenant, operation, source, target))
                yield SearchStep(
                    current,
                    lambda: tuple(moves),
                    evals=scanned,
                    accepted=1,
                    rejected=scanned - 1,
                )

        cancel = CancelToken()
        self._active_rebalance_cancel = cancel
        runtime = SearchRuntime(
            budget=self.config.rebalance_budget,
            cancel=cancel,
            on_progress=self.on_search_step,
        )
        try:
            outcome = runtime.run(steps())
        finally:
            self._active_rebalance_cancel = None
        self.last_rebalance_report = outcome.report
        return moves, before, current, migration_total

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def metrics(self) -> FleetMetrics:
        """Aggregate :class:`~repro.service.log.FleetMetrics` so far."""
        records = self.log.records
        by_kind: dict[str, int] = {}
        for record in records:
            by_kind[record.event] = by_kind.get(record.event, 0) + 1
        latencies = [record.latency_s for record in records]
        recovered = self.log.filter("server-failed", "recovered")
        rebalanced = self.log.filter("tick", "rebalanced")
        joined = self.log.filter("server-joined", "joined")
        churn = sum(int(r.detail("churn")) for r in rebalanced) + sum(
            int(r.detail("spread_moves")) for r in joined
        )
        # link events rebalance too, but only when drift crossed the
        # threshold -- their records carry "churn" only in that case
        for record in self.log.filter("link-failed", "rerouted") + (
            self.log.filter("link-degraded", "degraded")
        ):
            churn += int(record.details_dict.get("churn", "0"))
        snapshot = self.state.snapshot()
        return FleetMetrics(
            events=len(records),
            events_by_kind=tuple(sorted(by_kind.items())),
            admitted=len(self.log.filter("deploy", "admitted")),
            rejected=len(self.log.filter("deploy", "rejected")),
            undeployed=len(self.log.filter("undeploy", "removed")),
            failures_recovered=len(recovered),
            servers_joined=len(joined),
            orphans_rehomed=sum(int(r.detail("orphans")) for r in recovered),
            rebalances=len(rebalanced),
            rebalance_moves=churn,
            mean_latency_s=(
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            max_latency_s=max(latencies, default=0.0),
            placement_evaluations=self.evaluations,
            router_hits=self.state.router_hits,
            router_misses=self.state.router_misses,
            cost_model_hits=self.state.cost_model_hits,
            cost_model_misses=self.state.cost_model_misses,
            route_dijkstra_runs=self.state.router_dijkstra_runs,
            route_pairs_invalidated=self.state.router_pairs_invalidated,
            route_pairs_recomputed=self.state.router_pairs_recomputed,
            balance_timeline=tuple(self._balance_timeline),
            final_objective=snapshot.objective,
            final_execution_time=snapshot.execution_time,
            final_time_penalty=snapshot.time_penalty,
            final_balance_index=snapshot.balance_index,
            tenants_hosted=snapshot.tenants,
            migration_paid=self.migration_paid,
        )
