"""Thin stdlib-only REST façade over a :class:`FleetService`.

Split eNMS-style into an *app* and a *transport*:

:class:`FleetApp`
    The whole HTTP surface as one pure method --
    :meth:`FleetApp.dispatch` maps ``(method, path, body)`` to
    ``(status, payload)`` with no sockets involved, so every route is
    unit-testable as a plain function call. Routes:

    ========  ==================  =========================================
    method    path                effect
    ========  ==================  =========================================
    GET       ``/health``         liveness plus queue/fleet counters
    GET       ``/snapshot``       current :class:`FleetSnapshot` document
    GET       ``/metrics``        :class:`FleetMetrics` document
    GET       ``/jobs``           every job, in submission order
    GET       ``/jobs/<id>``      one job
    POST      ``/jobs``           submit ``{"event": ..., "priority":?}``
    POST      ``/process``        drain ``{"max_jobs":?}`` queued jobs
    POST      ``/checkpoint``     write ``{"path": ...}`` (queued events
                                  ride along as the checkpoint's pending)
    ========  ==================  =========================================

:func:`make_server`
    Binds an app to a :class:`http.server.ThreadingHTTPServer` (port 0
    picks a free port). The handler only parses the request line and a
    JSON body, then defers to :meth:`FleetApp.dispatch`; the service's
    internal lock serialises the threaded requests.

No third-party dependencies -- ``http.server`` is deliberately enough
for a fleet-control plane that sees tens of requests per rebalance
interval, and it keeps the façade importable everywhere the library is.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.exceptions import ReproError, ServiceError
from repro.service.checkpoint import (
    event_from_dict,
    record_to_dict,
    snapshot_to_dict,
)
from repro.service.queue import FleetService, Job

__all__ = ["FleetApp", "job_to_dict", "make_server"]


def job_to_dict(job: Job) -> dict[str, Any]:
    """Encode one queue job for the REST surface."""
    return {
        "id": job.id,
        "kind": job.kind,
        "subject": job.subject,
        "priority": job.priority,
        "seq": job.seq,
        "state": job.state,
        "record": (
            record_to_dict(job.record) if job.record is not None else None
        ),
        "error": job.error,
    }


class FleetApp:
    """The REST surface of one :class:`FleetService`, transport-free."""

    def __init__(self, service: FleetService):
        self.service = service

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def dispatch(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, Any]]:
        """Route one request; return ``(status, payload)``.

        Library errors (:class:`~repro.exceptions.ReproError` and
        subclasses) become ``400`` responses with a one-line ``error``
        field; unknown routes become ``404``. Nothing raises out of
        here short of a genuine bug.
        """
        method = method.upper()
        parts = [part for part in path.split("/") if part]
        try:
            if method == "GET":
                return self._get(parts)
            if method == "POST":
                return self._post(parts, body or {})
        except ReproError as exc:
            return 400, {"error": str(exc)}
        return 404, {"error": f"no route for {method} {path}"}

    def _get(self, parts: list[str]) -> tuple[int, dict[str, Any]]:
        service = self.service
        if parts == ["health"]:
            controller = service.controller
            return 200, {
                "status": "ok",
                "tenants": len(controller.state.tenants),
                "servers": len(controller.state.network.server_names),
                "pending": service.queue.pending,
                "jobs": len(service.queue),
                "events": len(controller.history),
            }
        if parts == ["snapshot"]:
            return 200, snapshot_to_dict(service.controller.state.snapshot())
        if parts == ["metrics"]:
            return 200, asdict(service.controller.metrics())
        if parts == ["jobs"]:
            return 200, {
                "jobs": [job_to_dict(job) for job in service.queue.jobs],
                "pending": service.queue.pending,
            }
        if len(parts) == 2 and parts[0] == "jobs":
            try:
                job_id = int(parts[1])
            except ValueError:
                return 404, {"error": f"job id {parts[1]!r} is not a number"}
            try:
                job = service.queue.job(job_id)
            except ServiceError as exc:
                return 404, {"error": str(exc)}
            return 200, job_to_dict(job)
        return 404, {"error": f"no route for GET /{'/'.join(parts)}"}

    def _post(
        self, parts: list[str], body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        service = self.service
        if parts == ["jobs"]:
            event_doc = body.get("event")
            if not isinstance(event_doc, dict):
                return 400, {
                    "error": "POST /jobs needs an object 'event' field"
                }
            event = event_from_dict(event_doc)
            priority = body.get("priority")
            job = service.submit(
                event, int(priority) if priority is not None else None
            )
            return 201, job_to_dict(job)
        if parts == ["process"]:
            max_jobs = body.get("max_jobs")
            processed = service.drain(
                int(max_jobs) if max_jobs is not None else None
            )
            return 200, {
                "processed": [job_to_dict(job) for job in processed],
                "pending": service.queue.pending,
            }
        if parts == ["checkpoint"]:
            path = body.get("path")
            if not path:
                return 400, {
                    "error": "POST /checkpoint needs a 'path' field"
                }
            pending = [
                (job.event, job.priority) for job in service.queue.queued()
            ]
            written = service.controller.checkpoint(path, pending=pending)
            return 200, {
                "path": str(written),
                "events": len(service.controller.history),
                "pending": len(pending),
            }
        return 404, {"error": f"no route for POST /{'/'.join(parts)}"}

    def checkpoint_payload(self) -> dict[str, Any]:
        """The full checkpoint document including queued events.

        Exposed for callers embedding the app without HTTP (the CLI's
        ``serve`` loop uses it for shutdown checkpoints).
        """
        from repro.service.checkpoint import checkpoint_to_dict

        return checkpoint_to_dict(
            self.service.controller,
            pending=[
                (job.event, job.priority)
                for job in self.service.queue.queued()
            ],
        )


class _FleetRequestHandler(BaseHTTPRequestHandler):
    """Transport shim: request line + JSON body in, JSON out."""

    app: FleetApp  # attached by make_server on the subclass

    # quiet by default -- the service has its own decision log
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _respond(self, status: int, payload: dict[str, Any]) -> None:
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> dict[str, Any] | None:
        length = int(self.headers.get("Content-Length") or 0)
        if not length:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return body if isinstance(body, dict) else None

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._respond(*self.app.dispatch("GET", self.path))

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        body = self._read_body()
        if body is None:
            self._respond(
                400, {"error": "request body must be a JSON object"}
            )
            return
        self._respond(*self.app.dispatch("POST", self.path, body))


def make_server(
    app: FleetApp, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind *app* to a threading HTTP server (port 0 = pick a free one).

    The caller owns the lifecycle: ``server.serve_forever()`` to run,
    ``server.shutdown()`` + ``server.server_close()`` to stop. The bound
    port is ``server.server_address[1]``.
    """
    handler = type(
        "FleetRequestHandler", (_FleetRequestHandler,), {"app": app}
    )
    return ThreadingHTTPServer((host, port), handler)
