"""Durable fleet checkpoints: codecs, dump, and verified restore.

A checkpoint freezes everything a deterministic controller run is a
function of -- the initial fleet network, the
:class:`~repro.service.controller.FleetConfig`, the clock kind, and the
append-only event history -- plus everything the run *produced*: the
decision log and the closing
:class:`~repro.service.state.FleetSnapshot`. Restoring replays the
history against the initial fleet under a fresh deterministic clock and
then **verifies** the replay: the regenerated decision log must match
the checkpointed one byte for byte (latency-stripped when the original
run used a wall clock) and the regenerated snapshot must equal the
checkpointed one float for float. A checkpoint that cannot reproduce
its own log fails loudly with :class:`~repro.exceptions.ValidationError`
instead of silently resuming from divergent state.

The format follows :mod:`repro.io.json_codec`: versioned, explicit,
sorted-key JSON (diffable, hand-editable), with every sub-object going
through the same constructors the API validates with. ``pending``
optionally stores not-yet-processed events so a crash-interrupted
scenario can checkpoint mid-trace and resume exactly where it stopped.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.algorithms.runtime import SearchBudget
from repro.core.clock import StepClock
from repro.core.migration import MigrationCostModel
from repro.exceptions import ValidationError
from repro.io.json_codec import (
    CodecError,
    dump_document,
    load_document,
    network_from_dict,
    workflow_from_dict,
    workflow_to_dict,
)
from repro.service.controller import FleetConfig, FleetController
from repro.service.events import (
    CapacityDrift,
    DeployRequest,
    FleetEvent,
    LinkDegrade,
    LinkFailure,
    RegionOutage,
    ServerFailed,
    ServerJoined,
    Tick,
    UndeployRequest,
    WorkloadDrift,
)
from repro.service.log import LogRecord
from repro.service.state import FleetSnapshot

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "event_to_dict",
    "event_from_dict",
    "config_to_dict",
    "config_from_dict",
    "budget_to_dict",
    "budget_from_dict",
    "migration_to_dict",
    "migration_from_dict",
    "record_to_dict",
    "record_from_dict",
    "snapshot_to_dict",
    "snapshot_from_dict",
    "Checkpoint",
    "checkpoint_to_dict",
    "write_checkpoint",
    "load_checkpoint",
    "restore_controller",
    "restore_service",
]

CHECKPOINT_FORMAT = "fleet-checkpoint"
CHECKPOINT_VERSION = 1


def _require(document: Mapping[str, Any], field: str, expected: str) -> Any:
    try:
        return document[field]
    except (KeyError, TypeError):
        raise ValidationError(
            f"{expected} document is missing required field {field!r}"
        ) from None


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------
def event_to_dict(event: FleetEvent) -> dict[str, Any]:
    """Encode one fleet event as a JSON-compatible dict."""
    if isinstance(event, DeployRequest):
        return {
            "kind": event.kind,
            "tenant": event.tenant,
            "workflow": workflow_to_dict(event.workflow),
            "algorithm": event.algorithm,
        }
    if isinstance(event, UndeployRequest):
        return {"kind": event.kind, "tenant": event.tenant}
    if isinstance(event, ServerFailed):
        return {"kind": event.kind, "server": event.server}
    if isinstance(event, ServerJoined):
        return {
            "kind": event.kind,
            "server": event.server,
            "power_hz": event.power_hz,
            "link_speed_bps": event.link_speed_bps,
            "propagation_s": event.propagation_s,
        }
    if isinstance(event, WorkloadDrift):
        return {
            "kind": event.kind,
            "tenant": event.tenant,
            "workflow": workflow_to_dict(event.workflow),
        }
    if isinstance(event, CapacityDrift):
        return {
            "kind": event.kind,
            "server": event.server,
            "power_hz": event.power_hz,
        }
    if isinstance(event, LinkFailure):
        return {"kind": event.kind, "a": event.a, "b": event.b}
    if isinstance(event, LinkDegrade):
        return {
            "kind": event.kind,
            "a": event.a,
            "b": event.b,
            "speed_factor": event.speed_factor,
            "propagation_factor": event.propagation_factor,
        }
    if isinstance(event, RegionOutage):
        return {"kind": event.kind, "region": event.region}
    if isinstance(event, Tick):
        return {"kind": event.kind}
    raise ValidationError(
        f"cannot encode fleet event type {type(event).__name__!r}"
    )


def event_from_dict(document: Mapping[str, Any]) -> FleetEvent:
    """Decode one fleet event; raises :class:`ValidationError`."""
    kind = _require(document, "kind", "event")
    if kind == DeployRequest.kind:
        return DeployRequest(
            tenant=str(_require(document, "tenant", "deploy event")),
            workflow=workflow_from_dict(
                _require(document, "workflow", "deploy event")
            ),
            algorithm=(
                str(document["algorithm"])
                if document.get("algorithm") is not None
                else None
            ),
        )
    if kind == UndeployRequest.kind:
        return UndeployRequest(
            tenant=str(_require(document, "tenant", "undeploy event"))
        )
    if kind == ServerFailed.kind:
        return ServerFailed(
            server=str(_require(document, "server", "server-failed event"))
        )
    if kind == ServerJoined.kind:
        return ServerJoined(
            server=str(_require(document, "server", "server-joined event")),
            power_hz=float(
                _require(document, "power_hz", "server-joined event")
            ),
            link_speed_bps=float(
                _require(document, "link_speed_bps", "server-joined event")
            ),
            propagation_s=float(document.get("propagation_s", 0.0)),
        )
    if kind == WorkloadDrift.kind:
        return WorkloadDrift(
            tenant=str(_require(document, "tenant", "workload-drift event")),
            workflow=workflow_from_dict(
                _require(document, "workflow", "workload-drift event")
            ),
        )
    if kind == CapacityDrift.kind:
        return CapacityDrift(
            server=str(_require(document, "server", "capacity-drift event")),
            power_hz=float(
                _require(document, "power_hz", "capacity-drift event")
            ),
        )
    if kind == LinkFailure.kind:
        return LinkFailure(
            a=str(_require(document, "a", "link-failed event")),
            b=str(_require(document, "b", "link-failed event")),
        )
    if kind == LinkDegrade.kind:
        return LinkDegrade(
            a=str(_require(document, "a", "link-degraded event")),
            b=str(_require(document, "b", "link-degraded event")),
            speed_factor=float(
                _require(document, "speed_factor", "link-degraded event")
            ),
            propagation_factor=float(
                document.get("propagation_factor", 1.0)
            ),
        )
    if kind == RegionOutage.kind:
        return RegionOutage(
            region=str(_require(document, "region", "region-outage event"))
        )
    if kind == Tick.kind:
        return Tick()
    raise ValidationError(f"unknown fleet event kind {kind!r}")


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------
def budget_to_dict(budget: SearchBudget | None) -> dict[str, Any] | None:
    """Encode a search budget (``None`` passes through)."""
    if budget is None:
        return None
    return {
        "max_steps": budget.max_steps,
        "max_evals": budget.max_evals,
        "deadline_s": budget.deadline_s,
    }


def budget_from_dict(
    document: Mapping[str, Any] | None,
) -> SearchBudget | None:
    """Decode a search budget (``None`` passes through)."""
    if document is None:
        return None
    return SearchBudget(
        max_steps=document.get("max_steps"),
        max_evals=document.get("max_evals"),
        deadline_s=document.get("deadline_s"),
    )


def migration_to_dict(
    migration: MigrationCostModel | None,
) -> dict[str, Any] | None:
    """Encode a migration cost model (``None`` passes through)."""
    if migration is None:
        return None
    return {
        "state_bits_per_cycle": migration.state_bits_per_cycle,
        "state_bits_base": migration.state_bits_base,
        "downtime_s": migration.downtime_s,
    }


def migration_from_dict(
    document: Mapping[str, Any] | None,
) -> MigrationCostModel | None:
    """Decode a migration cost model (``None`` passes through)."""
    if document is None:
        return None
    return MigrationCostModel(
        state_bits_per_cycle=float(
            document.get("state_bits_per_cycle", 0.0)
        ),
        state_bits_base=float(document.get("state_bits_base", 0.0)),
        downtime_s=float(document.get("downtime_s", 0.0)),
    )


def config_to_dict(config: FleetConfig) -> dict[str, Any]:
    """Encode a :class:`FleetConfig` as a JSON-compatible dict."""
    return {
        "algorithm": config.algorithm,
        "admission_load_limit_s": config.admission_load_limit_s,
        "drift_threshold": config.drift_threshold,
        "max_moves_per_rebalance": config.max_moves_per_rebalance,
        "rebalance_budget": budget_to_dict(config.rebalance_budget),
        "execution_weight": config.execution_weight,
        "penalty_weight": config.penalty_weight,
        "penalty_mode": config.penalty_mode,
        "seed": config.seed,
        "use_batch": config.use_batch,
        "parallel_workers": config.parallel_workers,
        "migration": migration_to_dict(config.migration),
        "migration_weight": config.migration_weight,
        "rebalance_min_gain": config.rebalance_min_gain,
        "rebalance_cooldown_ticks": config.rebalance_cooldown_ticks,
    }


def config_from_dict(document: Mapping[str, Any]) -> FleetConfig:
    """Decode a :class:`FleetConfig` (validated by its constructor).

    The transition-aware fields decode with their defaults when absent,
    so version-1 checkpoints written before the migration model existed
    keep loading.
    """
    return FleetConfig(
        algorithm=str(_require(document, "algorithm", "fleet config")),
        admission_load_limit_s=document.get("admission_load_limit_s"),
        drift_threshold=float(
            _require(document, "drift_threshold", "fleet config")
        ),
        max_moves_per_rebalance=int(
            _require(document, "max_moves_per_rebalance", "fleet config")
        ),
        rebalance_budget=budget_from_dict(document.get("rebalance_budget")),
        execution_weight=float(
            _require(document, "execution_weight", "fleet config")
        ),
        penalty_weight=float(
            _require(document, "penalty_weight", "fleet config")
        ),
        penalty_mode=str(_require(document, "penalty_mode", "fleet config")),
        seed=int(_require(document, "seed", "fleet config")),
        use_batch=bool(document.get("use_batch", True)),
        parallel_workers=int(document.get("parallel_workers", 1)),
        migration=migration_from_dict(document.get("migration")),
        migration_weight=float(document.get("migration_weight", 0.0)),
        rebalance_min_gain=float(document.get("rebalance_min_gain", 0.0)),
        rebalance_cooldown_ticks=int(
            document.get("rebalance_cooldown_ticks", 0)
        ),
    )


# ----------------------------------------------------------------------
# log records and snapshots
# ----------------------------------------------------------------------
def record_to_dict(record: LogRecord) -> dict[str, Any]:
    """Encode one decision-log record."""
    return {
        "seq": record.seq,
        "event": record.event,
        "subject": record.subject,
        "action": record.action,
        "latency_s": record.latency_s,
        "details": [[key, value] for key, value in record.details],
    }


def record_from_dict(document: Mapping[str, Any]) -> LogRecord:
    """Decode one decision-log record."""
    details = _require(document, "details", "log record")
    return LogRecord(
        seq=int(_require(document, "seq", "log record")),
        event=str(_require(document, "event", "log record")),
        subject=str(_require(document, "subject", "log record")),
        action=str(_require(document, "action", "log record")),
        latency_s=float(_require(document, "latency_s", "log record")),
        details=tuple((str(key), str(value)) for key, value in details),
    )


def snapshot_to_dict(snapshot: FleetSnapshot) -> dict[str, Any]:
    """Encode a fleet snapshot (floats round-trip exactly via JSON)."""
    return {
        "execution_time": snapshot.execution_time,
        "time_penalty": snapshot.time_penalty,
        "objective": snapshot.objective,
        "loads": dict(snapshot.loads),
        "balance_index": snapshot.balance_index,
        "tenants": snapshot.tenants,
    }


def snapshot_from_dict(document: Mapping[str, Any]) -> FleetSnapshot:
    """Decode a fleet snapshot."""
    loads = _require(document, "loads", "fleet snapshot")
    return FleetSnapshot(
        execution_time=float(
            _require(document, "execution_time", "fleet snapshot")
        ),
        time_penalty=float(
            _require(document, "time_penalty", "fleet snapshot")
        ),
        objective=float(_require(document, "objective", "fleet snapshot")),
        loads={str(key): float(value) for key, value in loads.items()},
        balance_index=float(
            _require(document, "balance_index", "fleet snapshot")
        ),
        tenants=int(_require(document, "tenants", "fleet snapshot")),
    )


def _clock_to_dict(clock) -> dict[str, Any]:
    if isinstance(clock, StepClock):
        return {"kind": "step", "step_s": clock.step_s}
    return {"kind": "wall"}


# ----------------------------------------------------------------------
# whole checkpoints
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Checkpoint:
    """A decoded checkpoint: everything a verified restore needs.

    ``deterministic`` is true when the original run used a
    :class:`~repro.core.clock.StepClock`; restore then demands a
    byte-identical log (latencies included). Wall-clock runs verify the
    decisions only.
    """

    config: FleetConfig
    network_doc: dict[str, Any]
    events: tuple[FleetEvent, ...]
    records: tuple[LogRecord, ...]
    snapshot_doc: dict[str, Any]
    pending: tuple[FleetEvent, ...]
    deterministic: bool
    step_s: float
    #: Queue priority of each pending event (aligned with
    #: :attr:`pending`); ``None`` means the event kind's default. Old
    #: checkpoints that stored bare events decode as all-``None``.
    pending_priorities: tuple[int | None, ...] = ()


def _pending_entry(item) -> dict[str, Any]:
    """Encode one pending entry: a bare event or ``(event, priority)``.

    A bare event (or a ``None`` priority) writes the historical plain
    event dict; an explicit priority nests the event under ``"event"``
    so a restored work queue re-seeds with byte-identical pop order
    even after reprioritizations boosted the queued jobs.
    """
    if isinstance(item, FleetEvent):
        return event_to_dict(item)
    event, priority = item
    if priority is None:
        return event_to_dict(event)
    return {"event": event_to_dict(event), "priority": int(priority)}


def checkpoint_to_dict(
    controller: FleetController,
    pending: Sequence[FleetEvent | tuple[FleetEvent, int | None]] = (),
) -> dict[str, Any]:
    """Encode a live controller (plus optional *pending* events).

    *pending* entries may be bare events or ``(event, priority)`` pairs
    -- the latter preserve a work queue's current priorities (see
    :func:`restore_service`).
    """
    return {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "config": config_to_dict(controller.config),
        "network": controller.initial_network_doc,
        "clock": _clock_to_dict(controller.clock),
        "events": [event_to_dict(event) for event in controller.history],
        "log": [record_to_dict(record) for record in controller.log],
        "snapshot": snapshot_to_dict(controller.state.snapshot()),
        "pending": [_pending_entry(item) for item in pending],
    }


def write_checkpoint(
    controller: FleetController,
    path: str | Path,
    pending: Sequence[FleetEvent | tuple[FleetEvent, int | None]] = (),
) -> Path:
    """Serialise *controller* to *path*; return the written path."""
    return dump_document(path, checkpoint_to_dict(controller, pending))


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Read and decode a checkpoint; raises :class:`ValidationError`.

    File-level problems (missing file, malformed JSON, wrong format)
    and field-level problems both surface as
    :class:`~repro.exceptions.ValidationError` with the path in the
    message -- the CLI turns them into one-line errors.
    """
    try:
        document = load_document(path, CHECKPOINT_FORMAT)
    except CodecError as exc:
        raise ValidationError(str(exc)) from None
    version = document.get("version", CHECKPOINT_VERSION)
    if version != CHECKPOINT_VERSION:
        raise ValidationError(
            f"{path}: unsupported checkpoint version {version!r} "
            f"(this library writes version {CHECKPOINT_VERSION})"
        )
    try:
        clock_doc = document.get("clock") or {"kind": "step"}
        pending_events: list[FleetEvent] = []
        pending_priorities: list[int | None] = []
        for entry in document.get("pending", []):
            if isinstance(entry, Mapping) and "event" in entry:
                pending_events.append(event_from_dict(entry["event"]))
                priority = entry.get("priority")
                pending_priorities.append(
                    int(priority) if priority is not None else None
                )
            else:
                pending_events.append(event_from_dict(entry))
                pending_priorities.append(None)
        return Checkpoint(
            config=config_from_dict(
                _require(document, "config", "checkpoint")
            ),
            network_doc=_require(document, "network", "checkpoint"),
            events=tuple(
                event_from_dict(entry)
                for entry in _require(document, "events", "checkpoint")
            ),
            records=tuple(
                record_from_dict(entry)
                for entry in _require(document, "log", "checkpoint")
            ),
            snapshot_doc=dict(_require(document, "snapshot", "checkpoint")),
            pending=tuple(pending_events),
            deterministic=clock_doc.get("kind") == "step",
            step_s=float(clock_doc.get("step_s", 0.001)),
            pending_priorities=tuple(pending_priorities),
        )
    except (CodecError, TypeError, AttributeError) as exc:
        raise ValidationError(f"{path}: malformed checkpoint ({exc})") from None


def _decision_line(record: LogRecord) -> str:
    """A record's canonical line with the latency column removed."""
    payload = " ".join(f"{k}={v}" for k, v in record.details)
    return (
        f"#{record.seq:04d} {record.event} {record.subject} {record.action}"
        + (f" {payload}" if payload else "")
    )


def _verify_replay(
    checkpoint: Checkpoint, controller: FleetController, source: str
) -> None:
    expected = checkpoint.records
    replayed = controller.log.records
    if checkpoint.deterministic:
        render = LogRecord.to_line
    else:
        render = _decision_line
    expected_lines = [render(record) for record in expected]
    replayed_lines = [render(record) for record in replayed]
    if expected_lines != replayed_lines:
        for index, (want, got) in enumerate(
            zip(expected_lines, replayed_lines)
        ):
            if want != got:
                raise ValidationError(
                    f"{source}: replay diverged at log record #{index}: "
                    f"checkpointed {want!r} but replayed {got!r}"
                )
        raise ValidationError(
            f"{source}: replay produced {len(replayed_lines)} log records, "
            f"checkpoint has {len(expected_lines)}"
        )
    replayed_snapshot = snapshot_to_dict(controller.state.snapshot())
    if replayed_snapshot != checkpoint.snapshot_doc:
        raise ValidationError(
            f"{source}: replayed fleet snapshot does not match the "
            f"checkpointed one (checkpointed {checkpoint.snapshot_doc!r}, "
            f"replayed {replayed_snapshot!r})"
        )


def restore_controller(
    source: str | Path | Checkpoint,
) -> tuple[FleetController, tuple[FleetEvent, ...]]:
    """Rebuild a controller from a checkpoint; return it plus pending.

    The event history replays against the initial fleet under a fresh
    :class:`~repro.core.clock.StepClock` and the result is verified
    against the checkpointed log and snapshot (see the module docs).
    The returned controller is live: feeding it the returned pending
    events continues the run exactly as the uninterrupted one would
    have.
    """
    if isinstance(source, Checkpoint):
        checkpoint, label = source, "checkpoint"
    else:
        checkpoint, label = load_checkpoint(source), str(source)
    controller = FleetController(
        network_from_dict(checkpoint.network_doc),
        config=checkpoint.config,
        clock=StepClock(step_s=checkpoint.step_s),
    )
    for event in checkpoint.events:
        controller.handle(event)
    _verify_replay(checkpoint, controller, label)
    return controller, checkpoint.pending


def restore_service(source: str | Path | Checkpoint):
    """Rebuild a queue-fronted :class:`~repro.service.queue.FleetService`.

    Runs the verified :func:`restore_controller` replay, then re-seeds a
    fresh work queue with the checkpointed pending events *at their
    checkpointed priorities* (bypassing the submission-side
    reprioritization policies -- the recorded priorities already reflect
    every boost that had been applied). Draining the restored service
    therefore processes the remaining work in exactly the order the
    interrupted one would have.
    """
    from repro.service.queue import FleetService

    if isinstance(source, Checkpoint):
        checkpoint = source
    else:
        checkpoint = load_checkpoint(source)
    controller, _ = restore_controller(checkpoint)
    service = FleetService(controller)
    priorities = checkpoint.pending_priorities or (None,) * len(
        checkpoint.pending
    )
    for event, priority in zip(checkpoint.pending, priorities):
        service.queue.submit(event, priority)
    return service
