"""Scripted, seeded fleet scenarios and the replay driver.

A scenario is a complete service lifecycle frozen into data: an initial
fleet network, a :class:`~repro.service.controller.FleetConfig`, and an
ordered event trace (arrivals, departures, failures, joins, ticks). All
randomness -- workflow shapes, server powers, arrival ordering -- is
drawn from one seed, and replays run the controller under a
deterministic :class:`~repro.service.controller.StepClock`, so the same
``(name, seed)`` pair always produces byte-identical logs and metrics.

Three builtin scenarios cover the interesting regimes:

``steady``
    A small fleet absorbing tenant arrivals and departures; no
    infrastructure events. Exercises admission and drift checks.
``churn``
    Arrivals under a finite admission capacity plus server failures and
    a join: the full recovery story, with some requests rejected.
``surge``
    A 200-event trace over a 20-server fleet -- the benchmark scenario
    for events/second throughput and shared-cache hit rates.
``drift``
    Workload and capacity parameters drifting round after round on a
    6-server fleet under a tight rebalance trigger -- the scenario the
    migration benchmarks replay with and without a transition-aware
    objective (see :mod:`repro.core.migration`).
``abilene``
    Tenants on the bundled real Abilene backbone
    (:func:`repro.scenarios.abilene_network`) under trunk brownouts,
    a link failure and a rejected would-partition failure -- the
    topology-benchmark scenario.
``geo``
    A four-region geo-distributed fleet
    (:func:`repro.scenarios.random_geo_network`) losing an inter-region
    backbone link and then a whole region.
``diurnal``
    A three-region fleet under sixteen rounds of sinusoidal traffic
    waves (:func:`wave_workflow` scaling every message size up and
    down through the day) while the inter-region trunk browns out at
    every peak and recovers at every trough -- alternating the
    link-scoped (worsening) and full (improvement) route-invalidation
    paths round after round.

:func:`drift_workflow` and :func:`drift_capacity` are the seeded
perturbation helpers behind the ``drift`` trace: shape-preserving
multiplicative noise on message sizes / XOR branch probabilities and on
a server's power. Zero amplitude is an exact no-op that draws nothing
from the RNG. :func:`wave_workflow` is their deterministic sibling:
an exact multiplicative rescale of every message size, the building
block of the ``diurnal`` traffic waves.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Callable

from repro.core.rng import coerce_rng
from repro.core.workflow import NodeKind, Workflow
from repro.exceptions import ServiceError
from repro.network.topology import Server, ServerNetwork
from repro.scenarios import abilene_network, random_geo_network, region_of
from repro.service.controller import FleetConfig, FleetController, StepClock
from repro.service.events import (
    CapacityDrift,
    DeployRequest,
    FleetEvent,
    LinkDegrade,
    LinkFailure,
    RegionOutage,
    ServerFailed,
    ServerJoined,
    Tick,
    UndeployRequest,
    WorkloadDrift,
)
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)

__all__ = [
    "Scenario",
    "builtin_scenarios",
    "build_scenario",
    "drift_capacity",
    "drift_workflow",
    "replay",
    "wave_workflow",
]


@dataclass(frozen=True)
class Scenario:
    """One replayable lifecycle: fleet + config + event trace.

    A built scenario is one-shot: the controller takes ownership of
    (and mutates) :attr:`network`. To replay again, rebuild from the
    same ``(name, seed)`` -- which is exactly what
    :func:`replay` does when given a name instead of an instance.
    """

    name: str
    description: str
    network: ServerNetwork
    config: FleetConfig
    events: tuple[FleetEvent, ...]


def _tenant_workflow(rng: random.Random, index: int, graph_share: float = 0.3):
    """A small tenant workflow: mostly lines, some random graphs."""
    size = rng.randint(6, 14)
    seed = rng.randrange(2**31)
    if rng.random() < graph_share:
        return random_graph_workflow(
            size,
            GraphStructure.HYBRID,
            seed=seed,
            name=f"tenant-{index:03d}-graph",
        )
    return line_workflow(size, seed=seed, name=f"tenant-{index:03d}-line")


def _build_steady(seed: int) -> Scenario:
    """Arrivals and departures on a 6-server fleet, no infrastructure."""
    rng = coerce_rng(seed)
    network = random_bus_network(
        6, seed=rng.randrange(2**31), name="fleet-steady"
    )
    events: list[FleetEvent] = []
    for index in range(1, 9):
        events.append(
            DeployRequest(f"tenant-{index:03d}", _tenant_workflow(rng, index))
        )
        if index % 3 == 0:
            events.append(Tick())
    events.append(UndeployRequest("tenant-002"))
    events.append(UndeployRequest("tenant-005"))
    events.append(Tick())
    for index in range(9, 11):
        events.append(
            DeployRequest(f"tenant-{index:03d}", _tenant_workflow(rng, index))
        )
    events.append(Tick())
    config = FleetConfig(drift_threshold=0.3, seed=seed)
    return Scenario(
        name="steady",
        description="8 arrivals, 2 departures, periodic drift checks",
        network=network,
        config=config,
        events=tuple(events),
    )


def _build_churn(seed: int) -> Scenario:
    """Capacity-limited arrivals with failures and a late join."""
    rng = coerce_rng(seed)
    network = random_bus_network(
        8, seed=rng.randrange(2**31), name="fleet-churn"
    )
    events: list[FleetEvent] = []
    for index in range(1, 7):
        events.append(
            DeployRequest(f"tenant-{index:03d}", _tenant_workflow(rng, index))
        )
    events.append(Tick())
    events.append(ServerFailed("S3"))
    events.append(Tick())
    for index in range(7, 13):
        events.append(
            DeployRequest(f"tenant-{index:03d}", _tenant_workflow(rng, index))
        )
    events.append(ServerFailed("S6"))
    events.append(Tick())
    events.append(UndeployRequest("tenant-001"))
    events.append(UndeployRequest("tenant-004"))
    events.append(
        ServerJoined("S9", power_hz=2e9, link_speed_bps=100e6)
    )
    events.append(Tick())
    for index in range(13, 16):
        events.append(
            DeployRequest(f"tenant-{index:03d}", _tenant_workflow(rng, index))
        )
    events.append(Tick())
    # ~0.008 s of mean load per mid-size tenant on this fleet: a 0.05 s
    # cap admits roughly the first half dozen and rejects the overflow.
    # The tight drift threshold makes post-failure ticks rebalance.
    config = FleetConfig(
        admission_load_limit_s=0.05, drift_threshold=0.1, seed=seed
    )
    return Scenario(
        name="churn",
        description=(
            "capacity-limited arrivals, 2 failures, 1 join, departures"
        ),
        network=network,
        config=config,
        events=tuple(events),
    )


def _build_surge(seed: int) -> Scenario:
    """A 200-event trace over a 20-server fleet (benchmark scenario)."""
    rng = coerce_rng(seed)
    network = random_bus_network(
        20, seed=rng.randrange(2**31), name="fleet-surge"
    )
    events: list[FleetEvent] = []
    live: list[str] = []
    index = 0
    joined = 0
    failed = 0
    while len(events) < 200:
        position = len(events)
        if position % 10 == 9:
            events.append(Tick())
        elif position % 37 == 36 and failed < 3:
            failed += 1
            events.append(ServerFailed(f"S{2 * failed}"))
        elif position % 53 == 52 and joined < 3:
            joined += 1
            events.append(
                ServerJoined(
                    f"S{20 + joined}",
                    power_hz=2e9,
                    link_speed_bps=100e6,
                )
            )
        elif live and rng.random() < 0.18:
            events.append(UndeployRequest(live.pop(0)))
        else:
            index += 1
            tenant = f"tenant-{index:03d}"
            events.append(
                DeployRequest(
                    tenant, _tenant_workflow(rng, index, graph_share=0.2)
                )
            )
            live.append(tenant)
    config = FleetConfig(
        admission_load_limit_s=0.12,
        drift_threshold=0.3,
        max_moves_per_rebalance=3,
        seed=seed,
    )
    return Scenario(
        name="surge",
        description="200 events over a 20-server fleet (benchmark trace)",
        network=network,
        config=config,
        events=tuple(events),
    )


def _validated_amplitude(amplitude: float) -> float:
    """Shared bounds check for the drift helpers."""
    if not (math.isfinite(amplitude) and 0.0 <= amplitude < 1.0):
        raise ServiceError(
            f"drift amplitude must lie in [0, 1), got {amplitude!r}"
        )
    return amplitude


def drift_workflow(
    workflow: Workflow,
    rng: random.Random,
    amplitude: float,
    name: str | None = None,
) -> Workflow:
    """A shape-preserving drifted copy of *workflow*.

    Every message size is multiplied by a factor drawn uniformly from
    ``[1 - amplitude, 1 + amplitude]`` (floored at one bit), and each
    XOR split's branch probabilities are perturbed the same way and
    renormalised to sum to 1. Operation names, edges and cycle counts
    are untouched, so the result satisfies the
    :class:`~repro.service.events.WorkloadDrift` contract: the tenant's
    current placement stays valid and only the cost model changes.

    Deterministic in ``(workflow, rng state, amplitude)``; amplitude 0
    returns an exact copy *without drawing from the RNG*, so a
    zero-amplitude drift is a replay no-op.
    """
    _validated_amplitude(amplitude)
    clone = workflow.copy(name or workflow.name)
    if amplitude == 0.0:
        return clone
    for message in clone.messages:
        factor = 1.0 + amplitude * rng.uniform(-1.0, 1.0)
        clone.replace_message(
            replace(message, size_bits=max(1.0, message.size_bits * factor))
        )
    for operation in clone.operations:
        if operation.kind is not NodeKind.XOR_SPLIT:
            continue
        branches = clone.outgoing(operation.name)
        raw = [
            max(
                1e-6,
                m.probability * (1.0 + amplitude * rng.uniform(-1.0, 1.0)),
            )
            for m in branches
        ]
        total = sum(raw)
        for message, weight in zip(branches, raw):
            clone.replace_message(
                replace(message, probability=weight / total)
            )
    clone.validate_xor_probabilities()
    return clone


def wave_workflow(
    workflow: Workflow,
    factor: float,
    name: str | None = None,
) -> Workflow:
    """A traffic-wave copy of *workflow*: every message size x *factor*.

    The deterministic counterpart of :func:`drift_workflow` -- no RNG,
    no shape change, just a multiplicative rescale of every message
    size (floored at one bit). Applying it to the *same* base workflow
    with a time-varying factor produces diurnal traffic waves whose
    troughs return byte-exactly to the base sizes, which is what the
    ``diurnal`` scenario does. XOR probabilities, operation names,
    edges and cycle counts are untouched, so the result satisfies the
    :class:`~repro.service.events.WorkloadDrift` contract.
    """
    if not (math.isfinite(factor) and factor > 0.0):
        raise ServiceError(
            f"wave factor must be a finite positive number, got {factor!r}"
        )
    clone = workflow.copy(name or workflow.name)
    for message in clone.messages:
        clone.replace_message(
            replace(message, size_bits=max(1.0, message.size_bits * factor))
        )
    return clone


def drift_capacity(
    power_hz: float, rng: random.Random, amplitude: float
) -> float:
    """A drifted server power: multiplicative noise, floored at 1 MHz.

    Same contract as :func:`drift_workflow`: deterministic in the RNG
    state, and amplitude 0 returns *power_hz* unchanged without
    consuming randomness.
    """
    _validated_amplitude(amplitude)
    if amplitude == 0.0:
        return power_hz
    return max(1e6, power_hz * (1.0 + amplitude * rng.uniform(-1.0, 1.0)))


def _build_drift(seed: int) -> Scenario:
    """Six tenants under six rounds of cumulative parameter drift."""
    rng = coerce_rng(seed)
    network = random_bus_network(
        6, seed=rng.randrange(2**31), name="fleet-drift"
    )
    server_names = tuple(network.server_names)
    powers = {name: network.server(name).power_hz for name in server_names}
    workflows: dict[str, Workflow] = {}
    events: list[FleetEvent] = []
    for index in range(1, 7):
        tenant = f"tenant-{index:03d}"
        workflows[tenant] = _tenant_workflow(rng, index, graph_share=0.5)
        events.append(DeployRequest(tenant, workflows[tenant]))
    events.append(Tick())
    for round_index in range(6):
        # drift compounds: each round perturbs the previous round's
        # parameters, so the fleet's beliefs keep aging
        for tenant in sorted(workflows):
            workflows[tenant] = drift_workflow(
                workflows[tenant], rng, amplitude=0.25
            )
            events.append(WorkloadDrift(tenant, workflows[tenant]))
        if round_index % 2 == 1:
            server = server_names[rng.randrange(len(server_names))]
            powers[server] = drift_capacity(
                powers[server], rng, amplitude=0.3
            )
            events.append(CapacityDrift(server, powers[server]))
        events.append(Tick())
    # a hair-trigger rebalance threshold: without hysteresis the
    # controller chases every drifted estimate, which is exactly the
    # churn the migration-aware objective is meant to damp
    config = FleetConfig(
        drift_threshold=0.02, max_moves_per_rebalance=4, seed=seed
    )
    return Scenario(
        name="drift",
        description=(
            "6 tenants, 6 rounds of workload/capacity drift, "
            "tick rebalances on a hair trigger"
        ),
        network=network,
        config=config,
        events=tuple(events),
    )


def _build_abilene(seed: int) -> Scenario:
    """Tenants on the real Abilene backbone under link failures.

    The fleet is the bundled 12-PoP Abilene topology (sparse, genuinely
    multi-hop, heterogeneous propagation delays) with seeded per-node
    powers. Mid-trace, a core trunk browns out, a redundant western
    trunk dies outright, and a failure that would cut off the
    degree-one Atlanta M5 PoP is rejected -- exercising every branch of
    the link-event handlers plus the route-table invalidation path.
    """
    rng = coerce_rng(seed)
    network = abilene_network(name="fleet-abilene")
    for name in network.server_names:
        network.replace_server(Server(name, rng.uniform(1e9, 4e9)))
    events: list[FleetEvent] = []
    for index in range(1, 9):
        events.append(
            DeployRequest(f"tenant-{index:03d}", _tenant_workflow(rng, index))
        )
        if index % 4 == 0:
            events.append(Tick())
    # a core trunk browns out to a tenth of its speed
    events.append(LinkDegrade("IPLSng", "KSCYng", speed_factor=0.1))
    events.append(Tick())
    # a western trunk dies; Denver keeps two redundant paths
    events.append(LinkFailure("DNVRng", "SNVAng"))
    events.append(Tick())
    for index in range(9, 11):
        events.append(
            DeployRequest(f"tenant-{index:03d}", _tenant_workflow(rng, index))
        )
    # ATLAM5's only trunk: dropping it would partition -> rejected
    events.append(LinkFailure("ATLAM5", "ATLAng"))
    events.append(
        LinkDegrade(
            "HSTNng", "LOSAng", speed_factor=0.25, propagation_factor=1.5
        )
    )
    events.append(Tick())
    config = FleetConfig(
        drift_threshold=0.15, max_moves_per_rebalance=4, seed=seed
    )
    return Scenario(
        name="abilene",
        description=(
            "10 tenants on the Abilene backbone; trunk brownout, "
            "a link failure, and a rejected partition"
        ),
        network=network,
        config=config,
        events=tuple(events),
    )


def _build_geo(seed: int) -> Scenario:
    """A geo-region fleet losing a whole region mid-trace.

    Four cloud regions with two servers each (seeded powers and
    latency jitter); an inter-region backbone link degrades, then all
    of us-east -- the region hosting the bulk of the load -- goes dark
    at once and its orphans re-home fleet-wide. A
    region outage for an unknown region is rejected -- the graceful
    path for replays against shrunken fleets.
    """
    rng = coerce_rng(seed)
    network = random_geo_network(
        4,
        servers_per_region=2,
        seed=rng.randrange(2**31),
        name="fleet-geo",
    )
    events: list[FleetEvent] = []
    for index in range(1, 7):
        events.append(
            DeployRequest(f"tenant-{index:03d}", _tenant_workflow(rng, index))
        )
        if index % 3 == 0:
            events.append(Tick())
    # the transatlantic backbone congests to a fifth of its speed
    events.append(
        LinkDegrade("us-east/1", "eu-west/1", speed_factor=0.2)
    )
    events.append(Tick())
    events.append(RegionOutage("us-east"))
    events.append(Tick())
    for index in range(7, 9):
        events.append(
            DeployRequest(f"tenant-{index:03d}", _tenant_workflow(rng, index))
        )
    events.append(RegionOutage("mars"))  # unknown region -> rejected
    events.append(Tick())
    config = FleetConfig(
        drift_threshold=0.1, max_moves_per_rebalance=4, seed=seed
    )
    return Scenario(
        name="geo",
        description=(
            "6+2 tenants over 4 cloud regions; backbone degradation "
            "and a full us-east outage"
        ),
        network=network,
        config=config,
        events=tuple(events),
    )


def _build_diurnal(seed: int) -> Scenario:
    """Sinusoidal traffic waves with peak brownouts and trough recoveries.

    Six tenants on a three-region geo fleet, then sixteen rounds of a
    period-eight day: every round rescales each tenant's *base*
    workflow by ``1 + 0.6 * sin(2 * pi * round / 8)`` (the
    :func:`wave_workflow` diurnal wave) plus a light seeded jitter. At
    every peak the inter-region trunk slows to half speed -- a strict
    worsening, the link-scoped invalidation path -- and at every trough
    it doubles back to exactly its base speed (``(s * 0.5) * 2.0 == s``
    in IEEE-754) -- an improvement, the full-recompile path. The trace
    therefore alternates both sides of the invalidation asymmetry while
    the load itself breathes.
    """
    rng = coerce_rng(seed)
    network = random_geo_network(
        3,
        servers_per_region=2,
        seed=rng.randrange(2**31),
        name="fleet-diurnal",
    )
    trunk = next(
        link
        for link in network.links
        if region_of(link.a) != region_of(link.b)
    )
    base: dict[str, Workflow] = {}
    events: list[FleetEvent] = []
    for index in range(1, 7):
        tenant = f"tenant-{index:03d}"
        base[tenant] = _tenant_workflow(rng, index, graph_share=0.4)
        events.append(DeployRequest(tenant, base[tenant]))
    events.append(Tick())
    period = 8
    for round_index in range(16):
        factor = 1.0 + 0.6 * math.sin(2 * math.pi * round_index / period)
        for tenant in sorted(base):
            waved = wave_workflow(base[tenant], factor)
            events.append(
                WorkloadDrift(
                    tenant, drift_workflow(waved, rng, amplitude=0.05)
                )
            )
        if round_index % period == 2:  # peak: trunk browns out (worsening)
            events.append(
                LinkDegrade(trunk.a, trunk.b, speed_factor=0.5)
            )
        elif round_index % period == 6:  # trough: trunk recovers (improvement)
            events.append(
                LinkDegrade(trunk.a, trunk.b, speed_factor=2.0)
            )
        events.append(Tick())
    config = FleetConfig(
        drift_threshold=0.1,
        max_moves_per_rebalance=4,
        rebalance_cooldown_ticks=1,
        seed=seed,
    )
    return Scenario(
        name="diurnal",
        description=(
            "6 tenants, 16 rounds of sinusoidal traffic waves; trunk "
            "brownouts at peaks, recoveries at troughs"
        ),
        network=network,
        config=config,
        events=tuple(events),
    )


_BUILTIN: dict[str, Callable[[int], Scenario]] = {
    "steady": _build_steady,
    "churn": _build_churn,
    "surge": _build_surge,
    "drift": _build_drift,
    "abilene": _build_abilene,
    "geo": _build_geo,
    "diurnal": _build_diurnal,
}


def builtin_scenarios() -> tuple[str, ...]:
    """Names of the builtin scenarios."""
    return tuple(_BUILTIN)


def build_scenario(
    name: str, seed: int = 0, algorithm: str | None = None
) -> Scenario:
    """Materialise the builtin scenario *name* from *seed*.

    *algorithm* overrides the scenario's default placement algorithm.
    """
    try:
        builder = _BUILTIN[name]
    except KeyError:
        known = ", ".join(sorted(_BUILTIN))
        raise ServiceError(
            f"unknown scenario {name!r}; builtin scenarios: {known}"
        ) from None
    scenario = builder(seed)
    if algorithm is not None:
        # dataclasses.replace keeps every other policy knob -- the old
        # field-by-field rebuild silently dropped newer config fields
        scenario = Scenario(
            name=scenario.name,
            description=scenario.description,
            network=scenario.network,
            config=replace(scenario.config, algorithm=algorithm),
            events=scenario.events,
        )
    return scenario


def replay(
    scenario: Scenario | str,
    seed: int = 0,
    algorithm: str | None = None,
    clock: Callable[[], float] | None = None,
) -> FleetController:
    """Run a scenario through a fresh controller; return the controller.

    Accepts a built :class:`Scenario` or a builtin name (built from
    *seed*). The default clock is a :class:`StepClock`, making the
    returned controller's log and metrics exact functions of
    ``(scenario, seed)`` -- pass :func:`time.perf_counter` for real
    latencies instead.
    """
    if isinstance(scenario, str):
        scenario = build_scenario(scenario, seed=seed, algorithm=algorithm)
    controller = FleetController(
        scenario.network,
        config=scenario.config,
        clock=clock if clock is not None else StepClock(),
    )
    controller.run(scenario.events)
    return controller
