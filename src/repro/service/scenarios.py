"""Scripted, seeded fleet scenarios and the replay driver.

A scenario is a complete service lifecycle frozen into data: an initial
fleet network, a :class:`~repro.service.controller.FleetConfig`, and an
ordered event trace (arrivals, departures, failures, joins, ticks). All
randomness -- workflow shapes, server powers, arrival ordering -- is
drawn from one seed, and replays run the controller under a
deterministic :class:`~repro.service.controller.StepClock`, so the same
``(name, seed)`` pair always produces byte-identical logs and metrics.

Three builtin scenarios cover the interesting regimes:

``steady``
    A small fleet absorbing tenant arrivals and departures; no
    infrastructure events. Exercises admission and drift checks.
``churn``
    Arrivals under a finite admission capacity plus server failures and
    a join: the full recovery story, with some requests rejected.
``surge``
    A 200-event trace over a 20-server fleet -- the benchmark scenario
    for events/second throughput and shared-cache hit rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.core.rng import coerce_rng
from repro.exceptions import ServiceError
from repro.network.topology import ServerNetwork
from repro.service.controller import FleetConfig, FleetController, StepClock
from repro.service.events import (
    DeployRequest,
    FleetEvent,
    ServerFailed,
    ServerJoined,
    Tick,
    UndeployRequest,
)
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)

__all__ = ["Scenario", "builtin_scenarios", "build_scenario", "replay"]


@dataclass(frozen=True)
class Scenario:
    """One replayable lifecycle: fleet + config + event trace.

    A built scenario is one-shot: the controller takes ownership of
    (and mutates) :attr:`network`. To replay again, rebuild from the
    same ``(name, seed)`` -- which is exactly what
    :func:`replay` does when given a name instead of an instance.
    """

    name: str
    description: str
    network: ServerNetwork
    config: FleetConfig
    events: tuple[FleetEvent, ...]


def _tenant_workflow(rng: random.Random, index: int, graph_share: float = 0.3):
    """A small tenant workflow: mostly lines, some random graphs."""
    size = rng.randint(6, 14)
    seed = rng.randrange(2**31)
    if rng.random() < graph_share:
        return random_graph_workflow(
            size,
            GraphStructure.HYBRID,
            seed=seed,
            name=f"tenant-{index:03d}-graph",
        )
    return line_workflow(size, seed=seed, name=f"tenant-{index:03d}-line")


def _build_steady(seed: int) -> Scenario:
    """Arrivals and departures on a 6-server fleet, no infrastructure."""
    rng = coerce_rng(seed)
    network = random_bus_network(
        6, seed=rng.randrange(2**31), name="fleet-steady"
    )
    events: list[FleetEvent] = []
    for index in range(1, 9):
        events.append(
            DeployRequest(f"tenant-{index:03d}", _tenant_workflow(rng, index))
        )
        if index % 3 == 0:
            events.append(Tick())
    events.append(UndeployRequest("tenant-002"))
    events.append(UndeployRequest("tenant-005"))
    events.append(Tick())
    for index in range(9, 11):
        events.append(
            DeployRequest(f"tenant-{index:03d}", _tenant_workflow(rng, index))
        )
    events.append(Tick())
    config = FleetConfig(drift_threshold=0.3, seed=seed)
    return Scenario(
        name="steady",
        description="8 arrivals, 2 departures, periodic drift checks",
        network=network,
        config=config,
        events=tuple(events),
    )


def _build_churn(seed: int) -> Scenario:
    """Capacity-limited arrivals with failures and a late join."""
    rng = coerce_rng(seed)
    network = random_bus_network(
        8, seed=rng.randrange(2**31), name="fleet-churn"
    )
    events: list[FleetEvent] = []
    for index in range(1, 7):
        events.append(
            DeployRequest(f"tenant-{index:03d}", _tenant_workflow(rng, index))
        )
    events.append(Tick())
    events.append(ServerFailed("S3"))
    events.append(Tick())
    for index in range(7, 13):
        events.append(
            DeployRequest(f"tenant-{index:03d}", _tenant_workflow(rng, index))
        )
    events.append(ServerFailed("S6"))
    events.append(Tick())
    events.append(UndeployRequest("tenant-001"))
    events.append(UndeployRequest("tenant-004"))
    events.append(
        ServerJoined("S9", power_hz=2e9, link_speed_bps=100e6)
    )
    events.append(Tick())
    for index in range(13, 16):
        events.append(
            DeployRequest(f"tenant-{index:03d}", _tenant_workflow(rng, index))
        )
    events.append(Tick())
    # ~0.008 s of mean load per mid-size tenant on this fleet: a 0.05 s
    # cap admits roughly the first half dozen and rejects the overflow.
    # The tight drift threshold makes post-failure ticks rebalance.
    config = FleetConfig(
        admission_load_limit_s=0.05, drift_threshold=0.1, seed=seed
    )
    return Scenario(
        name="churn",
        description=(
            "capacity-limited arrivals, 2 failures, 1 join, departures"
        ),
        network=network,
        config=config,
        events=tuple(events),
    )


def _build_surge(seed: int) -> Scenario:
    """A 200-event trace over a 20-server fleet (benchmark scenario)."""
    rng = coerce_rng(seed)
    network = random_bus_network(
        20, seed=rng.randrange(2**31), name="fleet-surge"
    )
    events: list[FleetEvent] = []
    live: list[str] = []
    index = 0
    joined = 0
    failed = 0
    while len(events) < 200:
        position = len(events)
        if position % 10 == 9:
            events.append(Tick())
        elif position % 37 == 36 and failed < 3:
            failed += 1
            events.append(ServerFailed(f"S{2 * failed}"))
        elif position % 53 == 52 and joined < 3:
            joined += 1
            events.append(
                ServerJoined(
                    f"S{20 + joined}",
                    power_hz=2e9,
                    link_speed_bps=100e6,
                )
            )
        elif live and rng.random() < 0.18:
            events.append(UndeployRequest(live.pop(0)))
        else:
            index += 1
            tenant = f"tenant-{index:03d}"
            events.append(
                DeployRequest(
                    tenant, _tenant_workflow(rng, index, graph_share=0.2)
                )
            )
            live.append(tenant)
    config = FleetConfig(
        admission_load_limit_s=0.12,
        drift_threshold=0.3,
        max_moves_per_rebalance=3,
        seed=seed,
    )
    return Scenario(
        name="surge",
        description="200 events over a 20-server fleet (benchmark trace)",
        network=network,
        config=config,
        events=tuple(events),
    )


_BUILTIN: dict[str, Callable[[int], Scenario]] = {
    "steady": _build_steady,
    "churn": _build_churn,
    "surge": _build_surge,
}


def builtin_scenarios() -> tuple[str, ...]:
    """Names of the builtin scenarios."""
    return tuple(_BUILTIN)


def build_scenario(
    name: str, seed: int = 0, algorithm: str | None = None
) -> Scenario:
    """Materialise the builtin scenario *name* from *seed*.

    *algorithm* overrides the scenario's default placement algorithm.
    """
    try:
        builder = _BUILTIN[name]
    except KeyError:
        known = ", ".join(sorted(_BUILTIN))
        raise ServiceError(
            f"unknown scenario {name!r}; builtin scenarios: {known}"
        ) from None
    scenario = builder(seed)
    if algorithm is not None:
        scenario = Scenario(
            name=scenario.name,
            description=scenario.description,
            network=scenario.network,
            config=FleetConfig(
                algorithm=algorithm,
                admission_load_limit_s=scenario.config.admission_load_limit_s,
                drift_threshold=scenario.config.drift_threshold,
                max_moves_per_rebalance=scenario.config.max_moves_per_rebalance,
                execution_weight=scenario.config.execution_weight,
                penalty_weight=scenario.config.penalty_weight,
                penalty_mode=scenario.config.penalty_mode,
                seed=scenario.config.seed,
            ),
            events=scenario.events,
        )
    return scenario


def replay(
    scenario: Scenario | str,
    seed: int = 0,
    algorithm: str | None = None,
    clock: Callable[[], float] | None = None,
) -> FleetController:
    """Run a scenario through a fresh controller; return the controller.

    Accepts a built :class:`Scenario` or a builtin name (built from
    *seed*). The default clock is a :class:`StepClock`, making the
    returned controller's log and metrics exact functions of
    ``(scenario, seed)`` -- pass :func:`time.perf_counter` for real
    latencies instead.
    """
    if isinstance(scenario, str):
        scenario = build_scenario(scenario, seed=seed, algorithm=algorithm)
    controller = FleetController(
        scenario.network,
        config=scenario.config,
        clock=clock if clock is not None else StepClock(),
    )
    controller.run(scenario.events)
    return controller
