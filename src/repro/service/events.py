"""Typed events consumed by the fleet controller.

The controller is deliberately event-driven: everything that can happen
to a live fleet -- a tenant asking for a workflow to be hosted, a tenant
leaving, a server failing or joining, and the periodic fairness check --
is a small immutable value object. Scenarios are then just lists of
events, which is what makes a whole service lifecycle replayable and
byte-for-byte reproducible (see :mod:`repro.service.scenarios`).

Every event carries a ``kind`` label used in the :class:`~repro.service.log.FleetLog`
and the metrics breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.workflow import Workflow
from repro.exceptions import ServiceError

__all__ = [
    "FleetEvent",
    "DeployRequest",
    "UndeployRequest",
    "ServerFailed",
    "ServerJoined",
    "WorkloadDrift",
    "CapacityDrift",
    "Tick",
]


@dataclass(frozen=True)
class FleetEvent:
    """Base class for everything the controller can consume.

    Subclasses set :attr:`kind`, the label used in log records and the
    per-event-kind metrics breakdown.
    """

    kind = "event"


@dataclass(frozen=True)
class DeployRequest(FleetEvent):
    """A tenant asks the fleet to host a workflow.

    Attributes
    ----------
    tenant:
        Unique tenant identifier; a second request under the same name
        is rejected (undeploy first).
    workflow:
        The workflow to host. Operation names may collide across tenants;
        the fleet state namespaces them internally.
    algorithm:
        Optional per-request override of the controller's placement
        algorithm (a registered algorithm name).
    """

    kind = "deploy"

    tenant: str
    workflow: Workflow
    algorithm: str | None = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ServiceError("DeployRequest needs a non-empty tenant name")


@dataclass(frozen=True)
class UndeployRequest(FleetEvent):
    """A tenant leaves; its operations are removed from the fleet."""

    kind = "undeploy"

    tenant: str


@dataclass(frozen=True)
class ServerFailed(FleetEvent):
    """A server died; its operations are orphaned and must be re-homed."""

    kind = "server-failed"

    server: str


@dataclass(frozen=True)
class ServerJoined(FleetEvent):
    """New capacity: a server joins the fleet.

    The server is linked to every existing server (the paper's bus
    assumption -- one shared medium), so the fleet stays connected and
    routable without topology-specific wiring in scenarios.

    Attributes
    ----------
    server:
        Name of the new server; must not collide with a live one.
    power_hz:
        Computational power ``P(s)``.
    link_speed_bps:
        Speed of the links attaching it to the existing servers.
    propagation_s:
        Propagation delay of those links.
    """

    kind = "server-joined"

    server: str
    power_hz: float
    link_speed_bps: float
    propagation_s: float = 0.0


@dataclass(frozen=True)
class WorkloadDrift(FleetEvent):
    """A tenant's workload parameters drifted.

    The replacement workflow must keep the *same operation names* (the
    controller rejects the event otherwise): drift perturbs message
    sizes, XOR branch probabilities or cycle counts, it does not change
    the workflow's shape, so the tenant's current placement stays valid
    and only its cost model needs recompiling. Whether the fleet then
    *acts* on the new numbers is the tick rebalancer's decision -- this
    event only updates what the fleet believes about the workload.

    Attributes
    ----------
    tenant:
        The tenant whose workload drifted.
    workflow:
        The drifted workflow (see
        :func:`repro.service.scenarios.drift_workflow`).
    """

    kind = "workload-drift"

    tenant: str
    workflow: Workflow

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ServiceError("WorkloadDrift needs a non-empty tenant name")


@dataclass(frozen=True)
class CapacityDrift(FleetEvent):
    """A server's effective capacity changed.

    Models throttling, contention from co-located workloads, or a
    hardware upgrade: the server keeps its links and its hosted
    operations, only ``P(s)`` changes. Every tenant's cost model is
    recompiled (capacity enters every ``Tproc`` table).

    Attributes
    ----------
    server:
        The affected server; must be live.
    power_hz:
        The new computational power ``P(s)`` (> 0).
    """

    kind = "capacity-drift"

    server: str
    power_hz: float


@dataclass(frozen=True)
class Tick(FleetEvent):
    """Periodic maintenance: check fairness drift, maybe rebalance.

    Ticks are explicit events rather than wall-clock timers so that a
    scenario replay is deterministic: the drift check happens exactly
    where the trace says it does.
    """

    kind = "tick"
