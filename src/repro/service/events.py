"""Typed events consumed by the fleet controller.

The controller is deliberately event-driven: everything that can happen
to a live fleet -- a tenant asking for a workflow to be hosted, a tenant
leaving, a server failing or joining, and the periodic fairness check --
is a small immutable value object. Scenarios are then just lists of
events, which is what makes a whole service lifecycle replayable and
byte-for-byte reproducible (see :mod:`repro.service.scenarios`).

Every event carries a ``kind`` label used in the :class:`~repro.service.log.FleetLog`
and the metrics breakdown.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.workflow import Workflow
from repro.exceptions import ServiceError

__all__ = [
    "FleetEvent",
    "DeployRequest",
    "UndeployRequest",
    "ServerFailed",
    "ServerJoined",
    "WorkloadDrift",
    "CapacityDrift",
    "LinkFailure",
    "LinkDegrade",
    "RegionOutage",
    "Tick",
]


@dataclass(frozen=True)
class FleetEvent:
    """Base class for everything the controller can consume.

    Subclasses set :attr:`kind`, the label used in log records and the
    per-event-kind metrics breakdown.
    """

    kind = "event"


@dataclass(frozen=True)
class DeployRequest(FleetEvent):
    """A tenant asks the fleet to host a workflow.

    Attributes
    ----------
    tenant:
        Unique tenant identifier; a second request under the same name
        is rejected (undeploy first).
    workflow:
        The workflow to host. Operation names may collide across tenants;
        the fleet state namespaces them internally.
    algorithm:
        Optional per-request override of the controller's placement
        algorithm (a registered algorithm name).
    """

    kind = "deploy"

    tenant: str
    workflow: Workflow
    algorithm: str | None = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ServiceError("DeployRequest needs a non-empty tenant name")


@dataclass(frozen=True)
class UndeployRequest(FleetEvent):
    """A tenant leaves; its operations are removed from the fleet."""

    kind = "undeploy"

    tenant: str


@dataclass(frozen=True)
class ServerFailed(FleetEvent):
    """A server died; its operations are orphaned and must be re-homed."""

    kind = "server-failed"

    server: str


@dataclass(frozen=True)
class ServerJoined(FleetEvent):
    """New capacity: a server joins the fleet.

    The server is linked to every existing server (the paper's bus
    assumption -- one shared medium), so the fleet stays connected and
    routable without topology-specific wiring in scenarios.

    Attributes
    ----------
    server:
        Name of the new server; must not collide with a live one.
    power_hz:
        Computational power ``P(s)``.
    link_speed_bps:
        Speed of the links attaching it to the existing servers.
    propagation_s:
        Propagation delay of those links.
    """

    kind = "server-joined"

    server: str
    power_hz: float
    link_speed_bps: float
    propagation_s: float = 0.0


@dataclass(frozen=True)
class WorkloadDrift(FleetEvent):
    """A tenant's workload parameters drifted.

    The replacement workflow must keep the *same operation names* (the
    controller rejects the event otherwise): drift perturbs message
    sizes, XOR branch probabilities or cycle counts, it does not change
    the workflow's shape, so the tenant's current placement stays valid
    and only its cost model needs recompiling. Whether the fleet then
    *acts* on the new numbers is the tick rebalancer's decision -- this
    event only updates what the fleet believes about the workload.

    Attributes
    ----------
    tenant:
        The tenant whose workload drifted.
    workflow:
        The drifted workflow (see
        :func:`repro.service.scenarios.drift_workflow`).
    """

    kind = "workload-drift"

    tenant: str
    workflow: Workflow

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ServiceError("WorkloadDrift needs a non-empty tenant name")


@dataclass(frozen=True)
class CapacityDrift(FleetEvent):
    """A server's effective capacity changed.

    Models throttling, contention from co-located workloads, or a
    hardware upgrade: the server keeps its links and its hosted
    operations, only ``P(s)`` changes. Every tenant's cost model is
    recompiled (capacity enters every ``Tproc`` table).

    Attributes
    ----------
    server:
        The affected server; must be live.
    power_hz:
        The new computational power ``P(s)`` (> 0).
    """

    kind = "capacity-drift"

    server: str
    power_hz: float


@dataclass(frozen=True)
class LinkFailure(FleetEvent):
    """A link between two live servers went dark.

    The controller removes the link from the topology, invalidates the
    route-delay tables (placements stay valid -- only message paths
    change) and runs a drift check with a bounded rebalance. A failure
    that would disconnect the fleet is rejected and the link kept: a
    partitioned fleet cannot route, so the event models the last
    redundant path dying, not a full partition.
    """

    kind = "link-failed"

    a: str
    b: str


@dataclass(frozen=True)
class LinkDegrade(FleetEvent):
    """A link's parameters changed: brownout, congestion, or an upgrade.

    The link between *a* and *b* keeps its place in the topology but
    its speed is multiplied by *speed_factor* and its propagation delay
    by *propagation_factor*. Factors above 1 model upgrades; the
    controller only recomputes routes and re-checks drift either way.

    Attributes
    ----------
    a, b:
        Endpoint server names (order-insensitive, as in
        :class:`~repro.network.topology.Link`).
    speed_factor:
        Multiplier on the link's ``speed_bps`` (> 0, finite).
    propagation_factor:
        Multiplier on the link's ``propagation_s`` (>= 0, finite;
        default 1.0 leaves propagation untouched).
    """

    kind = "link-degraded"

    a: str
    b: str
    speed_factor: float
    propagation_factor: float = 1.0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.speed_factor) and self.speed_factor > 0):
            raise ServiceError(
                f"LinkDegrade speed_factor must be finite and > 0, "
                f"got {self.speed_factor!r}"
            )
        if not (
            math.isfinite(self.propagation_factor)
            and self.propagation_factor >= 0
        ):
            raise ServiceError(
                f"LinkDegrade propagation_factor must be finite and >= 0, "
                f"got {self.propagation_factor!r}"
            )

    @property
    def is_worsening(self) -> bool:
        """Whether the change strictly worsens the link.

        True when the link gets no faster *and* no less laggy -- the
        precondition for link-scoped route invalidation (a route that
        avoids a worsened link stays optimal). Any improving factor
        (a speed-up or a propagation cut) can attract routes that never
        crossed the link, so those fall back to full invalidation.
        """
        return self.speed_factor <= 1.0 and self.propagation_factor >= 1.0


@dataclass(frozen=True)
class RegionOutage(FleetEvent):
    """Every server of one geo region fails at once.

    Region membership is parsed from server names by
    :func:`repro.scenarios.geo.region_of` (the ``{region}/{i}`` naming
    of the geo factories; a bare name is its own region). The
    controller fails all member servers, then re-homes the orphans of
    every affected tenant in one fleet-wide pass -- so orphans are
    never parked on a server that is about to die in the same outage.
    An outage covering the whole fleet is rejected.
    """

    kind = "region-outage"

    region: str

    def __post_init__(self) -> None:
        if not self.region:
            raise ServiceError("RegionOutage needs a non-empty region name")


@dataclass(frozen=True)
class Tick(FleetEvent):
    """Periodic maintenance: check fairness drift, maybe rebalance.

    Ticks are explicit events rather than wall-clock timers so that a
    scenario replay is deterministic: the drift check happens exactly
    where the trace says it does.
    """

    kind = "tick"
