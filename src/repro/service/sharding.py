"""Horizontal scale-out: hash tenants across controller shards.

One :class:`~repro.service.controller.FleetController` is a single
decision loop -- fine for one fleet, a bottleneck for many tenants. A
:class:`ShardRouter` runs *N* controllers side by side and routes every
tenant to exactly one of them by a **stable** hash of the tenant name
(:func:`shard_for` uses SHA-1, never Python's per-process-randomised
``hash``), so the same tenant lands on the same shard in every process
and every run -- routing is part of the determinism contract.

Events that concern a tenant (deploy/undeploy) go to that tenant's
shard only. Events that concern the fleet itself (server failures,
joins, ticks) broadcast to every shard: each shard sees the same
topology and recovers/rebalances its own tenants.

The global rebalance budget is divided, not copied: shard *i* receives
``slice_budget(budget, shards, i)`` (the same deterministic split the
parallel runtime uses for workers), so *N* shards together spend the
same optimisation budget one controller would have.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Callable

from repro.exceptions import ServiceError
from repro.io.json_codec import network_from_dict, network_to_dict
from repro.network.topology import ServerNetwork
from repro.parallel.budget import slice_budget
from repro.service.controller import FleetConfig, FleetController
from repro.service.events import (
    DeployRequest,
    FleetEvent,
    UndeployRequest,
)
from repro.service.log import LogRecord
from repro.service.state import FleetSnapshot

__all__ = ["shard_for", "ShardRouter"]


def shard_for(tenant: str, shards: int) -> int:
    """The shard index *tenant* hashes to -- stable across processes.

    SHA-1 of the UTF-8 name modulo *shards*; deliberately not Python's
    ``hash``, whose per-process randomisation would re-route every
    tenant on restart and break replay determinism.
    """
    if shards < 1:
        raise ServiceError(f"shard count must be >= 1, got {shards}")
    digest = hashlib.sha1(tenant.encode("utf-8")).hexdigest()
    return int(digest, 16) % shards


class ShardRouter:
    """*N* controllers behind one ``handle()`` -- tenants hashed across.

    Parameters
    ----------
    network:
        The initial fleet topology. Every shard starts from its own
        deep copy (controllers mutate their network on join/failure).
    config:
        The fleet configuration; each shard runs a copy whose
        ``rebalance_budget`` is that shard's
        :func:`~repro.parallel.budget.slice_budget` share of the global
        budget.
    shards:
        Number of controller instances (>= 1).
    clock_factory:
        Called once per shard to build its clock (``None`` keeps each
        controller's default). A factory -- not a shared clock -- so
        deterministic shards don't interleave their step counters.
    """

    def __init__(
        self,
        network: ServerNetwork,
        config: FleetConfig | None = None,
        shards: int = 2,
        clock_factory: Callable[[], Callable[[], float]] | None = None,
    ):
        if shards < 1:
            raise ServiceError(f"shard count must be >= 1, got {shards}")
        config = config or FleetConfig()
        network_doc = network_to_dict(network)
        self.shards = shards
        self.configs: tuple[FleetConfig, ...] = tuple(
            replace(
                config,
                rebalance_budget=slice_budget(
                    config.rebalance_budget, shards, index
                ),
            )
            for index in range(shards)
        )
        self.controllers: tuple[FleetController, ...] = tuple(
            FleetController(
                network_from_dict(network_doc),
                config=self.configs[index],
                clock=clock_factory() if clock_factory is not None else None,
            )
            for index in range(shards)
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of(self, tenant: str) -> int:
        """The shard index serving *tenant*."""
        return shard_for(tenant, self.shards)

    def controller_for(self, tenant: str) -> FleetController:
        """The controller instance serving *tenant*."""
        return self.controllers[self.shard_of(tenant)]

    def targets(self, event: FleetEvent) -> tuple[int, ...]:
        """The shard indices an event goes to (all, for fleet events)."""
        if isinstance(event, (DeployRequest, UndeployRequest)):
            return (self.shard_of(event.tenant),)
        return tuple(range(self.shards))

    def handle(self, event: FleetEvent) -> tuple[tuple[int, LogRecord], ...]:
        """Route *event*; return ``(shard, record)`` per shard reached."""
        return tuple(
            (index, self.controllers[index].handle(event))
            for index in self.targets(event)
        )

    def run(
        self, events: "list[FleetEvent] | tuple[FleetEvent, ...]"
    ) -> tuple[tuple[int, LogRecord], ...]:
        """Route a whole event trace; return every ``(shard, record)``."""
        results: list[tuple[int, LogRecord]] = []
        for event in events:
            results.extend(self.handle(event))
        return tuple(results)

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    def snapshots(self) -> tuple[FleetSnapshot, ...]:
        """Each shard's current snapshot, in shard order."""
        return tuple(
            controller.state.snapshot() for controller in self.controllers
        )

    def tenants(self) -> dict[str, int]:
        """Every hosted tenant mapped to its shard index."""
        placement: dict[str, int] = {}
        for index, controller in enumerate(self.controllers):
            for tenant in controller.state.tenants:
                placement[tenant] = index
        return dict(sorted(placement.items()))

    def total_objective(self) -> float:
        """Sum of the shard objectives (the fleet-of-fleets cost)."""
        return sum(snapshot.objective for snapshot in self.snapshots())
