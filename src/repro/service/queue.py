"""Priority work queue for fleet jobs, with deterministic reprioritization.

The controller of :mod:`repro.service.controller` is synchronous: an
event handed to :meth:`~repro.service.controller.FleetController.handle`
is decided on the spot. A durable service needs a layer in front of it
-- clients *submit* work, the service admits it into a priority queue,
and a worker loop drains the queue one job at a time. That indirection
is what makes reprioritization possible: while a job is still queued,
changed fleet conditions may move it forward or backward, exactly the
EQSQL pattern of OSPREY (queue tasks with priorities, then
``update_priorities`` on the still-queued ones as the model retrains).

Two pieces:

:class:`WorkQueue`
    A stable-ordered binary heap of :class:`Job` entries. Jobs pop in
    ``(priority, submission order)`` order -- *lower* priority numbers
    pop first, and equal priorities pop strictly in submission order
    (the determinism contract: a replayed submission sequence drains
    identically). :meth:`WorkQueue.update_priorities` re-keys
    queued-but-unstarted jobs only; running and finished jobs are never
    touched.
:class:`FleetService`
    Binds a :class:`WorkQueue` to a
    :class:`~repro.service.controller.FleetController` and implements
    the built-in reprioritization policies:

    * a :class:`~repro.service.events.ServerFailed` submission preempts
      -- every queued job belonging to a tenant hosted on the failed
      server is boosted to :data:`PREEMPT_PRIORITY`, so recovery-affected
      work runs right after the failover itself;
    * a drift-triggered rebalance (a processed tick whose action is
      ``rebalanced``) raises the priority of the queued drift checks to
      :data:`DRIFT_PRIORITY` -- a drifting fleet gets re-checked before
      new arrivals pile more load on it.

    Both policies are pure functions of the queue and the fleet state,
    so a replayed job trace reorders identically.

Everything is in-process and synchronous; the REST façade of
:mod:`repro.service.server` serialises access with a lock, and the
checkpoint layer persists the controller underneath the queue.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.exceptions import ReproError, ServiceError
from repro.service.controller import FleetController
from repro.service.events import (
    CapacityDrift,
    DeployRequest,
    FleetEvent,
    ServerFailed,
    ServerJoined,
    Tick,
    UndeployRequest,
    WorkloadDrift,
)
from repro.service.log import LogRecord

__all__ = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "DEFAULT_PRIORITIES",
    "PREEMPT_PRIORITY",
    "DRIFT_PRIORITY",
    "Job",
    "WorkQueue",
    "FleetService",
    "event_subject",
]

#: Job lifecycle states. A job moves ``QUEUED -> RUNNING -> DONE`` (or
#: ``FAILED`` when the controller raises); reprioritization only ever
#: applies to ``QUEUED``.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Default admission priority per event kind (lower pops first).
#: Failovers outrank everything; capacity changes (drift and joins)
#: beat tenant churn -- stale capacity beliefs poison every placement
#: decision behind them; workload drift lands between departures and
#: arrivals; drift checks run after the queue of arrivals drains.
DEFAULT_PRIORITIES: Mapping[str, int] = {
    ServerFailed.kind: 0,
    ServerJoined.kind: 20,
    CapacityDrift.kind: 25,
    UndeployRequest.kind: 40,
    WorkloadDrift.kind: 50,
    DeployRequest.kind: 60,
    Tick.kind: 80,
}

#: Priority queued jobs of failure-affected tenants are boosted to: just
#: after the failover job itself, ahead of every routine job.
PREEMPT_PRIORITY = 1

#: Priority queued drift checks (ticks) are raised to once a processed
#: tick actually rebalanced -- a drifting fleet re-checks before new
#: arrivals land.
DRIFT_PRIORITY = 30


def event_subject(event: FleetEvent) -> str:
    """The tenant or server an event concerns (``fleet`` for ticks)."""
    for attribute in ("tenant", "server"):
        value = getattr(event, attribute, None)
        if value is not None:
            return str(value)
    return "fleet"


@dataclass
class Job:
    """One queued unit of fleet work.

    Attributes
    ----------
    id:
        Stable identifier, assigned at submission (0-based).
    event:
        The :class:`~repro.service.events.FleetEvent` to hand to the
        controller when the job runs.
    priority:
        Current priority; lower pops first. Mutated only by
        :meth:`WorkQueue.update_priorities` while the job is queued.
    seq:
        Submission counter -- the tie-break that keeps equal priorities
        in submission order, *preserved* across reprioritizations.
    state:
        One of :data:`QUEUED`, :data:`RUNNING`, :data:`DONE`,
        :data:`FAILED`.
    record:
        The controller's :class:`~repro.service.log.LogRecord` once the
        job is done.
    error:
        The one-line failure message when the controller raised.
    """

    id: int
    event: FleetEvent
    priority: int
    seq: int
    state: str = QUEUED
    record: LogRecord | None = None
    error: str = ""

    @property
    def kind(self) -> str:
        """The event kind (``deploy``, ``tick``, ...)."""
        return self.event.kind

    @property
    def subject(self) -> str:
        """The tenant/server the job concerns (``fleet`` for ticks)."""
        return event_subject(self.event)


class WorkQueue:
    """A stable-ordered priority queue of :class:`Job` entries.

    Implemented as a binary heap keyed ``(priority, seq)`` with lazy
    invalidation: :meth:`update_priorities` pushes a fresh heap entry
    under the job's *original* submission sequence and the stale entry
    is discarded when it surfaces (its recorded priority no longer
    matches the job's). Equal priorities therefore pop in submission
    order before *and* after any number of reprioritizations -- the
    stable-order determinism contract.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, int]] = []
        self._jobs: dict[int, Job] = {}
        self._submitted = 0

    # ------------------------------------------------------------------
    # submission and queries
    # ------------------------------------------------------------------
    def submit(self, event: FleetEvent, priority: int | None = None) -> Job:
        """Queue *event*; return its :class:`Job`.

        *priority* defaults to the event kind's entry in
        :data:`DEFAULT_PRIORITIES`.
        """
        if not isinstance(event, FleetEvent):
            raise ServiceError(
                f"can only queue FleetEvent instances, got "
                f"{type(event).__name__!r}"
            )
        if priority is None:
            priority = DEFAULT_PRIORITIES.get(event.kind, 100)
        job = Job(
            id=self._submitted,
            event=event,
            priority=int(priority),
            seq=self._submitted,
        )
        self._submitted += 1
        self._jobs[job.id] = job
        heapq.heappush(self._heap, (job.priority, job.seq, job.id))
        return job

    def job(self, job_id: int) -> Job:
        """The job with *job_id* or raise."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServiceError(f"no job #{job_id} in the queue") from None

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs.values())

    @property
    def jobs(self) -> tuple[Job, ...]:
        """Every job ever submitted, in submission order."""
        return tuple(self._jobs.values())

    def queued(self) -> tuple[Job, ...]:
        """Still-queued jobs in the order they would pop."""
        return tuple(
            sorted(
                (job for job in self._jobs.values() if job.state == QUEUED),
                key=lambda job: (job.priority, job.seq),
            )
        )

    @property
    def pending(self) -> int:
        """Number of jobs still waiting to run."""
        return sum(1 for job in self._jobs.values() if job.state == QUEUED)

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------
    def pop(self) -> Job | None:
        """Claim the next queued job (``None`` when the queue is empty).

        The popped job transitions to :data:`RUNNING`; finish it with
        :meth:`complete` or :meth:`fail`.
        """
        while self._heap:
            priority, seq, job_id = heapq.heappop(self._heap)
            job = self._jobs[job_id]
            if job.state != QUEUED or job.priority != priority:
                continue  # stale entry left behind by a reprioritization
            job.state = RUNNING
            return job
        return None

    def complete(self, job: Job, record: LogRecord) -> Job:
        """Mark a running *job* done, attaching the decision *record*."""
        self._require_running(job, "complete")
        job.state = DONE
        job.record = record
        return job

    def fail(self, job: Job, error: str) -> Job:
        """Mark a running *job* failed with a one-line *error*."""
        self._require_running(job, "fail")
        job.state = FAILED
        job.error = error
        return job

    def _require_running(self, job: Job, verb: str) -> None:
        if job.state != RUNNING:
            raise ServiceError(
                f"cannot {verb} job #{job.id}: it is {job.state}, "
                f"not {RUNNING}"
            )

    # ------------------------------------------------------------------
    # reprioritization
    # ------------------------------------------------------------------
    def update_priorities(
        self, reprioritize: Callable[[Job], int | None]
    ) -> tuple[Job, ...]:
        """Re-key still-queued jobs; return the jobs that moved.

        *reprioritize* sees every :data:`QUEUED` job in submission order
        and returns its new priority, or ``None`` to leave it alone.
        Running and finished jobs are never offered -- in-flight work is
        immovable by design. A moved job keeps its original submission
        sequence, so jobs that end up sharing a priority still pop in
        submission order.
        """
        changed: list[Job] = []
        for job in self._jobs.values():
            if job.state != QUEUED:
                continue
            updated = reprioritize(job)
            if updated is None or int(updated) == job.priority:
                continue
            job.priority = int(updated)
            heapq.heappush(self._heap, (job.priority, job.seq, job.id))
            changed.append(job)
        return tuple(changed)


class FleetService:
    """A queue-driven façade over one :class:`FleetController`.

    Parameters
    ----------
    controller:
        The controller that actually decides; the service owns its
        lifecycle from here on.
    preempt_priority, drift_priority:
        The boost targets of the two built-in reprioritization policies
        (see the module docs).

    Access is serialised by an internal lock, so one service instance
    can back the threaded REST façade directly.
    """

    def __init__(
        self,
        controller: FleetController,
        preempt_priority: int = PREEMPT_PRIORITY,
        drift_priority: int = DRIFT_PRIORITY,
    ):
        self.controller = controller
        self.queue = WorkQueue()
        self.preempt_priority = preempt_priority
        self.drift_priority = drift_priority
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # submission side
    # ------------------------------------------------------------------
    def submit(self, event: FleetEvent, priority: int | None = None) -> Job:
        """Queue *event*; apply the failure-preemption policy.

        Submitting a :class:`~repro.service.events.ServerFailed` boosts
        every queued job of a tenant currently hosting operations on the
        failed server to :attr:`preempt_priority` -- those tenants' work
        must not run against a stale placement before the failover does.
        """
        with self._lock:
            job = self.queue.submit(event, priority)
            if isinstance(event, ServerFailed):
                self._preempt_for_failure(event.server)
            return job

    def _preempt_for_failure(self, server: str) -> tuple[Job, ...]:
        state = self.controller.state
        if server not in state.network:
            return ()
        affected = {
            tenant
            for tenant in state.tenants
            if state.tenant(tenant).deployment.operations_on(server)
        }
        if not affected:
            return ()

        def boost(job: Job) -> int | None:
            if (
                job.subject in affected
                and job.priority > self.preempt_priority
            ):
                return self.preempt_priority
            return None

        return self.queue.update_priorities(boost)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def process_next(self) -> Job | None:
        """Pop and run one job (``None`` when the queue is drained).

        A controller error fails the job (one-line message captured)
        without poisoning the queue. After a tick that actually
        rebalanced, queued drift checks are raised to
        :attr:`drift_priority` -- the drift-raises-rebalance-priority
        policy.
        """
        with self._lock:
            job = self.queue.pop()
            if job is None:
                return None
            try:
                record = self.controller.handle(job.event)
            except ReproError as exc:
                self.queue.fail(job, str(exc))
                return job
            self.queue.complete(job, record)
            self._react(record)
            return job

    def _react(self, record: LogRecord) -> None:
        if record.event == Tick.kind and record.action == "rebalanced":
            def raise_ticks(job: Job) -> int | None:
                if (
                    job.kind == Tick.kind
                    and job.priority > self.drift_priority
                ):
                    return self.drift_priority
                return None

            self.queue.update_priorities(raise_ticks)

    def drain(self, max_jobs: int | None = None) -> tuple[Job, ...]:
        """Process queued jobs until empty (or *max_jobs*); return them."""
        processed: list[Job] = []
        while max_jobs is None or len(processed) < max_jobs:
            job = self.process_next()
            if job is None:
                break
            processed.append(job)
        return tuple(processed)
