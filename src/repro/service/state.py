"""Live fleet state: servers, tenants, and the shared evaluation caches.

The one-shot experiment modules treat a (workflow, network) pair as an
immutable problem instance. A long-running provider has neither luxury:
servers come and go, tenants arrive and leave, and every admission or
recovery decision must be priced against the *cumulative* load of
everything already hosted. :class:`FleetState` owns exactly that mutable
picture:

* the fleet :class:`~repro.network.topology.ServerNetwork`, mutated by
  joins and rebuilt (via the failover machinery) by failures;
* one :class:`~repro.core.mapping.Deployment` per tenant, so operation
  names never collide across tenants;
* a shared :class:`InstrumentedRouter` and a per-tenant
  :class:`~repro.core.cost.CostModel` cache, both invalidated together
  whenever the topology changes -- the "shared cost-evaluation cache
  across tenants" that makes a 200-event replay cheap. Each cached cost
  model carries the tenant's
  :class:`~repro.core.compiled.CompiledInstance`, the one compiled
  artifact its move evaluators, scorers and simulations all borrow.

All aggregate metrics (combined loads, fairness penalty, Jain balance
index, the scalar fleet objective) are deterministic functions of the
state, which is what lets the controller log byte-identical replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.compiled import penalty_statistic
from repro.core.cost import PENALTY_MODES, CostModel
from repro.core.mapping import Deployment
from repro.core.migration import TransitionObjective
from repro.core.workflow import Workflow
from repro.exceptions import ServiceError
from repro.experiments.failover import remove_server
from repro.network.routing import Router
from repro.network.topology import Link, Server, ServerNetwork

__all__ = [
    "ROUTE_INVALIDATION_MODES",
    "InstrumentedRouter",
    "TenantDeployment",
    "FleetSnapshot",
    "FleetState",
    "load_penalty",
    "jain_index",
]

#: Route-cache refresh policies for link events. ``scoped`` recomputes
#: only the pairs crossing a strictly-worsened link (full recompile on
#: improvements -- the asymmetry of
#: :meth:`repro.network.routing.Router.invalidate`), ``eager`` always
#: recompiles everything up front, ``lazy`` drops caches and refills on
#: demand (the pre-1.9 behaviour). Decisions and logs are identical
#: across all three.
ROUTE_INVALIDATION_MODES = ("scoped", "eager", "lazy")


class InstrumentedRouter(Router):
    """A :class:`~repro.network.routing.Router` exposing cache counters.

    The fleet shares one router across every tenant's cost model, so the
    hit rate directly measures how much cross-tenant reuse the shared
    cache buys -- one of the headline fleet metrics. The base router now
    keys its cache per server *pair* (not per ``(pair, size)`` triple)
    and counts hits/misses itself, so this subclass only survives as the
    fleet-facing name; heterogeneous message sizes between the same pair
    of servers are cache hits instead of guaranteed misses.
    """


@dataclass(frozen=True)
class TenantDeployment:
    """One hosted tenant: its workflow and current mapping."""

    tenant: str
    workflow: Workflow
    deployment: Deployment


@dataclass(frozen=True)
class FleetSnapshot:
    """Aggregate health of the fleet at one instant.

    Attributes
    ----------
    execution_time:
        Max ``Texecute`` over all tenants (they run concurrently, as in
        :mod:`repro.experiments.multi_workflow`); 0 with no tenants.
    time_penalty:
        Fairness penalty over the *combined* per-server loads.
    objective:
        ``execution_weight * execution_time + penalty_weight * time_penalty``
        -- the fleet-level scalar the drift check and rebalances optimise.
    loads:
        Combined per-server load in seconds (every server listed).
    balance_index:
        Jain's fairness index of the loads: 1.0 is perfectly fair,
        ``1/N`` is everything on one of N servers.
    tenants:
        Number of hosted tenants.
    """

    execution_time: float
    time_penalty: float
    objective: float
    loads: Mapping[str, float]
    balance_index: float
    tenants: int


def load_penalty(values: list[float], mode: str) -> float:
    """The :data:`~repro.core.cost.PENALTY_MODES` statistic over *values*.

    A fleet-facing alias of
    :func:`repro.core.compiled.penalty_statistic` (formerly a third
    private copy of the formula).
    """
    return penalty_statistic(values, mode)


def jain_index(loads: Mapping[str, float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    1.0 when every server carries the same load; an idle fleet is
    considered perfectly fair.
    """
    values = list(loads.values())
    if not values:
        return 1.0
    square_sum = sum(v * v for v in values)
    if square_sum <= 0:
        return 1.0
    total = sum(values)
    return total * total / (len(values) * square_sum)


class FleetState:
    """Mutable multi-tenant fleet: network + per-tenant deployments.

    Parameters
    ----------
    network:
        The initial server fleet. The state takes ownership: joins mutate
        it and failures replace it with a shrunken copy.
    execution_weight, penalty_weight, penalty_mode:
        Fleet-objective knobs, with the same semantics (and defaults) as
        :class:`~repro.core.cost.CostModel`.
    route_invalidation:
        How link events refresh the shared routing caches (see
        :data:`ROUTE_INVALIDATION_MODES`): ``"scoped"`` (default)
        eagerly recomputes only the routes crossing a *worsened* link
        and falls back to a full eager recompile for improvements;
        ``"eager"`` always recompiles the whole table; ``"lazy"`` is
        the legacy drop-everything-and-refill-on-demand policy. All
        three produce byte-identical fleet decisions and logs -- they
        trade *when* Dijkstra runs, never what it answers.
    """

    def __init__(
        self,
        network: ServerNetwork,
        execution_weight: float = 0.5,
        penalty_weight: float = 0.5,
        penalty_mode: str = "mad",
        route_invalidation: str = "scoped",
    ):
        if penalty_mode not in PENALTY_MODES:
            raise ServiceError(
                f"unknown penalty mode {penalty_mode!r}; expected one of "
                f"{PENALTY_MODES}"
            )
        if route_invalidation not in ROUTE_INVALIDATION_MODES:
            raise ServiceError(
                f"unknown route invalidation mode {route_invalidation!r}; "
                f"expected one of {ROUTE_INVALIDATION_MODES}"
            )
        self.route_invalidation = route_invalidation
        self._network = network
        self.execution_weight = execution_weight
        self.penalty_weight = penalty_weight
        self.penalty_mode = penalty_mode
        #: The fleet-level objective specification. Migration is a
        #: *transition* cost priced per candidate move by the controller,
        #: not a recurring property of the standing fleet, so the
        #: fleet-state spec never carries a migration term itself.
        self.objective = TransitionObjective(
            execution_weight=execution_weight,
            penalty_weight=penalty_weight,
            penalty_mode=penalty_mode,
        )
        self._router = InstrumentedRouter(network)
        self._tenants: dict[str, TenantDeployment] = {}
        self._cost_models: dict[str, CostModel] = {}
        self.cost_model_hits = 0
        self.cost_model_misses = 0
        # router hit/miss traffic accumulated before lazy-mode cache
        # clears (clear_cache resets the live counters by design)
        self._router_hits_base = 0
        self._router_misses_base = 0
        #: Bumped on every topology change; cache keys include it.
        self.epoch = 0

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def network(self) -> ServerNetwork:
        """The current fleet network (replaced on server failure)."""
        return self._network

    @property
    def router(self) -> InstrumentedRouter:
        """The shared router (replaced, counters preserved, on failure)."""
        return self._router

    @property
    def router_hits(self) -> int:
        """Lifetime router cache hits, across lazy-mode cache clears."""
        return self._router_hits_base + self._router.hits

    @property
    def router_misses(self) -> int:
        """Lifetime router cache misses, across lazy-mode cache clears."""
        return self._router_misses_base + self._router.misses

    @property
    def router_dijkstra_runs(self) -> int:
        """Lifetime single-source Dijkstra passes of the shared router."""
        return self._router.dijkstra_runs

    @property
    def router_pairs_invalidated(self) -> int:
        """Route pairs dropped by eager link-event invalidations."""
        return self._router.pairs_invalidated

    @property
    def router_pairs_recomputed(self) -> int:
        """Route pairs eagerly recomputed after link events."""
        return self._router.pairs_recomputed

    @property
    def tenants(self) -> tuple[str, ...]:
        """Hosted tenant names in admission order."""
        return tuple(self._tenants)

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    def tenant(self, name: str) -> TenantDeployment:
        """The :class:`TenantDeployment` for *name* or raise."""
        try:
            return self._tenants[name]
        except KeyError:
            raise ServiceError(f"no tenant {name!r} in the fleet") from None

    # ------------------------------------------------------------------
    # tenant lifecycle
    # ------------------------------------------------------------------
    def add_tenant(
        self,
        tenant: str,
        workflow: Workflow,
        deployment: Deployment,
        cost_model: CostModel | None = None,
    ) -> TenantDeployment:
        """Register a placed tenant; raise on duplicates.

        A *cost_model* already built for the admission decision (against
        the current topology and shared router) seeds the cache.
        """
        if tenant in self._tenants:
            raise ServiceError(f"tenant {tenant!r} is already hosted")
        deployment.validate(workflow, self._network)
        record = TenantDeployment(tenant, workflow, deployment)
        self._tenants[tenant] = record
        if cost_model is not None:
            self._cost_models[tenant] = cost_model
        return record

    def remove_tenant(self, tenant: str) -> TenantDeployment:
        """Drop *tenant* and its cached cost model."""
        record = self.tenant(tenant)
        del self._tenants[tenant]
        self._cost_models.pop(tenant, None)
        return record

    def update_tenant_workflow(
        self, tenant: str, workflow: Workflow
    ) -> TenantDeployment:
        """Replace a hosted tenant's workflow with a drifted version.

        The replacement must keep exactly the same operation names (the
        shape-preserving drift contract of
        :class:`~repro.service.events.WorkloadDrift`), so the tenant's
        current placement stays valid and only *its* cost model is
        recompiled -- the topology epoch and every other tenant's cache
        are untouched.
        """
        record = self.tenant(tenant)
        if sorted(workflow.operation_names) != sorted(
            record.workflow.operation_names
        ):
            raise ServiceError(
                f"workload drift for tenant {tenant!r} must keep the same "
                f"operation names"
            )
        updated = TenantDeployment(tenant, workflow, record.deployment)
        self._tenants[tenant] = updated
        self._cost_models.pop(tenant, None)
        return updated

    # ------------------------------------------------------------------
    # shared evaluation caches
    # ------------------------------------------------------------------
    def cost_model(self, tenant: str) -> CostModel:
        """The tenant's cost model, cached until the topology changes."""
        record = self.tenant(tenant)
        cached = self._cost_models.get(tenant)
        if cached is not None:
            self.cost_model_hits += 1
            return cached
        self.cost_model_misses += 1
        model = CostModel(
            record.workflow,
            self._network,
            execution_weight=self.execution_weight,
            penalty_weight=self.penalty_weight,
            penalty_mode=self.penalty_mode,
            router=self._router,
        )
        self._cost_models[tenant] = model
        return model

    def build_cost_model(self, workflow: Workflow) -> CostModel:
        """A cost model for a not-yet-admitted workflow (shared router).

        Counted as a cost-model cache miss: it is the cold build whose
        result :meth:`add_tenant` seeds into the cache on admission.
        """
        self.cost_model_misses += 1
        return CostModel(
            workflow,
            self._network,
            execution_weight=self.execution_weight,
            penalty_weight=self.penalty_weight,
            penalty_mode=self.penalty_mode,
            router=self._router,
        )

    def _invalidate_caches(self) -> None:
        """Topology changed: drop every route and cost-model cache."""
        self.epoch += 1
        self._cost_models.clear()
        router = InstrumentedRouter(self._network)
        router.hits = self._router.hits
        router.misses = self._router.misses
        router.dijkstra_runs = self._router.dijkstra_runs
        router.pairs_invalidated = self._router.pairs_invalidated
        router.pairs_recomputed = self._router.pairs_recomputed
        self._router = router

    def _invalidate_routes(
        self,
        changed_links: tuple[tuple[str, str], ...] | None = None,
        worsening: bool = False,
        speed_changed: bool = True,
        propagation_changed: bool = True,
    ) -> None:
        """Link parameters changed: rebuild only the route tables.

        The cheap sibling of :meth:`_invalidate_caches` for the
        link-level events: the server set, powers and every tenant's
        compiled arrays are still valid, so the cached cost models are
        *kept* and only their route-delay state refreshes. How depends
        on :attr:`route_invalidation`:

        * ``scoped``/``eager`` -- the shared router recomputes *once*
          (link-scoped when *changed_links* describes a strict
          worsening and the mode is scoped, full otherwise), then every
          tenant's compiled instance bulk-refills its route table,
          migration rows and batch matrices from the refreshed caches.
        * ``lazy`` -- drop the shared router's caches and every
          tenant's route-derived state; queries refill on demand (the
          legacy policy; hit/miss traffic is accumulated first so the
          lifetime :attr:`router_hits`/:attr:`router_misses` survive
          the counter reset of ``clear_cache``).

        The epoch still advances -- anything keyed on topology state
        must observe the change.
        """
        self.epoch += 1
        if self.route_invalidation == "lazy":
            self._router_hits_base += self._router.hits
            self._router_misses_base += self._router.misses
            self._router.clear_cache()
            for model in self._cost_models.values():
                model.compiled.reset_routes()
            return
        if self.route_invalidation != "scoped":
            changed_links = None
        affected = self._router.invalidate(
            changed_links=changed_links,
            worsening=worsening,
            speed_changed=speed_changed,
            propagation_changed=propagation_changed,
        )
        for model in self._cost_models.values():
            model.compiled.refresh_routes(affected)

    # ------------------------------------------------------------------
    # aggregate load accounting
    # ------------------------------------------------------------------
    def total_weighted_cycles(self) -> float:
        """Probability-weighted cycles of every hosted operation."""
        return sum(
            self.cost_model(name).total_weighted_cycles()
            for name in self._tenants
        )

    def mean_load_s(self, extra_cycles: float = 0.0) -> float:
        """Average per-server load in seconds, optionally projected.

        ``(hosted weighted cycles + extra_cycles) / Sum_Capacity`` -- the
        load every server would carry under a perfectly fair spread.
        This is the admission-control currency: *extra_cycles* prices a
        candidate workflow before it is placed.
        """
        return (
            self.total_weighted_cycles() + extra_cycles
        ) / self._network.total_power_hz

    def hosted_cycles(self) -> dict[str, float]:
        """Weighted cycles currently hosted per server (0 when idle).

        Unassigned operations (orphans mid-recovery) contribute nothing.
        """
        totals = {name: 0.0 for name in self._network.server_names}
        for name, record in self._tenants.items():
            compiled = self.cost_model(name).compiled
            wcycles = compiled.wcycles
            op_index = compiled.op_index
            for operation in record.workflow:
                server = record.deployment.get(operation.name)
                if server is None:
                    continue
                totals[server] += wcycles[op_index[operation.name]]
        return totals

    def remaining_budgets(self, extra_cycles: float = 0.0) -> dict[str, float]:
        """Capacity-proportional cycle headroom per server.

        ``Ideal_Cycles(s) - hosted(s)`` computed fleet-wide: the ideal
        share uses the *total* hosted weighted cycles (plus
        *extra_cycles* for work about to be placed), so the worst-fit
        placement and re-homing policies of the one-shot experiments
        generalise unchanged to the multi-tenant fleet.
        """
        total = self.total_weighted_cycles() + extra_cycles
        capacity = self._network.total_power_hz
        hosted = self.hosted_cycles()
        return {
            server.name: total * server.power_hz / capacity
            - hosted[server.name]
            for server in self._network
        }

    def objective_value(self, execution: float, penalty: float) -> float:
        """The fleet scalar objective from its two components.

        The single fleet-level combine -- shared by :meth:`snapshot` and
        the controller's rebalance pricing (both formerly inlined the
        formula) -- delegating to the state's
        :class:`~repro.core.migration.TransitionObjective`.
        """
        return self.objective.value(execution, penalty)

    def combined_loads(self) -> dict[str, float]:
        """Per-server load in seconds summed over every tenant."""
        totals = {name: 0.0 for name in self._network.server_names}
        for name, record in self._tenants.items():
            for server, load in (
                self.cost_model(name).loads(record.deployment).items()
            ):
                totals[server] += load
        return totals

    def snapshot(self) -> FleetSnapshot:
        """The current :class:`FleetSnapshot` (see its attribute docs)."""
        loads = self.combined_loads()
        execution = max(
            (
                self.cost_model(name).execution_time(record.deployment)
                for name, record in self._tenants.items()
            ),
            default=0.0,
        )
        penalty = load_penalty(list(loads.values()), self.penalty_mode)
        return FleetSnapshot(
            execution_time=execution,
            time_penalty=penalty,
            objective=self.objective_value(execution, penalty),
            loads=loads,
            balance_index=jain_index(loads),
            tenants=len(self._tenants),
        )

    # ------------------------------------------------------------------
    # topology changes
    # ------------------------------------------------------------------
    def fail_server(self, server: str) -> dict[str, tuple[str, ...]]:
        """Remove *server*; return the orphaned operations per tenant.

        The network is rebuilt without the server (reusing the failover
        experiment's :func:`~repro.experiments.failover.remove_server`),
        orphaned assignments are dropped from the affected tenants'
        deployments, and every evaluation cache is invalidated. Callers
        (the controller) are responsible for re-homing the orphans.
        """
        self._network.server(server)  # raise early on unknown names
        if len(self._network) <= 1:
            raise ServiceError(
                f"cannot fail {server!r}: it is the only fleet server"
            )
        orphans: dict[str, tuple[str, ...]] = {}
        for name, record in self._tenants.items():
            lost = record.deployment.operations_on(server)
            if lost:
                orphans[name] = lost
                for operation in lost:
                    record.deployment.unassign(operation)
        self._network = remove_server(self._network, server)
        self._invalidate_caches()
        return orphans

    def join_server(
        self,
        server: str,
        power_hz: float,
        link_speed_bps: float,
        propagation_s: float = 0.0,
    ) -> Server:
        """Add a server linked to every existing server (bus semantics).

        Transactional: the server and every link are *constructed* (and
        therefore validated) before the network is touched, so a bad
        ``power_hz``/``link_speed_bps``/``propagation_s`` raises with
        the fleet unchanged -- never a server left behind with its
        links missing.
        """
        if server in self._network:
            raise ServiceError(f"server {server!r} is already in the fleet")
        joined = Server(server, power_hz)
        links = [
            Link(other, server, link_speed_bps, propagation_s)
            for other in self._network.server_names
        ]
        self._network.add_server(joined)
        for link in links:
            self._network.add_link(link)
        self._invalidate_caches()
        return joined

    def drop_link(self, a: str, b: str) -> Link:
        """Remove the link between *a* and *b*; reject a partition.

        Transactional: when removing the link would disconnect the
        fleet (no redundant path exists), it is re-inserted unchanged
        and :class:`~repro.exceptions.ServiceError` is raised -- a
        partitioned fleet cannot route messages, so the caller (the
        controller's link-failure handler) turns this into a rejected
        event instead. On success only the route caches are
        invalidated: placements and compiled tenant arrays stay valid.
        """
        link = self._network.remove_link(a, b)
        if not self._network.is_connected():
            self._network.add_link(link)
            raise ServiceError(
                f"dropping link {a!r}-{b!r} would disconnect the fleet"
            )
        # a removal is always a strict worsening: routes avoiding the
        # link keep exactly their coefficients and stay optimal
        self._invalidate_routes(changed_links=((a, b),), worsening=True)
        return link

    def degrade_link(
        self,
        a: str,
        b: str,
        speed_factor: float,
        propagation_factor: float = 1.0,
        worsening: bool | None = None,
    ) -> Link:
        """Scale a link's speed/propagation in place; routes rebuild.

        The replacement :class:`~repro.network.topology.Link` is
        constructed (and validated) first, so a factor that would
        produce an invalid link raises with the fleet unchanged. The
        graph structure is untouched -- only route caches invalidate:
        link-scoped when the change is a strict *worsening* (slower
        and/or laggier -- inferred from the factors when not given),
        full when any factor improves the link, because a better link
        can attract routes that never crossed it.
        """
        link = self._network.link(a, b)
        degraded = Link(
            link.a,
            link.b,
            link.speed_bps * speed_factor,
            link.propagation_s * propagation_factor,
        )
        self._network.replace_link(degraded)
        if worsening is None:
            worsening = speed_factor <= 1.0 and propagation_factor >= 1.0
        # a no-op factor leaves that weight graph untouched, letting the
        # scoped recompute reuse the corresponding classification pass
        self._invalidate_routes(
            changed_links=((a, b),),
            worsening=worsening,
            speed_changed=speed_factor != 1.0,
            propagation_changed=propagation_factor != 1.0,
        )
        return degraded

    def set_server_power(self, server: str, power_hz: float) -> Server:
        """Change a live server's capacity; links and placements survive.

        The replacement :class:`~repro.network.topology.Server` is
        constructed (and validated) first, then swapped in place --
        capacity enters every tenant's ``Tproc`` table, so all
        evaluation caches are invalidated.
        """
        self._network.server(server)  # raise early on unknown names
        updated = self._network.replace_server(Server(server, power_hz))
        self._invalidate_caches()
        return updated
