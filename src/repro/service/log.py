"""Structured, append-only decision log and fleet metrics.

Every event the controller consumes produces exactly one
:class:`LogRecord`: what happened, to whom, what the controller decided,
how long the decision took, and a flat bag of decision-specific details
(projected loads, churn, objective gains, ...). The log is append-only
and renders to a canonical text form, so two replays of the same seeded
scenario can be compared byte for byte -- the determinism contract the
test suite enforces.

:class:`FleetMetrics` is the aggregate snapshot benchmarks and the CLI
print: admission counts, per-event placement latency, shared-cache hit
rates, rebalance churn, and the load-balance index over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.exceptions import ServiceError
from repro.experiments.reporting import TextTable, format_seconds

__all__ = ["LogRecord", "FleetLog", "FleetMetrics", "format_detail"]


def format_detail(value: object) -> str:
    """Canonical string form of a :attr:`LogRecord.details` value.

    The determinism contract compares rendered logs byte for byte, so
    every detail value must format identically everywhere -- across
    call sites *and* across Python minor versions. Floats are pinned to
    six decimal places (never ``str(float)``, whose shortest-repr
    output is an implementation detail); everything else goes through
    ``str``. All controller handlers must build their detail bags with
    this helper instead of ad-hoc f-strings.
    """
    if isinstance(value, float):
        return f"{value:.6f}"
    return str(value)


@dataclass(frozen=True)
class LogRecord:
    """One controller decision.

    Attributes
    ----------
    seq:
        0-based position in the log.
    event:
        The event kind (``deploy``, ``tick``, ...).
    subject:
        Tenant or server the event concerned (``fleet`` for ticks).
    action:
        What the controller did: ``admitted``, ``rejected``,
        ``removed``, ``recovered``, ``joined``, ``steady``,
        ``rebalanced``.
    latency_s:
        Handling time as measured by the controller's clock (a
        deterministic step clock under scenario replay).
    details:
        Sorted ``(key, value)`` string pairs of decision specifics.
    """

    seq: int
    event: str
    subject: str
    action: str
    latency_s: float
    details: tuple[tuple[str, str], ...] = ()

    def detail(self, key: str) -> str:
        """The detail value for *key* or raise."""
        for name, value in self.details:
            if name == key:
                return value
        raise ServiceError(
            f"record #{self.seq} ({self.event}/{self.action}) has no "
            f"detail {key!r}"
        )

    @property
    def details_dict(self) -> dict[str, str]:
        """The details as a plain dict."""
        return dict(self.details)

    def to_line(self) -> str:
        """The canonical one-line rendering used for byte comparison."""
        payload = " ".join(f"{k}={v}" for k, v in self.details)
        return (
            f"#{self.seq:04d} {self.event} {self.subject} {self.action} "
            f"latency={self.latency_s:.6f}s"
            + (f" {payload}" if payload else "")
        )


class FleetLog:
    """Append-only sequence of :class:`LogRecord`."""

    def __init__(self) -> None:
        self._records: list[LogRecord] = []

    def append(
        self,
        event: str,
        subject: str,
        action: str,
        latency_s: float,
        details: Mapping[str, str] | None = None,
    ) -> LogRecord:
        """Create, store and return the next record.

        Details are sorted by key so the rendering never depends on the
        insertion order of the handler that produced them.
        """
        record = LogRecord(
            seq=len(self._records),
            event=event,
            subject=subject,
            action=action,
            latency_s=latency_s,
            details=tuple(sorted((details or {}).items())),
        )
        self._records.append(record)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> LogRecord:
        return self._records[index]

    @property
    def records(self) -> tuple[LogRecord, ...]:
        """All records, oldest first."""
        return tuple(self._records)

    def filter(
        self, event: str | None = None, action: str | None = None
    ) -> tuple[LogRecord, ...]:
        """Records matching the given event kind and/or action."""
        return tuple(
            record
            for record in self._records
            if (event is None or record.event == event)
            and (action is None or record.action == action)
        )

    def to_text(self) -> str:
        """Canonical multi-line rendering (the determinism artifact)."""
        return "\n".join(record.to_line() for record in self._records) + (
            "\n" if self._records else ""
        )

    def to_table(self) -> TextTable:
        """A readable table of every decision."""
        table = TextTable(
            ["#", "event", "subject", "action", "latency", "details"],
            title="fleet decision log",
        )
        for record in self._records:
            table.add_row(
                [
                    record.seq,
                    record.event,
                    record.subject,
                    record.action,
                    format_seconds(record.latency_s),
                    " ".join(f"{k}={v}" for k, v in record.details),
                ]
            )
        return table


@dataclass(frozen=True)
class FleetMetrics:
    """Aggregate fleet health over one controller run.

    Attributes
    ----------
    events:
        Total events processed.
    events_by_kind:
        ``(kind, count)`` pairs sorted by kind.
    admitted, rejected:
        Admission-control outcomes for deploy requests.
    undeployed:
        Tenants removed on request.
    failures_recovered, servers_joined:
        Topology events successfully handled.
    orphans_rehomed:
        Operations re-homed after server failures.
    rebalances, rebalance_moves:
        Drift-triggered rebalances and their total churn (moves applied,
        including opportunistic spreading onto joined servers).
    mean_latency_s, max_latency_s:
        Per-event handling latency (deterministic under replay clocks).
    placement_evaluations:
        Fleet-objective evaluations spent on placement and rebalancing
        -- the deterministic work counter.
    router_hits, router_misses:
        Shared-router cache outcomes across every tenant's cost model.
    cost_model_hits, cost_model_misses:
        Per-tenant cost-model cache outcomes.
    balance_timeline:
        Jain load-balance index after every event, oldest first.
    final_objective, final_execution_time, final_time_penalty:
        The closing :class:`~repro.service.state.FleetSnapshot` scalars.
    final_balance_index, tenants_hosted:
        Closing balance index and tenant count.
    migration_paid:
        Cumulative migration cost (seconds) of every rebalance /
        spreading move applied so far, priced by the controller's
        :class:`~repro.core.migration.MigrationCostModel`. Stays 0.0
        when the controller has no migration model configured.
    route_dijkstra_runs:
        Single-source Dijkstra passes executed by the shared router --
        lazy builds, batched compiles and event-driven recomputes alike
        (the unit of routing work ``benchmarks/bench_routing.py``
        compares across invalidation modes).
    route_pairs_invalidated, route_pairs_recomputed:
        Route pairs dropped / eagerly recomputed by link-event
        invalidations. Stay 0 under the lazy invalidation mode or when
        no link event occurred.
    """

    events: int
    events_by_kind: tuple[tuple[str, int], ...]
    admitted: int
    rejected: int
    undeployed: int
    failures_recovered: int
    servers_joined: int
    orphans_rehomed: int
    rebalances: int
    rebalance_moves: int
    mean_latency_s: float
    max_latency_s: float
    placement_evaluations: int
    router_hits: int
    router_misses: int
    cost_model_hits: int
    cost_model_misses: int
    balance_timeline: tuple[float, ...]
    final_objective: float
    final_execution_time: float
    final_time_penalty: float
    final_balance_index: float
    tenants_hosted: int
    migration_paid: float = 0.0
    route_dijkstra_runs: int = 0
    route_pairs_invalidated: int = 0
    route_pairs_recomputed: int = 0

    @property
    def router_hit_rate(self) -> float:
        """Shared-router cache hit fraction (0 with no queries)."""
        total = self.router_hits + self.router_misses
        return self.router_hits / total if total else 0.0

    @property
    def cost_model_hit_rate(self) -> float:
        """Cost-model cache hit fraction (0 with no queries)."""
        total = self.cost_model_hits + self.cost_model_misses
        return self.cost_model_hits / total if total else 0.0

    def to_table(self) -> TextTable:
        """The metrics table the ``repro fleet`` command prints."""
        table = TextTable(["metric", "value"], title="fleet metrics")
        table.add_row(["events processed", self.events])
        for kind, count in self.events_by_kind:
            table.add_row([f"  {kind}", count])
        table.add_row(["tenants admitted", self.admitted])
        table.add_row(["tenants rejected", self.rejected])
        table.add_row(["tenants undeployed", self.undeployed])
        table.add_row(["failures recovered", self.failures_recovered])
        table.add_row(["servers joined", self.servers_joined])
        table.add_row(["orphans re-homed", self.orphans_rehomed])
        table.add_row(["rebalances triggered", self.rebalances])
        table.add_row(["rebalance churn (moves)", self.rebalance_moves])
        table.add_row(["mean event latency", format_seconds(self.mean_latency_s)])
        table.add_row(["max event latency", format_seconds(self.max_latency_s)])
        table.add_row(["placement evaluations", self.placement_evaluations])
        table.add_row(
            [
                "router cache hit rate",
                f"{self.router_hit_rate * 100:.1f}% "
                f"({self.router_hits}/{self.router_hits + self.router_misses})",
            ]
        )
        table.add_row(
            [
                "cost-model cache hit rate",
                f"{self.cost_model_hit_rate * 100:.1f}% "
                f"({self.cost_model_hits}"
                f"/{self.cost_model_hits + self.cost_model_misses})",
            ]
        )
        table.add_row(
            ["final objective", format_seconds(self.final_objective)]
        )
        table.add_row(
            ["final Texecute", format_seconds(self.final_execution_time)]
        )
        table.add_row(
            ["final TimePenalty", format_seconds(self.final_time_penalty)]
        )
        table.add_row(
            ["final balance index", f"{self.final_balance_index:.4f}"]
        )
        table.add_row(["tenants hosted", self.tenants_hosted])
        if self.migration_paid:
            # only rendered when a migration model priced actual moves,
            # so migration-free runs keep their byte-identical table
            table.add_row(
                ["migration paid", format_seconds(self.migration_paid)]
            )
        if self.route_pairs_invalidated or self.route_pairs_recomputed:
            # only rendered when a link event actually invalidated
            # routes, keeping event-free tables byte-identical
            table.add_row(
                ["route pairs invalidated", self.route_pairs_invalidated]
            )
            table.add_row(
                ["route pairs recomputed", self.route_pairs_recomputed]
            )
            table.add_row(["route Dijkstra runs", self.route_dijkstra_runs])
        return table

    def to_text(self) -> str:
        """Canonical rendering: the table plus the balance timeline."""
        timeline = ",".join(f"{v:.6f}" for v in self.balance_timeline)
        return f"{self.to_table()}\nbalance_timeline={timeline}\n"
