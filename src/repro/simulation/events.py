"""Event primitives for the discrete-event simulator.

A tiny calendar: :class:`Event` couples a timestamp with a kind and a
payload, and :class:`EventQueue` is a stable min-heap over (time,
sequence) so that simultaneous events pop in scheduling order -- which
keeps whole simulations deterministic for a fixed RNG seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.exceptions import SimulationError

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(Enum):
    """What an event does when popped."""

    MESSAGE_ARRIVAL = "message_arrival"
    OPERATION_FINISH = "operation_finish"


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled happening.

    Ordering is by ``(time, sequence)``; kind and payload are excluded
    from comparisons so arbitrary payloads never break heap ordering.
    """

    time: float
    sequence: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A stable priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def schedule(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Insert an event at *time*; returns it (mainly for tests)."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at t={time}")
        event = Event(time, next(self._counter), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def peek_time(self) -> float:
        """Timestamp of the earliest event (queue must be non-empty)."""
        if not self._heap:
            raise SimulationError("peek into an empty event queue")
        return self._heap[0].time
