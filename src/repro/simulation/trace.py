"""Execution traces and aggregate results of simulated runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["OperationRecord", "MessageRecord", "SimulationResult"]


@dataclass(frozen=True)
class MessageRecord:
    """One message transmission inside a simulated run.

    Attributes
    ----------
    source, target:
        The communicating operations.
    departure_time, arrival_time:
        When the message left the sender and reached the receiver. On an
        exclusive bus the difference includes queueing for the medium.
    size_bits:
        ``MsgSize`` of the message.
    crossed_network:
        False for co-located (zero-cost) deliveries.
    """

    source: str
    target: str
    departure_time: float
    arrival_time: float
    size_bits: float
    crossed_network: bool

    @property
    def latency(self) -> float:
        """Total delivery time including any bus queueing."""
        return self.arrival_time - self.departure_time


@dataclass(frozen=True)
class OperationRecord:
    """One operation execution inside a simulated run."""

    operation: str
    server: str
    ready_time: float
    start_time: float
    finish_time: float

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting for the server after becoming ready."""
        return self.start_time - self.ready_time

    @property
    def service_time(self) -> float:
        """Pure processing time on the server."""
        return self.finish_time - self.start_time


@dataclass(frozen=True)
class SimulationResult:
    """Everything measured in one simulated workflow execution.

    Attributes
    ----------
    makespan:
        Completion time of the run: the latest finish among executed
        operations that correspond to workflow exits (or, for runs where
        an ``OR`` join short-circuited, the join's completion).
    records:
        Per-executed-operation timing records, in finish order.
    busy_time:
        Seconds each server spent processing (its measured ``Load(s)``).
    bits_sent:
        Total message bits that crossed the network (co-located messages
        excluded), a direct measure of the communication the deployment
        failed to avoid.
    messages_sent:
        Count of inter-server messages.
    executed_operations:
        Names of operations that actually ran (XOR skips branches).
    message_records:
        Per-delivered-message timing records, in departure order.
    """

    makespan: float
    records: tuple[OperationRecord, ...]
    busy_time: Mapping[str, float] = field(default_factory=dict)
    bits_sent: float = 0.0
    messages_sent: int = 0
    executed_operations: frozenset[str] = frozenset()
    message_records: tuple[MessageRecord, ...] = ()

    def record_for(self, operation: str) -> OperationRecord:
        """The record of one executed operation (raises KeyError if absent)."""
        for record in self.records:
            if record.operation == operation:
                return record
        raise KeyError(f"operation {operation!r} did not execute in this run")

    def total_queueing_delay(self) -> float:
        """Sum of queueing delays -- 0 with infinite server concurrency."""
        return sum(record.queueing_delay for record in self.records)

    def network_messages(self) -> tuple[MessageRecord, ...]:
        """Only the messages that actually crossed the network."""
        return tuple(
            record for record in self.message_records if record.crossed_network
        )
