"""The discrete-event executor of a deployed workflow.

One :class:`SimulationEngine` is bound to a (workflow, network,
deployment) triple and can be run many times with different seeds. A run:

1. entry operations become ready at ``t = 0``;
2. a ready operation queues on its server; the server starts it when a
   slot is free (``server_concurrency`` slots per server; ``None`` models
   the paper's contention-free assumption);
3. a finishing operation dispatches messages to its successors -- all of
   them for operational/``AND``/``OR`` nodes, exactly one sampled branch
   for an ``XOR`` split -- each arriving after the router's transmission
   time (zero when co-located);
4. a node becomes ready when its expected inputs arrived: every incoming
   message for ``AND``-like nodes, the first arrival for an ``OR`` join
   (later arrivals are ignored), the single taken branch for ``XOR``
   joins;
5. the run's *makespan* is the latest finish among executed exit
   operations.

Determinism: for a fixed RNG the full event order is deterministic
(stable event queue, FIFO server queues).
"""

from __future__ import annotations

import random

from repro.core.compiled import CompiledInstance
from repro.core.mapping import Deployment
from repro.core.rng import coerce_rng
from repro.core.workflow import NodeKind, Workflow
from repro.exceptions import SimulationError
from repro.network.routing import Router
from repro.network.topology import ServerNetwork
from repro.simulation.events import EventKind, EventQueue
from repro.simulation.trace import (
    MessageRecord,
    OperationRecord,
    SimulationResult,
)

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Run a deployed workflow as a discrete-event simulation.

    Parameters
    ----------
    workflow, network, deployment:
        The deployed instance; the deployment must be complete.
    server_concurrency:
        Operations a server can process simultaneously. ``None``
        (default) means unbounded -- the contention-free assumption of
        the paper's analytic model; ``1`` models single-core servers.
    exclusive_bus:
        When True, cross-server transfers serialise on one shared
        medium: a message must wait for the bus to free before its
        transmission time starts. The paper's ``Tcomm`` ignores this
        (every transfer proceeds independently); the flag quantifies
        what that assumption hides on congested buses.
    router:
        Optional shared :class:`~repro.network.routing.Router`. Ignored
        when *compiled* is given (the artifact's router is used).
    compiled:
        Optional shared :class:`~repro.core.compiled.CompiledInstance`
        of the same ``(workflow, network)`` pair; processing durations
        and message delays are then read from its precompiled ``Tproc``
        and route-delay tables instead of being recomputed per event.
        Built here when omitted.
    """

    def __init__(
        self,
        workflow: Workflow,
        network: ServerNetwork,
        deployment: Deployment,
        server_concurrency: int | None = None,
        exclusive_bus: bool = False,
        router: Router | None = None,
        compiled: CompiledInstance | None = None,
    ):
        if server_concurrency is not None and server_concurrency < 1:
            raise SimulationError("server_concurrency must be >= 1 or None")
        deployment.validate(workflow, network)
        network.require_connected()
        if not workflow.is_dag():
            raise SimulationError("cannot simulate a cyclic workflow")
        workflow.validate_xor_probabilities()
        if compiled is not None and (
            compiled.workflow is not workflow or compiled.network is not network
        ):
            raise SimulationError(
                "compiled artifact does not match the engine's workflow "
                "and network"
            )
        self.workflow = workflow
        self.network = network
        self.deployment = deployment
        self.server_concurrency = server_concurrency
        self.exclusive_bus = exclusive_bus
        if compiled is None:
            compiled = CompiledInstance(
                workflow, network, router=router or Router(network)
            )
        self.compiled = compiled
        self.router = compiled.router

    # ------------------------------------------------------------------
    def run(self, rng: random.Random | int | None = None) -> SimulationResult:
        """Execute once; *rng* drives XOR branch sampling.

        ``rng=None`` explicitly means the library-wide deterministic
        default, ``Random(0)`` -- see :func:`repro.core.rng.coerce_rng`.
        """
        rng = coerce_rng(rng)

        workflow = self.workflow
        queue = EventQueue()
        arrivals: dict[str, int] = {}
        ready_time: dict[str, float] = {}
        started: set[str] = set()
        fired_or_joins: set[str] = set()
        records: list[OperationRecord] = []
        busy_time: dict[str, float] = {
            name: 0.0 for name in self.network.server_names
        }
        server_running: dict[str, int] = {
            name: 0 for name in self.network.server_names
        }
        server_queue: dict[str, list[str]] = {
            name: [] for name in self.network.server_names
        }
        bits_sent = 0.0
        messages_sent = 0
        message_records: list[MessageRecord] = []

        def expected_inputs(name: str) -> int:
            operation = workflow.operation(name)
            if operation.kind in (NodeKind.XOR_JOIN, NodeKind.OR_JOIN):
                return 1
            return len(workflow.predecessors(name))

        def try_start(name: str, now: float) -> None:
            server = self.deployment.server_of(name)
            capacity = self.server_concurrency
            if capacity is None or server_running[server] < capacity:
                begin(name, server, now)
            else:
                server_queue[server].append(name)

        compiled = self.compiled
        op_index = compiled.op_index
        server_index = compiled.server_index

        def begin(name: str, server: str, now: float) -> None:
            started.add(name)
            server_running[server] += 1
            duration = compiled.tproc[op_index[name]][server_index[server]]
            busy_time[server] += duration
            queue.schedule(
                now + duration,
                EventKind.OPERATION_FINISH,
                {"operation": name, "server": server, "start": now},
            )

        def on_ready(name: str, now: float) -> None:
            if name in started:
                return
            ready_time[name] = now
            try_start(name, now)

        bus_free_at = 0.0

        def dispatch_messages(name: str, now: float) -> None:
            nonlocal bits_sent, messages_sent, bus_free_at
            operation = workflow.operation(name)
            outgoing = workflow.outgoing(name)
            if not outgoing:
                return
            if operation.kind is NodeKind.XOR_SPLIT:
                chosen = _sample_branch(outgoing, rng)
                selected = [chosen]
            else:
                selected = list(outgoing)
            source_server = self.deployment.server_of(name)
            for message in selected:
                target_server = self.deployment.server_of(message.target)
                delay = compiled.delay(
                    server_index[source_server],
                    server_index[target_server],
                    message.size_bits,
                )
                arrival = now + delay
                crossed = source_server != target_server
                if crossed:
                    bits_sent += message.size_bits
                    messages_sent += 1
                    if self.exclusive_bus:
                        # wait for the shared medium, then hold it for
                        # the whole transfer (dispatches arrive in event
                        # order, so greedy booking is FIFO-correct)
                        start = max(now, bus_free_at)
                        arrival = start + delay
                        bus_free_at = arrival
                message_records.append(
                    MessageRecord(
                        source=message.source,
                        target=message.target,
                        departure_time=now,
                        arrival_time=arrival,
                        size_bits=message.size_bits,
                        crossed_network=crossed,
                    )
                )
                queue.schedule(
                    arrival,
                    EventKind.MESSAGE_ARRIVAL,
                    {"target": message.target},
                )

        def on_arrival(name: str, now: float) -> None:
            operation = workflow.operation(name)
            if operation.kind is NodeKind.OR_JOIN:
                if name in fired_or_joins:
                    return  # later branches lose the race, run ignored
                fired_or_joins.add(name)
                on_ready(name, now)
                return
            arrivals[name] = arrivals.get(name, 0) + 1
            if arrivals[name] >= expected_inputs(name):
                on_ready(name, now)

        for entry in workflow.entries:
            on_ready(entry, 0.0)

        while queue:
            event = queue.pop()
            if event.kind is EventKind.OPERATION_FINISH:
                name = event.payload["operation"]
                server = event.payload["server"]
                records.append(
                    OperationRecord(
                        operation=name,
                        server=server,
                        ready_time=ready_time[name],
                        start_time=event.payload["start"],
                        finish_time=event.time,
                    )
                )
                server_running[server] -= 1
                pending = server_queue[server]
                if pending and (
                    self.server_concurrency is None
                    or server_running[server] < self.server_concurrency
                ):
                    begin(pending.pop(0), server, event.time)
                dispatch_messages(name, event.time)
            else:  # MESSAGE_ARRIVAL
                on_arrival(event.payload["target"], event.time)

        executed = frozenset(record.operation for record in records)
        exit_finishes = [
            record.finish_time
            for record in records
            if record.operation in workflow.exits
        ]
        if exit_finishes:
            makespan = max(exit_finishes)
        elif records:  # degenerate: no exit executed (should not happen)
            makespan = max(record.finish_time for record in records)
        else:
            raise SimulationError("simulation executed no operations")

        return SimulationResult(
            makespan=makespan,
            records=tuple(records),
            busy_time=busy_time,
            bits_sent=bits_sent,
            messages_sent=messages_sent,
            executed_operations=executed,
            message_records=tuple(message_records),
        )

    # ------------------------------------------------------------------
    def run_many(
        self, runs: int, rng: random.Random | int | None = None
    ) -> list[SimulationResult]:
        """Execute *runs* times with one shared RNG stream.

        ``rng=None`` explicitly means the library-wide deterministic
        default, ``Random(0)`` -- see :func:`repro.core.rng.coerce_rng`.
        """
        if runs < 1:
            raise SimulationError("runs must be >= 1")
        rng = coerce_rng(rng)
        return [self.run(rng) for _ in range(runs)]

    def expected_makespan(
        self, runs: int = 100, rng: random.Random | int | None = None
    ) -> float:
        """Mean makespan over *runs* executions (Monte-Carlo ``Texecute``)."""
        results = self.run_many(runs, rng)
        return sum(result.makespan for result in results) / len(results)


def _sample_branch(outgoing, rng: random.Random):
    """Pick one XOR branch proportionally to its edge probability."""
    total = sum(message.probability for message in outgoing)
    if total <= 0:
        raise SimulationError(
            f"XOR split {outgoing[0].source!r} has no positive branch "
            f"probability"
        )
    point = rng.random() * total
    cumulative = 0.0
    for message in outgoing:
        cumulative += message.probability
        if point <= cumulative:
            return message
    return outgoing[-1]  # floating-point edge: fall back to the last branch
