"""Discrete-event simulation of deployed workflows.

The paper evaluates deployments analytically (Table 1). This package
provides the testbed equivalent: an event-driven executor that actually
*runs* a deployed workflow -- sampling XOR branches, racing OR branches,
queueing operations on finite-capacity servers and delaying messages on
links -- and reports the measured makespan and per-server busy time.

It serves two purposes:

* **cross-validation** -- on configurations where the analytic model is
  exact (line workflows; or infinite server concurrency) the simulator
  must agree with :meth:`repro.core.cost.CostModel.execution_time`, which
  the test suite asserts;
* **realism ablations** -- with single-core servers
  (``server_concurrency=1``) the simulator exposes queueing effects the
  paper's model ignores, quantified in ``benchmarks/bench_ablations.py``.
"""

from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.trace import OperationRecord, SimulationResult

__all__ = [
    "SimulationEngine",
    "Event",
    "EventKind",
    "EventQueue",
    "OperationRecord",
    "SimulationResult",
]
