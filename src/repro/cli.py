"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``generate``
    Create a problem instance (workflow + network) from the section 4.1
    generators and write it as a JSON bundle.
``deploy``
    Run one algorithm on an instance; print the cost breakdown and
    optionally store the deployment back into the bundle or emit DOT.
``compare``
    Run an algorithm suite on an instance; print the comparison table
    and an ASCII scatter of the two metrics.
``simulate``
    Execute a deployed instance in the discrete-event simulator and
    compare measured makespans with the analytic prediction.
``experiment``
    Run the Class A/B/C sweeps of section 4 and print their tables.
``quality``
    Run the deviation-from-sampled-best protocol of section 4.1.
``analyze``
    Structural statistics, region tree and (for deployed instances) the
    critical path.
``fleet``
    The fleet service tier. ``repro fleet`` (or ``repro fleet replay``)
    replays a scripted multi-tenant scenario through the
    :class:`~repro.service.controller.FleetController` and prints the
    metrics table; ``repro fleet checkpoint`` writes a durable
    checkpoint (optionally stopping mid-scenario, remaining events
    stored as pending); ``repro fleet restore`` rebuilds a controller
    from a checkpoint with replay verification (``--resume`` also
    processes the pending events); ``repro fleet serve`` runs the
    stdlib REST façade over a priority work queue.
``algorithms``
    List every registered deployment algorithm.

Instances are the JSON bundles of :mod:`repro.io.json_codec`; every
command that reads one accepts ``--instance PATH``.
"""

from __future__ import annotations

import argparse

import sys
from typing import Sequence

from repro.algorithms.base import algorithm_registry, get_algorithm
from repro.algorithms.runtime import SearchBudget
from repro.core.analysis import (
    critical_path,
    region_tree,
    workflow_statistics,
)
from repro.core.cost import CostModel
from repro.exceptions import ReproError
from repro.experiments.classes import (
    class_a_configs,
    class_b_configs,
    class_c_configs,
)
from repro.experiments.quality import QualityProtocol
from repro.experiments.reporting import (
    TextTable,
    ascii_scatter,
    format_seconds,
)
from repro.experiments.runner import (
    DEFAULT_ALGORITHMS,
    ExperimentConfig,
    ExperimentRunner,
)
from repro.io.dot import deployment_to_dot, workflow_to_dot
from repro.io.json_codec import dump_instance, load_instance
from repro.parallel.specs import PLAN_KINDS
from repro.simulation.engine import SimulationEngine

__all__ = ["main", "build_parser"]


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def _add_budget_arguments(command: argparse.ArgumentParser) -> None:
    """Attach the anytime-search budget flags shared by deploy/compare."""
    command.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="wall-clock budget per search; iterative algorithms return "
        "their best-so-far deployment when it fires",
    )
    command.add_argument(
        "--max-evals",
        type=int,
        default=None,
        metavar="K",
        help="objective-evaluation budget per search",
    )


def _budget_from_args(args) -> SearchBudget | None:
    """A SearchBudget from the CLI flags, or None when none were given."""
    if args.deadline_ms is None and args.max_evals is None:
        return None
    return SearchBudget(
        max_evals=args.max_evals,
        deadline_s=(
            args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
        ),
    )


def _add_topology_argument(command: argparse.ArgumentParser) -> None:
    """Attach the topology-override flag shared by deploy/compare."""
    command.add_argument(
        "--topology",
        metavar="PATH",
        default=None,
        help="deploy onto this topology file (SNDlib-style text or a "
        "JSON network document) instead of the instance's network",
    )


def _resolve_network(args, network):
    """The instance's network, or the ``--topology`` override."""
    if getattr(args, "topology", None) is None:
        return network
    from repro.scenarios import load_topology

    return load_topology(args.topology)


def build_parser() -> argparse.ArgumentParser:
    """The full argparse tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Efficient Deployment of Web Service Workflows (ICDE 2007) -- "
            "reproduction toolkit"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a problem instance JSON bundle"
    )
    generate.add_argument(
        "--workflow",
        choices=("line", "bushy", "lengthy", "hybrid"),
        default="line",
        help="workflow shape (default: line)",
    )
    generate.add_argument("--operations", type=int, default=19, metavar="M")
    generate.add_argument("--servers", type=int, default=5, metavar="N")
    generate.add_argument(
        "--network", choices=("bus", "line"), default="bus"
    )
    generate.add_argument(
        "--bus-speed",
        type=float,
        default=None,
        metavar="BPS",
        help="pin the bus/link speed instead of sampling Table 6",
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--output", required=True, metavar="PATH", help="bundle destination"
    )

    deploy = commands.add_parser(
        "deploy", help="run one algorithm on an instance"
    )
    deploy.add_argument("--instance", required=True, metavar="PATH")
    deploy.add_argument(
        "--algorithm",
        default="HeavyOps-LargeMsgs",
        metavar="NAME",
        help="registry name, or NAME@SEED for a seeded refinement "
        "(e.g. HillClimbing@FL-TieResolver2)",
    )
    deploy.add_argument("--seed", type=int, default=0)
    _add_topology_argument(deploy)
    _add_budget_arguments(deploy)
    deploy.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard the search across N worker processes "
        "(see also --plan; default: 1, the exact serial run)",
    )
    deploy.add_argument(
        "--plan",
        choices=PLAN_KINDS,
        default=None,
        help="how to shard with --workers: seeded restarts, GA islands, "
        "or a partitioned cooperative climb (default: per-algorithm)",
    )
    deploy.add_argument(
        "--portfolio",
        nargs="*",
        metavar="SPEC",
        default=None,
        help="race a portfolio of algorithms under the shared budget "
        "instead of --algorithm; without SPECs, use the built-in line-up",
    )
    deploy.add_argument(
        "--save",
        action="store_true",
        help="write the deployment back into the instance bundle",
    )
    deploy.add_argument(
        "--dot",
        metavar="PATH",
        default=None,
        help="also write a Graphviz DOT rendering of the deployment",
    )

    compare = commands.add_parser(
        "compare", help="run an algorithm suite on an instance"
    )
    compare.add_argument("--instance", required=True, metavar="PATH")
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=list(DEFAULT_ALGORITHMS),
        metavar="NAME",
    )
    compare.add_argument("--seed", type=int, default=0)
    _add_topology_argument(compare)
    _add_budget_arguments(compare)
    compare.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="run each algorithm's search across N worker processes",
    )
    compare.add_argument(
        "--plot", action="store_true", help="render an ASCII scatter"
    )

    simulate = commands.add_parser(
        "simulate", help="execute a deployed instance in the simulator"
    )
    simulate.add_argument("--instance", required=True, metavar="PATH")
    simulate.add_argument("--runs", type=int, default=200)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--concurrency",
        type=int,
        default=None,
        metavar="K",
        help="server concurrency (default: unbounded, the paper's model)",
    )

    experiment = commands.add_parser(
        "experiment", help="run the Class A/B/C sweeps"
    )
    experiment.add_argument(
        "--klass", choices=("a", "b", "c"), required=True,
        help="experiment class (section 4.1)",
    )
    experiment.add_argument(
        "--workflow",
        choices=("line", "bushy", "lengthy", "hybrid"),
        default="line",
    )
    experiment.add_argument("--operations", type=int, default=19)
    experiment.add_argument("--servers", type=int, default=5)
    experiment.add_argument("--repetitions", type=int, default=5)
    experiment.add_argument(
        "--metric",
        choices=("execution", "penalty", "objective"),
        default="execution",
    )

    quality = commands.add_parser(
        "quality", help="deviation-from-sampled-best protocol (section 4.1)"
    )
    quality.add_argument(
        "--workflow",
        choices=("line", "bushy", "lengthy", "hybrid"),
        default="line",
    )
    quality.add_argument("--operations", type=int, default=19)
    quality.add_argument("--servers", type=int, default=5)
    quality.add_argument("--bus-speed", type=float, default=1e6)
    quality.add_argument("--experiments", type=int, default=10)
    quality.add_argument("--samples", type=int, default=2_000)
    quality.add_argument("--seed", type=int, default=55)

    analyze = commands.add_parser(
        "analyze", help="structural and cost analysis of an instance"
    )
    analyze.add_argument("--instance", required=True, metavar="PATH")
    analyze.add_argument(
        "--dot",
        metavar="PATH",
        default=None,
        help="write a Graphviz DOT rendering of the workflow",
    )

    failover = commands.add_parser(
        "failover", help="single-server failure impact of a deployed instance"
    )
    failover.add_argument("--instance", required=True, metavar="PATH")
    failover.add_argument(
        "--redeploy",
        metavar="ALGORITHM",
        default=None,
        help="recover by full re-deployment with this algorithm instead of "
        "minimal orphan re-homing",
    )

    figures = commands.add_parser(
        "figures", help="reproduce every paper figure/table into a directory"
    )
    figures.add_argument(
        "--output", required=True, metavar="DIR", help="destination directory"
    )
    figures.add_argument(
        "--scale",
        choices=("quick", "paper"),
        default="quick",
        help="protocol sizes (paper = 50 experiments x 32000 samples)",
    )

    claims = commands.add_parser(
        "claims", help="re-verify every qualitative claim of the paper"
    )
    claims.add_argument("--repetitions", type=int, default=8)
    claims.add_argument("--seed", type=int, default=42)

    from repro.service.scenarios import builtin_scenarios

    fleet = commands.add_parser(
        "fleet",
        help="replay, checkpoint, restore, or serve a fleet scenario",
    )
    fleet.add_argument(
        "action",
        nargs="?",
        default="replay",
        choices=("replay", "checkpoint", "restore", "serve"),
        help="what to do with the fleet (default: replay)",
    )
    fleet.add_argument(
        "--scenario",
        choices=builtin_scenarios(),
        default="steady",
        help="builtin scenario to replay (default: steady)",
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--algorithm",
        default=None,
        metavar="NAME",
        help="override the scenario's placement algorithm",
    )
    fleet.add_argument(
        "--log",
        action="store_true",
        help="also print the full fleet decision log",
    )
    fleet.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="checkpoint file to write (checkpoint action) or read "
        "(restore/serve actions)",
    )
    fleet.add_argument(
        "--stop-after",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint action: process only the first N scenario "
        "events; the rest are stored as pending",
    )
    fleet.add_argument(
        "--resume",
        action="store_true",
        help="restore action: also process the checkpoint's pending "
        "events after the verified restore",
    )
    fleet.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve action: bind address (default: 127.0.0.1)",
    )
    fleet.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="PORT",
        help="serve action: bind port (default: 0, pick a free port)",
    )

    commands.add_parser("algorithms", help="list registered algorithms")
    return parser


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def _cmd_generate(args) -> int:
    config = ExperimentConfig(
        workflow_kind=args.workflow,
        num_operations=args.operations,
        num_servers=args.servers,
        network_kind=args.network,
        bus_speed_bps=args.bus_speed,
        repetitions=1,
        seed=args.seed,
    )
    workflow, network = config.instance(0)
    dump_instance(args.output, workflow, network)
    print(
        f"wrote {args.output}: {workflow.name} ({len(workflow)} ops), "
        f"{network.name} ({len(network)} servers)"
    )
    return 0


def _cmd_deploy(args) -> int:
    from repro.parallel import deploy_parallel, race_portfolio

    workflow, network, _ = load_instance(args.instance)
    network = _resolve_network(args, network)
    model = CostModel(workflow, network)
    budget = _budget_from_args(args)
    if args.portfolio is not None:
        title_name = "portfolio"
        outcome = race_portfolio(
            workflow,
            network,
            portfolio=args.portfolio or None,
            cost_model=model,
            workers=args.workers,
            seed=args.seed,
            budget=budget,
        )
    else:
        title_name = args.algorithm
        outcome = deploy_parallel(
            args.algorithm,
            workflow,
            network,
            cost_model=model,
            workers=args.workers,
            seed=args.seed,
            budget=budget,
            plan=args.plan,
        )
    deployment, report = outcome.best, outcome.report
    cost = model.evaluate(deployment)
    table = TextTable(
        ["metric", "value"], title=f"{title_name} on {workflow.name}"
    )
    table.add_row(["execution time", format_seconds(cost.execution_time)])
    table.add_row(["time penalty", format_seconds(cost.time_penalty)])
    table.add_row(["objective", format_seconds(cost.objective)])
    print(table)
    if report is not None:
        print(f"\nsearch: {report.describe()}")
    if outcome.parallel.plan != "serial":
        print(f"parallel: {outcome.parallel.describe()}")
    print("\nmapping:")
    for server in network.server_names:
        operations = deployment.operations_on(server)
        print(f"  {server}: {', '.join(operations) or '-'}")
    if args.save:
        dump_instance(args.instance, workflow, network, deployment)
        print(f"\ndeployment saved into {args.instance}")
    if args.dot:
        from pathlib import Path

        Path(args.dot).write_text(
            deployment_to_dot(workflow, network, deployment)
        )
        print(f"DOT written to {args.dot}")
    return 0


def _cmd_compare(args) -> int:
    import time

    from repro.parallel import deploy_parallel

    workflow, network, _ = load_instance(args.instance)
    network = _resolve_network(args, network)
    model = CostModel(workflow, network)
    budget = _budget_from_args(args)
    points: dict[str, list[tuple[float, float]]] = {}
    searches: list[tuple[str, str]] = []
    table = TextTable(
        ["algorithm", "Texecute", "TimePenalty", "objective", "wall-clock"],
        title=f"{workflow.name} on {network.name}",
    )
    for name in args.algorithms:
        started = time.perf_counter()
        outcome = deploy_parallel(
            name,
            workflow,
            network,
            cost_model=model,
            workers=args.workers,
            seed=args.seed,
            budget=budget,
        )
        elapsed = time.perf_counter() - started
        deployment, report = outcome.best, outcome.report
        cost = model.evaluate(deployment)
        points[name] = [(cost.execution_time, cost.time_penalty)]
        if budget is not None and report is not None:
            searches.append((name, report.describe()))
        table.add_row(
            [
                name,
                format_seconds(cost.execution_time),
                format_seconds(cost.time_penalty),
                format_seconds(cost.objective),
                format_seconds(elapsed),
            ]
        )
    print(table)
    for name, described in searches:
        print(f"search[{name}]: {described}")
    if args.plot:
        print()
        print(ascii_scatter(points, title="execution time vs time penalty"))
    return 0


def _cmd_simulate(args) -> int:
    workflow, network, deployment = load_instance(args.instance)
    if deployment is None:
        print(
            "error: instance has no deployment; run `repro deploy --save` "
            "first",
            file=sys.stderr,
        )
        return 2
    model = CostModel(workflow, network)
    engine = SimulationEngine(
        workflow, network, deployment, server_concurrency=args.concurrency
    )
    results = engine.run_many(args.runs, rng=args.seed)
    makespans = [r.makespan for r in results]
    mean = sum(makespans) / len(makespans)
    analytic = model.execution_time(deployment)
    table = TextTable(
        ["metric", "value"], title=f"{args.runs} simulated executions"
    )
    table.add_row(["analytic Texecute", format_seconds(analytic)])
    table.add_row(["measured mean makespan", format_seconds(mean)])
    table.add_row(["measured min", format_seconds(min(makespans))])
    table.add_row(["measured max", format_seconds(max(makespans))])
    table.add_row(
        [
            "mean queueing delay",
            format_seconds(
                sum(r.total_queueing_delay() for r in results) / len(results)
            ),
        ]
    )
    table.add_row(
        ["mean bits on network", f"{sum(r.bits_sent for r in results) / len(results):,.0f}"]
    )
    print(table)
    return 0


def _cmd_experiment(args) -> int:
    builders = {
        "a": class_a_configs,
        "b": class_b_configs,
        "c": class_c_configs,
    }
    configs = builders[args.klass](
        workflow_kind=args.workflow,
        num_operations=args.operations,
        num_servers=args.servers,
        repetitions=args.repetitions,
    )
    runner = ExperimentRunner(DEFAULT_ALGORITHMS)
    print(runner.sweep_table(configs, metric=args.metric))
    return 0


def _cmd_quality(args) -> int:
    protocol = QualityProtocol(
        algorithms=DEFAULT_ALGORITHMS,
        experiments=args.experiments,
        samples=args.samples,
    )
    config = ExperimentConfig(
        workflow_kind=args.workflow,
        num_operations=args.operations,
        num_servers=args.servers,
        bus_speed_bps=args.bus_speed,
        repetitions=1,
        seed=args.seed,
    )
    print(protocol.run(config).table())
    return 0


def _cmd_analyze(args) -> int:
    workflow, network, deployment = load_instance(args.instance)
    statistics = workflow_statistics(workflow)
    table = TextTable(["statistic", "value"], title=f"{workflow.name}")
    for key, value in statistics.items():
        table.add_row([key, value])
    print(table)

    tree = region_tree(workflow)
    print(
        f"\nregions: {tree.count()} (max nesting depth {tree.depth()})"
    )

    def show(node, indent="  "):
        for child in node.children:
            kind = child.kind.value if child.kind else "?"
            print(f"{indent}{child.split} .. {child.join} [{kind}]")
            show(child, indent + "  ")

    show(tree)

    if deployment is not None:
        model = CostModel(workflow, network)
        path = critical_path(workflow, deployment, model)
        print(
            f"\ncritical path ({format_seconds(path.length_s)}; "
            f"processing {format_seconds(path.processing_s)}, "
            f"communication {format_seconds(path.communication_s)}):"
        )
        print("  " + " -> ".join(path.operations))
    if args.dot:
        from pathlib import Path

        Path(args.dot).write_text(workflow_to_dot(workflow))
        print(f"\nDOT written to {args.dot}")
    return 0


def _cmd_failover(args) -> int:
    from repro.experiments.failover import failover_table

    workflow, network, deployment = load_instance(args.instance)
    if deployment is None:
        print(
            "error: instance has no deployment; run `repro deploy --save` "
            "first",
            file=sys.stderr,
        )
        return 2
    algorithm = None
    if args.redeploy is not None:
        algorithm = get_algorithm(args.redeploy)()
    print(failover_table(workflow, network, deployment, algorithm=algorithm))
    return 0


def _cmd_figures(args) -> int:
    from repro.experiments.figures import reproduce_all

    paths = reproduce_all(args.output, scale=args.scale)
    for path in paths:
        print(f"wrote {path}")
    print(f"\n{len(paths)} files under {args.output}")
    return 0


def _cmd_claims(args) -> int:
    from repro.experiments.claims import verify_claims

    report = verify_claims(repetitions=args.repetitions, seed=args.seed)
    print(report.table())
    return 0 if report.all_pass else 3


def _cmd_fleet(args) -> int:
    dispatch = {
        "replay": _fleet_replay,
        "checkpoint": _fleet_checkpoint,
        "restore": _fleet_restore,
        "serve": _fleet_serve,
    }
    return dispatch[args.action](args)


def _fleet_replay(args) -> int:
    from repro.service.scenarios import build_scenario, replay

    scenario = build_scenario(
        args.scenario, seed=args.seed, algorithm=args.algorithm
    )
    print(
        f"scenario {scenario.name!r} (seed {args.seed}): "
        f"{scenario.description}"
    )
    print(
        f"fleet: {len(scenario.network)} servers, "
        f"{len(scenario.events)} events, "
        f"algorithm {scenario.config.algorithm}"
    )
    controller = replay(scenario)
    if args.log:
        print()
        print(controller.log.to_table())
    print()
    print(controller.metrics().to_table())
    loads = controller.snapshot().loads
    table = TextTable(
        ["server", "load"], title="final combined per-server loads"
    )
    for server, load in loads.items():
        table.add_row([server, format_seconds(load)])
    print()
    print(table)
    return 0


def _require_checkpoint_path(args, action: str) -> str:
    from repro.exceptions import ServiceError

    if not args.checkpoint:
        raise ServiceError(
            f"fleet {action} needs --checkpoint PATH"
        )
    return args.checkpoint


def _fleet_checkpoint(args) -> int:
    from repro.core.clock import StepClock
    from repro.exceptions import ServiceError
    from repro.service.controller import FleetController
    from repro.service.scenarios import build_scenario

    path = _require_checkpoint_path(args, "checkpoint")
    scenario = build_scenario(
        args.scenario, seed=args.seed, algorithm=args.algorithm
    )
    events = scenario.events
    cut = len(events) if args.stop_after is None else args.stop_after
    if not 0 <= cut <= len(events):
        raise ServiceError(
            f"--stop-after {cut} is outside the scenario's "
            f"0..{len(events)} events"
        )
    controller = FleetController(
        scenario.network, config=scenario.config, clock=StepClock()
    )
    for event in events[:cut]:
        controller.handle(event)
    written = controller.checkpoint(path, pending=events[cut:])
    print(
        f"checkpoint written to {written}: scenario {scenario.name!r} "
        f"(seed {args.seed}), {cut} events processed, "
        f"{len(events) - cut} pending"
    )
    return 0


def _fleet_restore(args) -> int:
    from repro.service.checkpoint import restore_controller

    path = _require_checkpoint_path(args, "restore")
    controller, pending = restore_controller(path)
    print(
        f"restored {path}: {len(controller.history)} events replayed "
        f"and verified, {len(pending)} pending"
    )
    if args.resume and pending:
        for event in pending:
            controller.handle(event)
        print(f"resumed: processed {len(pending)} pending events")
    if args.log:
        print()
        print(controller.log.to_table())
    print()
    print(controller.metrics().to_table())
    return 0


def _fleet_serve(args) -> int:
    from repro.core.clock import StepClock
    from repro.service.checkpoint import restore_controller
    from repro.service.controller import FleetController
    from repro.service.queue import FleetService
    from repro.service.scenarios import build_scenario
    from repro.service.server import FleetApp, make_server

    if args.checkpoint:
        controller, pending = restore_controller(args.checkpoint)
        origin = f"checkpoint {args.checkpoint}"
    else:
        scenario = build_scenario(
            args.scenario, seed=args.seed, algorithm=args.algorithm
        )
        controller = FleetController(
            scenario.network, config=scenario.config, clock=StepClock()
        )
        pending = scenario.events
        origin = f"scenario {scenario.name!r} (seed {args.seed})"
    service = FleetService(controller)
    for event in pending:
        service.submit(event)
    server = make_server(FleetApp(service), host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(
        f"fleet service from {origin} on http://{host}:{port} "
        f"({service.queue.pending} queued jobs); Ctrl-C stops"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
    return 0


def _cmd_algorithms(_args) -> int:
    table = TextTable(
        ["name", "class", "description"], title="registered algorithms"
    )
    for name, cls in sorted(algorithm_registry().items()):
        doc = (cls.__doc__ or "").strip()
        summary = doc.splitlines()[0] if doc else "-"
        table.add_row([name, f"{cls.__module__}.{cls.__name__}", summary])
    print(table)
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "deploy": _cmd_deploy,
    "compare": _cmd_compare,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
    "quality": _cmd_quality,
    "analyze": _cmd_analyze,
    "failover": _cmd_failover,
    "figures": _cmd_figures,
    "claims": _cmd_claims,
    "fleet": _cmd_fleet,
    "algorithms": _cmd_algorithms,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
