"""Branch-probability estimation from observed executions (section 3.4).

The paper determines XOR branch probabilities "based on monitoring
initial executions of the workflow or simple prediction mechanisms".
This module closes that loop with the library's own simulator: run a
deployed workflow some number of times, count how often each XOR branch
was taken, and produce a calibrated copy of the workflow whose edge
probabilities are the observed frequencies (mixed with a small uniform
component so a branch never collapses to exactly 0).

Assumption: each XOR branch's head operation has the split as its only
predecessor -- true for every workflow this library's builder or
generator produces (branches are non-empty chains) -- so "branch taken"
can be read off the set of executed operations.
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.core.mapping import Deployment
from repro.core.workflow import NodeKind, Workflow
from repro.exceptions import ExperimentError
from repro.network.topology import ServerNetwork
from repro.simulation.engine import SimulationEngine

__all__ = [
    "observe_branch_frequencies",
    "calibrated_workflow",
    "monitor_and_calibrate",
]


def observe_branch_frequencies(
    workflow: Workflow,
    network: ServerNetwork,
    deployment: Deployment,
    runs: int = 200,
    rng: random.Random | int | None = None,
) -> dict[tuple[str, str], float]:
    """Observed conditional branch frequencies per XOR edge.

    Returns ``{(split, branch_head): frequency}`` where the frequency is
    conditional on the split having executed; splits that never executed
    (nested inside other rarely-taken branches) yield no entries.
    """
    if runs < 1:
        raise ExperimentError("runs must be >= 1")
    for operation in workflow:
        if operation.kind is NodeKind.XOR_SPLIT:
            for head in workflow.successors(operation.name):
                predecessors = workflow.predecessors(head)
                if len(predecessors) != 1:
                    raise ExperimentError(
                        f"branch head {head!r} has {len(predecessors)} "
                        f"predecessors; monitoring requires XOR branch "
                        f"heads reachable only through their split"
                    )
    engine = SimulationEngine(workflow, network, deployment)
    split_runs: dict[str, int] = {}
    taken: dict[tuple[str, str], int] = {}
    for result in engine.run_many(runs, rng):
        executed = result.executed_operations
        for operation in workflow:
            if operation.kind is not NodeKind.XOR_SPLIT:
                continue
            if operation.name not in executed:
                continue
            split_runs[operation.name] = split_runs.get(operation.name, 0) + 1
            for head in workflow.successors(operation.name):
                if head in executed:
                    key = (operation.name, head)
                    taken[key] = taken.get(key, 0) + 1
    frequencies: dict[tuple[str, str], float] = {}
    for split, count in split_runs.items():
        for head in workflow.successors(split):
            frequencies[(split, head)] = taken.get((split, head), 0) / count
    return frequencies


def calibrated_workflow(
    workflow: Workflow,
    frequencies: dict[tuple[str, str], float],
    smoothing: float = 0.01,
    name: str | None = None,
) -> Workflow:
    """A copy of *workflow* with XOR probabilities set from *frequencies*.

    ``smoothing`` mixes a uniform distribution into the observations:
    ``p = (1 - smoothing) * frequency + smoothing / branches``. A small
    positive value keeps branches the monitor never saw at a non-zero
    probability (they may still occur in production). Splits absent from
    *frequencies* keep their original annotations.
    """
    if not 0.0 <= smoothing <= 1.0:
        raise ExperimentError("smoothing must lie in [0, 1]")
    calibrated = workflow.copy(name or f"{workflow.name}-calibrated")
    for operation in workflow:
        if operation.kind is not NodeKind.XOR_SPLIT:
            continue
        heads = workflow.successors(operation.name)
        if not all((operation.name, head) in frequencies for head in heads):
            continue  # split never observed: keep prior probabilities
        observed = [frequencies[(operation.name, head)] for head in heads]
        total = sum(observed)
        if total <= 0:
            continue
        probabilities = [
            (1.0 - smoothing) * value / total + smoothing / len(heads)
            for value in observed
        ]
        probabilities[-1] = 1.0 - sum(probabilities[:-1])
        for head, probability in zip(heads, probabilities):
            message = workflow.message(operation.name, head)
            calibrated.replace_message(
                replace(message, probability=probability)
            )
    calibrated.validate_xor_probabilities()
    return calibrated


def monitor_and_calibrate(
    workflow: Workflow,
    network: ServerNetwork,
    deployment: Deployment,
    runs: int = 200,
    smoothing: float = 0.01,
    rng: random.Random | int | None = None,
) -> Workflow:
    """Observe *runs* executions and return the calibrated workflow.

    The section 3.4 pipeline in one call: monitor initial executions,
    estimate branch probabilities, and hand back a workflow whose
    amortised costs reflect the observed behaviour -- ready to be
    re-deployed with any graph algorithm.
    """
    frequencies = observe_branch_frequencies(
        workflow, network, deployment, runs=runs, rng=rng
    )
    return calibrated_workflow(workflow, frequencies, smoothing=smoothing)
