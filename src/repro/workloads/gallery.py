"""Hand-built example workflows, starting with the paper's Fig. 1.

The motivating example (section 2.1) is an electronic rendezvous system
of a ministry of health: patients request a consultation, the system
checks doctor availability, arranges (or reschedules) the meeting, then
registers prescribed medicines and notifies the social-security agencies.
The figure itself shows 15 operations over 5 ministry servers; the exact
node labels are not given in the text, so this reconstruction keeps the
documented shape: an XOR on doctor availability, an AND fan-out for the
medicine/social-security bookkeeping, and 15 nodes total.

Costs use the section 4.1 anchors (simple 5 M / medium 50 M / heavy
500 M cycles) and SOAP message classes for realistic magnitudes.
"""

from __future__ import annotations

from repro.core.builder import WorkflowBuilder
from repro.core.workflow import NodeKind, Workflow
from repro.network.topology import ServerNetwork, bus_network
from repro.workloads.messages import (
    COMPLEX_MESSAGE,
    MEDIUM_MESSAGE,
    SIMPLE_MESSAGE,
)
from repro.workloads.parameters import (
    HEAVY_OPERATION_CYCLES,
    MEDIUM_OPERATION_CYCLES,
    SIMPLE_OPERATION_CYCLES,
)

__all__ = ["healthcare_workflow", "ministry_network"]


def healthcare_workflow() -> Workflow:
    """The Fig. 1 rendezvous workflow: 15 operations, one XOR, one AND.

    Structure::

        receive_request -> lookup_patient -> check_availability (XOR)
          available   (70%): assign_slot -> confirm_meeting
          unavailable (30%): propose_alternative -> reschedule
        /XOR -> conduct_meeting -> record_outcome (AND)
          branch 1: register_medicines -> notify_social_security
          branch 2: update_medical_record
        /AND -> close_case
    """
    builder = WorkflowBuilder(
        "healthcare-rendezvous",
        default_message_bits=MEDIUM_MESSAGE.size_bits,
    )
    builder.task("receive_request", SIMPLE_OPERATION_CYCLES,
                 SIMPLE_MESSAGE.size_bits)
    builder.task("lookup_patient", MEDIUM_OPERATION_CYCLES,
                 SIMPLE_MESSAGE.size_bits)
    builder.split(NodeKind.XOR_SPLIT, "check_availability",
                  SIMPLE_OPERATION_CYCLES, MEDIUM_MESSAGE.size_bits)
    builder.branch(probability=0.7)
    builder.task("assign_slot", MEDIUM_OPERATION_CYCLES,
                 SIMPLE_MESSAGE.size_bits)
    builder.task("confirm_meeting", SIMPLE_OPERATION_CYCLES,
                 SIMPLE_MESSAGE.size_bits)
    builder.branch(probability=0.3)
    builder.task("propose_alternative", MEDIUM_OPERATION_CYCLES,
                 MEDIUM_MESSAGE.size_bits)
    builder.task("reschedule", SIMPLE_OPERATION_CYCLES,
                 SIMPLE_MESSAGE.size_bits)
    builder.join("availability_resolved", SIMPLE_OPERATION_CYCLES,
                 SIMPLE_MESSAGE.size_bits)
    builder.task("conduct_meeting", HEAVY_OPERATION_CYCLES,
                 COMPLEX_MESSAGE.size_bits)
    builder.split(NodeKind.AND_SPLIT, "record_outcome",
                  SIMPLE_OPERATION_CYCLES, MEDIUM_MESSAGE.size_bits)
    builder.branch()
    builder.task("register_medicines", MEDIUM_OPERATION_CYCLES,
                 COMPLEX_MESSAGE.size_bits)
    builder.task("notify_social_security", MEDIUM_OPERATION_CYCLES,
                 COMPLEX_MESSAGE.size_bits)
    builder.branch()
    builder.task("update_medical_record", MEDIUM_OPERATION_CYCLES,
                 MEDIUM_MESSAGE.size_bits)
    builder.join("bookkeeping_done", SIMPLE_OPERATION_CYCLES,
                 SIMPLE_MESSAGE.size_bits)
    builder.task("close_case", SIMPLE_OPERATION_CYCLES,
                 SIMPLE_MESSAGE.size_bits)
    return builder.build()


def ministry_network(speed_bps: float = 100e6) -> ServerNetwork:
    """The ministry's 5 servers on a shared bus (section 2.1).

    Heterogeneous powers so the ``Ideal_Cycles`` shares differ, which is
    what makes the fairness dimension interesting on this example.
    """
    return bus_network(
        [1e9, 2e9, 2e9, 3e9, 2e9],
        speed_bps=speed_bps,
        name="ministry",
    )
