"""Workload generation: the experimental inputs of section 4.1.

* :mod:`repro.workloads.messages` -- the three SOAP message classes of
  [NgCG04] (simple/medium/complex) and size mixtures.
* :mod:`repro.workloads.parameters` -- discrete parameter mixtures,
  including the exact Class C configuration of Table 6 and the Class A/B
  sweeps.
* :mod:`repro.workloads.generator` -- line workflows, random well-formed
  graph workflows (bushy/lengthy/hybrid), and parameterised server
  networks.
* :mod:`repro.workloads.gallery` -- hand-built example workflows,
  including the Fig. 1 healthcare rendezvous workflow.
"""

from repro.workloads.messages import (
    MessageClass,
    MessageMixture,
    SIMPLE_MESSAGE,
    MEDIUM_MESSAGE,
    COMPLEX_MESSAGE,
    PAPER_MESSAGE_MIXTURE,
)
from repro.workloads.parameters import (
    DiscreteMixture,
    ClassCParameters,
    ClassAParameters,
    ClassBParameters,
    SIMPLE_OPERATION_CYCLES,
    MEDIUM_OPERATION_CYCLES,
    HEAVY_OPERATION_CYCLES,
)
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_graph_workflow,
    random_bus_network,
    random_line_network,
)
from repro.workloads.gallery import healthcare_workflow, ministry_network
from repro.workloads.monitoring import (
    observe_branch_frequencies,
    calibrated_workflow,
    monitor_and_calibrate,
)

__all__ = [
    "MessageClass",
    "MessageMixture",
    "SIMPLE_MESSAGE",
    "MEDIUM_MESSAGE",
    "COMPLEX_MESSAGE",
    "PAPER_MESSAGE_MIXTURE",
    "DiscreteMixture",
    "ClassCParameters",
    "ClassAParameters",
    "ClassBParameters",
    "SIMPLE_OPERATION_CYCLES",
    "MEDIUM_OPERATION_CYCLES",
    "HEAVY_OPERATION_CYCLES",
    "GraphStructure",
    "line_workflow",
    "random_graph_workflow",
    "random_bus_network",
    "random_line_network",
    "healthcare_workflow",
    "ministry_network",
    "observe_branch_frequencies",
    "calibrated_workflow",
    "monitor_and_calibrate",
]
