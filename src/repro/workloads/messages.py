"""SOAP message classes (section 4.1, after [NgCG04]).

The paper adopts three representative SOAP message sizes:

* *simple* -- 873 bytes,
* *medium* -- 7 581 bytes,
* *complex* -- 21 392 bytes,

quoting them in "Mbits" computed as ``bytes * 8 / 2**20`` (hence the
0.00666 / 0.057838 / 0.163208 figures in the text). The canonical unit in
this library is the bit, so each class exposes ``size_bits = bytes * 8``;
the Mbit property reproduces the paper's convention for report parity.
"""

from __future__ import annotations

import bisect
import itertools
import math
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ExperimentError

__all__ = [
    "MessageClass",
    "MessageMixture",
    "SIMPLE_MESSAGE",
    "MEDIUM_MESSAGE",
    "COMPLEX_MESSAGE",
    "PAPER_MESSAGE_MIXTURE",
]


@dataclass(frozen=True)
class MessageClass:
    """A named SOAP message size class."""

    name: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ExperimentError(
                f"message class {self.name!r}: size must be > 0 bytes"
            )

    @property
    def size_bits(self) -> float:
        """Size in bits (the library's canonical unit)."""
        return float(self.size_bytes * 8)

    @property
    def size_mbits_paper(self) -> float:
        """Size in the paper's "Mbits" (``bytes * 8 / 2**20``)."""
        return self.size_bytes * 8 / 2**20


#: 873-byte simple SOAP message (paper: "0.00666 Mbits").
SIMPLE_MESSAGE = MessageClass("simple", 873)
#: 7 581-byte medium SOAP message (paper: "0.057838 Mbits").
MEDIUM_MESSAGE = MessageClass("medium", 7_581)
#: 21 392-byte complex SOAP message (paper: "0.163208 Mbits").
COMPLEX_MESSAGE = MessageClass("complex", 21_392)


class MessageMixture:
    """A discrete distribution over message classes.

    Parameters
    ----------
    classes_and_weights:
        ``(MessageClass, weight)`` pairs; weights must be positive and
        are normalised internally.
    """

    def __init__(
        self, classes_and_weights: Sequence[tuple[MessageClass, float]]
    ):
        if not classes_and_weights:
            raise ExperimentError("a message mixture needs at least one class")
        total = 0.0
        for message_class, weight in classes_and_weights:
            if weight <= 0 or not math.isfinite(weight):
                raise ExperimentError(
                    f"weight of class {message_class.name!r} must be a "
                    f"positive finite number, got {weight!r}"
                )
            total += weight
        self._classes = [mc for mc, _ in classes_and_weights]
        self._cumulative = list(
            itertools.accumulate(w / total for _, w in classes_and_weights)
        )
        self._cumulative[-1] = 1.0  # guard against floating-point shortfall

    @property
    def classes(self) -> tuple[MessageClass, ...]:
        """The classes in this mixture."""
        return tuple(self._classes)

    def probability_of(self, message_class: MessageClass) -> float:
        """Normalised probability of one class (0 when absent)."""
        previous = 0.0
        for mc, cumulative in zip(self._classes, self._cumulative):
            if mc == message_class:
                return cumulative - previous
            previous = cumulative
        return 0.0

    def sample(self, rng) -> MessageClass:
        """Draw one class (*rng* is ``random.Random``-like)."""
        index = bisect.bisect_left(self._cumulative, rng.random())
        return self._classes[min(index, len(self._classes) - 1)]

    def sample_bits(self, rng) -> float:
        """Draw one class and return its size in bits."""
        return self.sample(rng).size_bits

    def mean_bits(self) -> float:
        """Expected message size in bits."""
        previous = 0.0
        mean = 0.0
        for mc, cumulative in zip(self._classes, self._cumulative):
            mean += (cumulative - previous) * mc.size_bits
            previous = cumulative
        return mean


#: Table 6 message-size mixture: simple 25 %, medium 50 %, complex 25 %.
PAPER_MESSAGE_MIXTURE = MessageMixture(
    [
        (SIMPLE_MESSAGE, 0.25),
        (MEDIUM_MESSAGE, 0.50),
        (COMPLEX_MESSAGE, 0.25),
    ]
)
