"""Experimental parameter mixtures (section 4.1, Table 6).

Three experiment classes drive the paper's evaluation:

* **Class A** varies the link capacity and the message sizes;
* **Class B** varies the CPU power of the servers and the workload;
* **Class C** varies everything, using the exact discrete mixtures of
  Table 6 -- which :data:`ClassCParameters.paper` reproduces verbatim.

Every mixture is a :class:`DiscreteMixture`: a finite set of values with
normalised probabilities, sampled with a caller-supplied RNG so whole
experiments replay from a single seed.

Operation cost anchors from section 4.1: simple operations cost 5 M
cycles, medium 50 M, heavy 500 M.
"""

from __future__ import annotations

import bisect
import itertools
import math
from dataclasses import dataclass, field
from typing import Generic, Sequence, TypeVar

from repro.exceptions import ExperimentError
from repro.workloads.messages import (
    COMPLEX_MESSAGE,
    MEDIUM_MESSAGE,
    SIMPLE_MESSAGE,
    MessageMixture,
    PAPER_MESSAGE_MIXTURE,
)

__all__ = [
    "DiscreteMixture",
    "ClassCParameters",
    "ClassAParameters",
    "ClassBParameters",
    "SIMPLE_OPERATION_CYCLES",
    "MEDIUM_OPERATION_CYCLES",
    "HEAVY_OPERATION_CYCLES",
]

T = TypeVar("T")

#: Section 4.1 operation cost anchors (cycles).
SIMPLE_OPERATION_CYCLES = 5e6
MEDIUM_OPERATION_CYCLES = 50e6
HEAVY_OPERATION_CYCLES = 500e6


class DiscreteMixture(Generic[T]):
    """A finite distribution over arbitrary values.

    Parameters
    ----------
    values_and_weights:
        ``(value, weight)`` pairs; positive weights, normalised
        internally. Sampling uses inverse-CDF over the cumulative
        weights, so a fixed RNG seed reproduces a full draw sequence.
    """

    def __init__(self, values_and_weights: Sequence[tuple[T, float]]):
        if not values_and_weights:
            raise ExperimentError("a mixture needs at least one value")
        total = 0.0
        for value, weight in values_and_weights:
            if weight <= 0 or not math.isfinite(weight):
                raise ExperimentError(
                    f"weight of value {value!r} must be a positive finite "
                    f"number, got {weight!r}"
                )
            total += weight
        self._values = [v for v, _ in values_and_weights]
        self._cumulative = list(
            itertools.accumulate(w / total for _, w in values_and_weights)
        )
        self._cumulative[-1] = 1.0

    @classmethod
    def constant(cls, value: T) -> "DiscreteMixture[T]":
        """A degenerate mixture always yielding *value*."""
        return cls([(value, 1.0)])

    @property
    def values(self) -> tuple[T, ...]:
        """The support of the mixture."""
        return tuple(self._values)

    def probabilities(self) -> tuple[float, ...]:
        """Normalised probabilities aligned with :attr:`values`."""
        previous = 0.0
        out = []
        for cumulative in self._cumulative:
            out.append(cumulative - previous)
            previous = cumulative
        return tuple(out)

    def sample(self, rng) -> T:
        """Draw one value (*rng* is ``random.Random``-like)."""
        index = bisect.bisect_left(self._cumulative, rng.random())
        return self._values[min(index, len(self._values) - 1)]

    def mean(self) -> float:
        """Expected value (numeric supports only)."""
        return sum(
            p * float(v)  # type: ignore[arg-type]
            for p, v in zip(self.probabilities(), self._values)
        )


@dataclass(frozen=True)
class ClassCParameters:
    """The "change all the variables" configuration (Table 6).

    Attributes
    ----------
    message_mixture:
        ``MsgSize(O_i, O_{i+1})``: simple/medium/complex at 25/50/25 %.
    line_speed_bps:
        ``Line_Speed``: 10/100/1000 Mbps at 25/50/25 %.
    operation_cycles:
        ``C(O_i)``: 10/20/30 Mcycles at 25/50/25 %.
    server_power_hz:
        ``P(S_i)``: 1/2/3 GHz at 25/50/25 %.
    """

    message_mixture: MessageMixture = field(
        default_factory=lambda: PAPER_MESSAGE_MIXTURE
    )
    line_speed_bps: DiscreteMixture[float] = field(
        default_factory=lambda: DiscreteMixture(
            [(10e6, 0.25), (100e6, 0.50), (1000e6, 0.25)]
        )
    )
    operation_cycles: DiscreteMixture[float] = field(
        default_factory=lambda: DiscreteMixture(
            [(10e6, 0.25), (20e6, 0.50), (30e6, 0.25)]
        )
    )
    server_power_hz: DiscreteMixture[float] = field(
        default_factory=lambda: DiscreteMixture(
            [(1e9, 0.25), (2e9, 0.50), (3e9, 0.25)]
        )
    )

    @classmethod
    def paper(cls) -> "ClassCParameters":
        """The exact Table 6 configuration."""
        return cls()

    def with_fixed_bus_speed(self, speed_bps: float) -> "ClassCParameters":
        """A copy whose line speed is pinned (Fig. 6 runs per bus speed)."""
        return ClassCParameters(
            message_mixture=self.message_mixture,
            line_speed_bps=DiscreteMixture.constant(speed_bps),
            operation_cycles=self.operation_cycles,
            server_power_hz=self.server_power_hz,
        )


@dataclass(frozen=True)
class ClassAParameters:
    """Class A: vary link capacity and message size, fix the rest.

    The paper describes (without tabulating) experiments that sweep the
    communication side while CPU power and operation cost stay constant.
    """

    message_mixture: MessageMixture
    line_speed_bps: DiscreteMixture[float]
    operation_cycles: DiscreteMixture[float] = field(
        default_factory=lambda: DiscreteMixture.constant(
            MEDIUM_OPERATION_CYCLES
        )
    )
    server_power_hz: DiscreteMixture[float] = field(
        default_factory=lambda: DiscreteMixture.constant(2e9)
    )

    @classmethod
    def sweep_point(
        cls, speed_bps: float, message_scale: str = "medium"
    ) -> "ClassAParameters":
        """One point of the Class A sweep.

        *message_scale* picks a single SOAP class (``"simple"``,
        ``"medium"``, ``"complex"``) or ``"mixed"`` for the Table 6
        blend.
        """
        scales = {
            "simple": MessageMixture([(SIMPLE_MESSAGE, 1.0)]),
            "medium": MessageMixture([(MEDIUM_MESSAGE, 1.0)]),
            "complex": MessageMixture([(COMPLEX_MESSAGE, 1.0)]),
            "mixed": PAPER_MESSAGE_MIXTURE,
        }
        if message_scale not in scales:
            raise ExperimentError(
                f"unknown message scale {message_scale!r}; expected one of "
                f"{sorted(scales)}"
            )
        return cls(
            message_mixture=scales[message_scale],
            line_speed_bps=DiscreteMixture.constant(speed_bps),
        )

    def as_class_c(self) -> ClassCParameters:
        """View as a :class:`ClassCParameters` for the shared runner."""
        return ClassCParameters(
            message_mixture=self.message_mixture,
            line_speed_bps=self.line_speed_bps,
            operation_cycles=self.operation_cycles,
            server_power_hz=self.server_power_hz,
        )


@dataclass(frozen=True)
class ClassBParameters:
    """Class B: vary CPU power and workload, fix the communication side."""

    operation_cycles: DiscreteMixture[float]
    server_power_hz: DiscreteMixture[float]
    message_mixture: MessageMixture = field(
        default_factory=lambda: MessageMixture([(MEDIUM_MESSAGE, 1.0)])
    )
    line_speed_bps: DiscreteMixture[float] = field(
        default_factory=lambda: DiscreteMixture.constant(100e6)
    )

    @classmethod
    def sweep_point(
        cls, operation_cycles: float, power_hz: float
    ) -> "ClassBParameters":
        """One point of the Class B sweep (fixed cost class, fixed power)."""
        return cls(
            operation_cycles=DiscreteMixture.constant(operation_cycles),
            server_power_hz=DiscreteMixture.constant(power_hz),
        )

    def as_class_c(self) -> ClassCParameters:
        """View as a :class:`ClassCParameters` for the shared runner."""
        return ClassCParameters(
            message_mixture=self.message_mixture,
            line_speed_bps=self.line_speed_bps,
            operation_cycles=self.operation_cycles,
            server_power_hz=self.server_power_hz,
        )
