"""Random workflow and network generators (section 4.1).

Two workflow shapes drive the evaluation:

* **line workflows** ``O1 -> O2 -> ... -> OM`` (sections 3.2-3.3), with
  operation cycles and message sizes drawn from a parameter mixture;
* **random well-formed graphs** (section 3.4 / 4.2), generated as nested
  decision regions so the parenthesis property holds by construction.
  The paper distinguishes three structures by their decision/operational
  node balance: *bushy* 50/50, *lengthy* 16/84, *hybrid* 35/65 -- the
  :class:`GraphStructure` enum.

The graph generator plans ``k = round(fraction * M / 2)`` decision
regions (each contributes a split and a join) and recursively embeds them
into sequences and branches under a strict feasibility invariant (a chain
of ``r`` nested regions needs at least ``r + 1`` operational nodes), so
the requested total node count ``M`` is always met exactly.

Server-side, :func:`random_bus_network` samples per-server powers and a
single shared bus speed; :func:`random_line_network` samples a speed per
link, which is what makes critical bridges (Fig. 3) possible.
"""

from __future__ import annotations

import random
from enum import Enum

from repro.core.builder import WorkflowBuilder
from repro.core.rng import coerce_rng
from repro.core.workflow import NodeKind, Workflow
from repro.exceptions import ExperimentError
from repro.network.topology import ServerNetwork, bus_network, line_network
from repro.workloads.parameters import ClassCParameters, DiscreteMixture

__all__ = [
    "GraphStructure",
    "line_workflow",
    "random_graph_workflow",
    "random_bus_network",
    "random_line_network",
]

#: Default mix of decision kinds for generated regions: XOR dominates
#: because it is what differentiates the graph algorithms (probabilities).
DEFAULT_KIND_WEIGHTS = (
    (NodeKind.XOR_SPLIT, 0.5),
    (NodeKind.AND_SPLIT, 0.3),
    (NodeKind.OR_SPLIT, 0.2),
)


class GraphStructure(Enum):
    """The three random-graph families of section 4.2.

    The value is the target fraction of decision nodes among all nodes.
    """

    BUSHY = 0.50
    LENGTHY = 0.16
    HYBRID = 0.35

    @property
    def decision_fraction(self) -> float:
        """Target decision-node fraction."""
        return self.value


def line_workflow(
    num_operations: int,
    seed: int | random.Random | None = None,
    parameters: ClassCParameters | None = None,
    name: str | None = None,
) -> Workflow:
    """A line workflow with sampled costs and message sizes.

    Parameters
    ----------
    num_operations:
        ``M``, the number of operations (>= 1).
    seed:
        Seed or RNG for the parameter draws.
    parameters:
        Mixtures for ``C(O)`` and ``MsgSize``; Table 6 defaults.
    """
    if num_operations < 1:
        raise ExperimentError("a line workflow needs at least one operation")
    rng = coerce_rng(seed)
    parameters = parameters or ClassCParameters.paper()
    workflow = Workflow(name or f"line-{num_operations}")
    previous = None
    for i in range(1, num_operations + 1):
        operation = workflow.add_operation(
            _operation(f"O{i}", parameters, rng)
        )
        if previous is not None:
            workflow.connect(
                previous.name,
                operation.name,
                parameters.message_mixture.sample_bits(rng),
            )
        previous = operation
    return workflow


def _operation(name, parameters, rng):
    from repro.core.workflow import Operation

    return Operation(name, parameters.operation_cycles.sample(rng))


class _GraphGenerator:
    """Recursive region-nesting generator of well-formed graphs."""

    def __init__(
        self,
        builder: WorkflowBuilder,
        rng: random.Random,
        parameters: ClassCParameters,
        kind_mixture: DiscreteMixture[NodeKind],
        max_branches: int,
    ):
        self.builder = builder
        self.rng = rng
        self.parameters = parameters
        self.kind_mixture = kind_mixture
        self.max_branches = max_branches
        self._op_counter = 0
        self._region_counter = 0

    # -- sampled attributes -------------------------------------------
    def _cycles(self) -> float:
        return self.parameters.operation_cycles.sample(self.rng)

    def _bits(self) -> float:
        return self.parameters.message_mixture.sample_bits(self.rng)

    def _next_op_name(self) -> str:
        self._op_counter += 1
        return f"O{self._op_counter}"

    def _next_region_name(self, kind: NodeKind) -> str:
        self._region_counter += 1
        return f"{kind.value}{self._region_counter}"

    # -- structure ----------------------------------------------------
    @staticmethod
    def _needed(regions: int) -> int:
        """Minimum operational nodes a sequence with *regions* needs."""
        return regions + 1 if regions > 0 else 0

    def sequence(self, ops: int, regions: int) -> None:
        """Emit a sequence consuming exactly *ops* tasks and *regions* regions.

        Maintains the feasibility invariant ``ops >= needed(regions)``:
        an operational node is only emitted when enough ops remain for
        the outstanding regions, otherwise a region is forced.
        """
        while ops > 0 or regions > 0:
            can_place_op = ops > self._needed(regions)
            place_region = regions > 0 and (
                not can_place_op
                or self.rng.random() < regions / (ops + regions)
            )
            if place_region:
                ops, regions = self._place_region(ops, regions)
            else:
                self.builder.task(
                    self._next_op_name(), self._cycles(), self._bits()
                )
                ops -= 1

    def _place_region(self, ops: int, regions: int) -> tuple[int, int]:
        """Open/populate/close one region; returns the remaining budgets."""
        regions -= 1  # this region's split/join pair
        branches = self.rng.randint(2, self.max_branches)
        # how many of the remaining regions nest inside vs. stay outside
        nested = self.rng.randint(0, regions)

        def available(nest: int) -> int:
            """Ops usable inside, reserving the outer sequence's minimum."""
            return ops - self._needed(regions - nest)

        # interior needs one op per branch plus one per nested region;
        # nesting more regions (or fewer branches) relaxes the bound
        while nested + branches > available(nested):
            if branches > 2:
                branches -= 1
            elif nested < regions:
                nested = regions
            else:
                raise ExperimentError(
                    "internal generator invariant violated: not enough "
                    "operational nodes to populate a region"
                )
        interior_ops = self.rng.randint(nested + branches, available(nested))
        self._emit_region(branches, interior_ops, nested)
        return ops - interior_ops, regions - nested

    def _emit_region(self, branches: int, ops: int, regions: int) -> None:
        kind = self.kind_mixture.sample(self.rng)
        name = self._next_region_name(kind)
        self.builder.split(kind, name, self._cycles(), self._bits())

        # distribute nested regions, then ops, honouring per-branch minima
        region_split = self._partition(regions, branches, minimum=0)
        minima = [
            self._needed(r) if r > 0 else 1 for r in region_split
        ]
        extra = ops - sum(minima)
        extra_split = self._partition(extra, branches, minimum=0)
        op_split = [m + e for m, e in zip(minima, extra_split)]

        if kind is NodeKind.XOR_SPLIT:
            weights = [self.rng.random() + 0.05 for _ in range(branches)]
            total = sum(weights)
            probabilities = [w / total for w in weights]
            # make them sum to exactly 1.0 despite floating point
            probabilities[-1] = 1.0 - sum(probabilities[:-1])
        else:
            probabilities = [1.0] * branches

        for branch_ops, branch_regions, probability in zip(
            op_split, region_split, probabilities
        ):
            self.builder.branch(probability=probability)
            self.sequence(branch_ops, branch_regions)
        self.builder.join(f"/{name}", self._cycles(), self._bits())

    def _partition(self, total: int, parts: int, minimum: int) -> list[int]:
        """Randomly split *total* into *parts* non-negative integers."""
        counts = [minimum] * parts
        for _ in range(total - minimum * parts):
            counts[self.rng.randrange(parts)] += 1
        return counts


def random_graph_workflow(
    num_operations: int,
    structure: GraphStructure = GraphStructure.HYBRID,
    seed: int | random.Random | None = None,
    parameters: ClassCParameters | None = None,
    kind_weights=DEFAULT_KIND_WEIGHTS,
    max_branches: int = 3,
    name: str | None = None,
) -> Workflow:
    """A random well-formed workflow with the requested decision balance.

    Parameters
    ----------
    num_operations:
        Total node count ``M`` (operational + decision), >= 1.
    structure:
        Target decision fraction: bushy/lengthy/hybrid (section 4.2).
    kind_weights:
        ``(NodeKind, weight)`` pairs over split kinds.
    max_branches:
        Maximum branches per region (>= 2).

    The planned region count is ``round(fraction * M / 2)``, clamped to
    what ``M`` can structurally accommodate, so small workflows may fall
    slightly short of the target fraction (never above it).
    """
    if num_operations < 1:
        raise ExperimentError("a workflow needs at least one operation")
    if max_branches < 2:
        raise ExperimentError("max_branches must be >= 2")
    rng = coerce_rng(seed)
    parameters = parameters or ClassCParameters.paper()

    target_regions = round(structure.decision_fraction * num_operations / 2)
    # feasibility: M = ops + 2k and ops >= k + 1  =>  k <= (M - 1) / 3
    max_regions = max(0, (num_operations - 1) // 3)
    regions = min(target_regions, max_regions)
    ops = num_operations - 2 * regions

    builder = WorkflowBuilder(
        name or f"{structure.name.lower()}-{num_operations}",
        default_message_bits=parameters.message_mixture.mean_bits(),
    )
    generator = _GraphGenerator(
        builder,
        rng,
        parameters,
        DiscreteMixture(list(kind_weights)),
        max_branches,
    )
    generator.sequence(ops, regions)
    return builder.build()


def random_bus_network(
    num_servers: int,
    seed: int | random.Random | None = None,
    parameters: ClassCParameters | None = None,
    name: str | None = None,
) -> ServerNetwork:
    """A bus of *num_servers* with sampled powers and one sampled speed."""
    if num_servers < 1:
        raise ExperimentError("a network needs at least one server")
    rng = coerce_rng(seed)
    parameters = parameters or ClassCParameters.paper()
    powers = [parameters.server_power_hz.sample(rng) for _ in range(num_servers)]
    speed = parameters.line_speed_bps.sample(rng)
    return bus_network(powers, speed, name=name or f"bus-{num_servers}")


def random_line_network(
    num_servers: int,
    seed: int | random.Random | None = None,
    parameters: ClassCParameters | None = None,
    name: str | None = None,
) -> ServerNetwork:
    """A line of *num_servers* with per-link sampled speeds."""
    if num_servers < 1:
        raise ExperimentError("a network needs at least one server")
    rng = coerce_rng(seed)
    parameters = parameters or ClassCParameters.paper()
    powers = [parameters.server_power_hz.sample(rng) for _ in range(num_servers)]
    speeds = [
        parameters.line_speed_bps.sample(rng)
        for _ in range(max(0, num_servers - 1))
    ]
    if num_servers == 1:
        speeds = 1.0  # scalar placeholder; a single server has no links
    return line_network(powers, speeds, name=name or f"line-{num_servers}")
