"""The budgeted, anytime search runtime shared by every algorithm.

The paper's deployment algorithms (section 4) and our extensions are
all *iterative* searches, yet each used to hand-roll its own loop:
private ``max_iterations`` counters, private best-so-far tracking, no
wall-clock deadlines and no way to preempt a search in flight. This
module is the one loop they all run on now:

:class:`SearchBudget`
    How much work a search may spend: a step cap, an evaluation cap
    and/or a wall-clock deadline. The default budget is unlimited, in
    which case every search runs to its natural exhaustion and seeded
    results are byte-identical to the pre-runtime implementations.
:class:`CancelToken`
    Cooperative cancellation. Anyone holding the token can
    :meth:`~CancelToken.cancel` it; the runtime observes it between
    steps, so the incumbent is always a consistent, complete solution.
:class:`SearchStep`
    What a search yields per step: the value of the candidate the step
    produced, a zero-argument snapshot supplier for it (called only
    when the value improves -- snapshots are usually copies and the
    runtime avoids paying for them on non-improving steps), and the
    step's accounting (evaluations spent, moves accepted/rejected).
:class:`SearchRuntime`
    Drives any iterator of :class:`SearchStep` under a budget: tracks
    the incumbent (best-so-far), records the best-value curve, checks
    cancellation/deadline/caps between steps, fires periodic progress
    callbacks, and closes the generator on early exit so ``finally``
    blocks run. Returns a :class:`SearchOutcome` bundling the incumbent
    with a structured :class:`SearchReport`.

The *anytime contract*: a search yields its starting state as its first
step, so whatever fires first -- deadline, eval cap, cancellation --
the runtime always holds a valid complete incumbent to return. Values
only need to be orderable with ``<`` (scalars normally; the
constraint-aware search yields lexicographic tuples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.core.clock import MONOTONIC, Clock
from repro.exceptions import AlgorithmError

__all__ = [
    "SearchBudget",
    "CancelToken",
    "SearchStep",
    "SearchProgress",
    "SearchReport",
    "SearchOutcome",
    "SearchRuntime",
    "STOP_EXHAUSTED",
    "STOP_DEADLINE",
    "STOP_MAX_EVALS",
    "STOP_MAX_STEPS",
    "STOP_CANCELLED",
]

#: The search's step generator finished on its own.
STOP_EXHAUSTED = "exhausted"
#: The wall-clock deadline fired.
STOP_DEADLINE = "deadline"
#: The evaluation cap was reached.
STOP_MAX_EVALS = "max-evals"
#: The step cap was reached.
STOP_MAX_STEPS = "max-steps"
#: The cancel token was triggered.
STOP_CANCELLED = "cancelled"


@dataclass(frozen=True)
class SearchBudget:
    """How much work a search may spend before it must stop.

    All limits are optional and combine with *or* semantics: the search
    stops at whichever fires first. The default instance is unlimited
    -- under it, every search runs to natural exhaustion and behaves
    exactly like the pre-runtime hand-rolled loops.

    Attributes
    ----------
    max_steps:
        Cap on runtime steps (a step is one yield of the search
        generator: a hill-climbing round, an annealing proposal, a GA
        generation, a branch-and-bound node, one random sample).
    max_evals:
        Cap on objective evaluations, as accounted by the steps
        themselves (:attr:`SearchStep.evals`). The natural knob when
        evaluation cost dominates, because steps of different
        algorithms do wildly different amounts of work.
    deadline_s:
        Wall-clock budget in seconds, measured on the runtime's clock
        from the moment :meth:`SearchRuntime.run` starts.
    """

    max_steps: int | None = None
    max_evals: int | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_steps is not None:
            self.validate_count("max_steps", self.max_steps)
        if self.max_evals is not None:
            self.validate_count("max_evals", self.max_evals)
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise AlgorithmError("deadline_s must be > 0")

    @staticmethod
    def validate_count(name: str, value: int, minimum: int = 1) -> int:
        """Validate an iteration/step-count knob; returns *value*.

        The single home of the ``"<knob> must be >= <minimum>"``
        contract every algorithm used to restate privately
        (``max_iterations`` in the hill climber and the constrained
        search, ``generations`` in the GA, ``steps`` in the annealer,
        ``samples`` in the sampler, ...).
        """
        if value < minimum:
            raise AlgorithmError(f"{name} must be >= {minimum}")
        return value

    @property
    def bounded(self) -> bool:
        """True when any limit is set."""
        return (
            self.max_steps is not None
            or self.max_evals is not None
            or self.deadline_s is not None
        )


#: The unlimited budget used when callers pass ``None``.
UNLIMITED = SearchBudget()


class CancelToken:
    """Cooperative cancellation shared between a search and its owner.

    The owner calls :meth:`cancel` (from a progress callback, another
    thread, or an event handler); the runtime checks :attr:`cancelled`
    between steps and stops with :data:`STOP_CANCELLED`. Cancellation
    is sticky -- create a fresh token per search.
    """

    __slots__ = ("_cancelled", "reason")

    def __init__(self) -> None:
        self._cancelled = False
        self.reason = ""

    def cancel(self, reason: str = "") -> None:
        """Request the search to stop at the next step boundary."""
        self._cancelled = True
        if reason:
            self.reason = reason

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` was called."""
        return self._cancelled


@dataclass(slots=True)
class SearchStep:
    """One yielded step of a search generator.

    Attributes
    ----------
    value:
        The value of the candidate this step produced (lower is
        better; any ``<``-orderable type works).
    snapshot:
        Zero-argument supplier of a self-contained copy of that
        candidate. Called by the runtime only when *value* strictly
        improves on the incumbent.
    evals:
        Objective evaluations this step spent (budget accounting).
    accepted, rejected:
        Moves accepted/rejected this step (report accounting only).
    """

    value: Any
    snapshot: Callable[[], Any]
    evals: int = 1
    accepted: int = 0
    rejected: int = 0


@dataclass(frozen=True)
class SearchProgress:
    """Periodic progress notification handed to ``on_progress``."""

    steps: int
    evaluations: int
    best_value: Any
    elapsed_s: float


@dataclass(frozen=True)
class SearchReport:
    """Structured account of one runtime-driven search.

    Attributes
    ----------
    steps, evaluations, accepted, rejected:
        Totals over the run (see :class:`SearchStep` for units).
    best_value:
        The incumbent's value.
    curve:
        The anytime best-so-far curve: ``(step, value)`` stamped at
        every strict improvement, first entry at step 1 (the starting
        state). Values are monotonically non-increasing.
    stop_reason:
        One of the ``STOP_*`` constants.
    elapsed_s:
        Wall-clock (or injected-clock) duration of the run.
    """

    steps: int
    evaluations: int
    accepted: int
    rejected: int
    best_value: Any
    curve: tuple[tuple[int, Any], ...]
    stop_reason: str
    elapsed_s: float

    @property
    def exhausted(self) -> bool:
        """True when the search finished on its own (budget not binding)."""
        return self.stop_reason == STOP_EXHAUSTED

    def describe(self) -> str:
        """One-line human summary (used by the CLI)."""
        return (
            f"{self.steps} steps, {self.evaluations} evaluations, "
            f"{self.accepted} accepted / {self.rejected} rejected, "
            f"stopped: {self.stop_reason}"
        )


@dataclass(frozen=True)
class SearchOutcome:
    """What :meth:`SearchRuntime.run` returns.

    Attributes
    ----------
    best:
        The incumbent -- the snapshot taken at the last strict
        improvement. Always a valid, complete solution (searches yield
        their starting state first).
    best_value:
        Its value.
    report:
        The structured :class:`SearchReport`.
    """

    best: Any
    best_value: Any
    report: SearchReport


class SearchRuntime:
    """Drive a step-generator search under a budget.

    Parameters
    ----------
    budget:
        The :class:`SearchBudget`; ``None`` means unlimited.
    clock:
        Zero-argument seconds callable; defaults to the monotonic wall
        clock. Inject a :class:`~repro.core.clock.StepClock` for
        deterministic deadline tests. The clock is only polled per
        step when a deadline is set (plus once at start and end for
        the report), so unbudgeted runs pay no timing overhead.
    cancel:
        Optional :class:`CancelToken` observed between steps.
    on_progress:
        Optional callback receiving a :class:`SearchProgress` every
        *progress_every* steps. Called after the step is accounted and
        before the cancellation check, so a callback may cancel the
        search it is observing (the fleet controller's preemption
        hook relies on this).
    progress_every:
        Step period of the callback (default 1 -- every step).
    """

    def __init__(
        self,
        budget: SearchBudget | None = None,
        clock: Clock | None = None,
        cancel: CancelToken | None = None,
        on_progress: Callable[[SearchProgress], None] | None = None,
        progress_every: int = 1,
    ):
        self.budget = budget if budget is not None else UNLIMITED
        self.clock = clock if clock is not None else MONOTONIC
        self.cancel = cancel
        self.on_progress = on_progress
        self.progress_every = SearchBudget.validate_count(
            "progress_every", progress_every
        )

    def run(self, search: Iterator[SearchStep]) -> SearchOutcome:
        """Consume *search* until exhaustion or the first binding limit.

        The incumbent is updated *before* any limit is checked, so a
        budget firing on step k still returns the best of the first k
        steps. On early exit the generator is closed (its ``finally``
        blocks run). Raises :class:`~repro.exceptions.AlgorithmError`
        if the search yields no step at all -- there would be nothing
        valid to return.
        """
        budget = self.budget
        clock = self.clock
        cancel = self.cancel
        on_progress = self.on_progress
        progress_every = self.progress_every
        max_steps = budget.max_steps
        max_evals = budget.max_evals
        start = clock()
        deadline = (
            start + budget.deadline_s
            if budget.deadline_s is not None
            else None
        )
        has_best = False
        best: Any = None
        best_value: Any = None
        curve: list[tuple[int, Any]] = []
        steps = evaluations = accepted = rejected = 0
        stop_reason = STOP_EXHAUSTED
        # nothing to observe between steps -> run the tight loop (the
        # checks below could never fire; skipping them keeps the driver
        # overhead negligible for unbudgeted searches)
        unconstrained = (
            max_steps is None
            and max_evals is None
            and deadline is None
            and cancel is None
            and on_progress is None
        )
        try:
            if unconstrained:
                for step in search:
                    steps += 1
                    evaluations += step.evals
                    accepted += step.accepted
                    rejected += step.rejected
                    if not has_best or step.value < best_value:
                        best_value = step.value
                        best = step.snapshot()
                        has_best = True
                        curve.append((steps, best_value))
            else:
                for step in search:
                    steps += 1
                    evaluations += step.evals
                    accepted += step.accepted
                    rejected += step.rejected
                    if not has_best or step.value < best_value:
                        best_value = step.value
                        best = step.snapshot()
                        has_best = True
                        curve.append((steps, best_value))
                    if on_progress is not None and steps % progress_every == 0:
                        on_progress(
                            SearchProgress(
                                steps=steps,
                                evaluations=evaluations,
                                best_value=best_value,
                                elapsed_s=clock() - start,
                            )
                        )
                    if cancel is not None and cancel.cancelled:
                        stop_reason = STOP_CANCELLED
                        break
                    if max_evals is not None and evaluations >= max_evals:
                        stop_reason = STOP_MAX_EVALS
                        break
                    if max_steps is not None and steps >= max_steps:
                        stop_reason = STOP_MAX_STEPS
                        break
                    if deadline is not None and clock() >= deadline:
                        stop_reason = STOP_DEADLINE
                        break
        finally:
            close = getattr(search, "close", None)
            if close is not None:
                close()
        if not has_best:
            raise AlgorithmError(
                "search yielded no steps: a search must yield its starting "
                "state before doing any work"
            )
        report = SearchReport(
            steps=steps,
            evaluations=evaluations,
            accepted=accepted,
            rejected=rejected,
            best_value=best_value,
            curve=tuple(curve),
            stop_reason=stop_reason,
            elapsed_s=clock() - start,
        )
        return SearchOutcome(best=best, best_value=best_value, report=report)
