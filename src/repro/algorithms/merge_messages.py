"""Algorithm *Fair Load -- Merge Messages' Ends* (section 3.3, appendix).

Extends FLTR2 with one extra test at deployment time: if assigning the
chosen operation would leave a *large* message crossing the network, the
planned assignment is cancelled and the operation is instead co-located
with the other end of that message, "alleviating the need to send the
message".

A message is *large* when its size reaches the top decile of the
workflow's message sizes -- the appendix passes
``MsgSize(m_{(M-1)*0.1})`` of the descending-sorted message list as the
``big_message_size`` threshold; the fraction is configurable. When both
an incoming and an outgoing message of the operation are large, the one
further above the threshold wins (the appendix's ``There_Is_Constraints``
tie rule).

As with the other tie-resolvers, unassigned neighbours still sit at
their random initial servers, so "the server of the sender" is always
defined -- faithful to the pseudo-code.
"""

from __future__ import annotations

from repro.algorithms.base import (
    DeploymentAlgorithm,
    ProblemContext,
    register_algorithm,
)
from repro.algorithms.fair_load import sorted_operations_by_cost
from repro.algorithms.graph_adapters import ServerBudgets, gain_of_operation_at_server
from repro.algorithms.tie_resolver import tied_prefix
from repro.core.mapping import Deployment
from repro.exceptions import AlgorithmError

__all__ = ["FairLoadMergeMessages", "big_message_threshold"]


def big_message_threshold(context: ProblemContext, big_fraction: float) -> float:
    """The size (weighted bits) above which a message counts as large.

    Sorts the workflow's (probability-weighted) message sizes descending
    and returns the size at rank ``floor((count - 1) * big_fraction)`` --
    i.e. roughly the top ``big_fraction`` of messages are large. Returns
    ``inf`` for workflows without messages so nothing triggers.
    """
    sizes = sorted(
        (
            context.weighted_message_bits(*message.pair)
            for message in context.workflow.messages
        ),
        reverse=True,
    )
    if not sizes:
        return float("inf")
    index = int((len(sizes) - 1) * big_fraction)
    return sizes[index]


@register_algorithm
class FairLoadMergeMessages(DeploymentAlgorithm):
    """FL-MergeMsgEnds: FLTR2 plus large-message co-location.

    Parameters
    ----------
    big_fraction:
        Fraction of the largest messages considered "large" (paper: 0.1).
    random_start:
        Initialise the mapping randomly (the paper's requirement, so a
        constraining neighbour always has a server). ``False`` starts
        empty; a constraint whose neighbour is still unplaced then falls
        back to the gain-selected server -- the DESIGN.md ablation.
    """

    name = "FL-MergeMsgEnds"

    def __init__(self, big_fraction: float = 0.1, random_start: bool = True):
        if not 0.0 <= big_fraction <= 1.0:
            raise AlgorithmError("big_fraction must lie in [0, 1]")
        self.big_fraction = big_fraction
        self.random_start = random_start

    def _constraining_neighbor(
        self, context: ProblemContext, operation: str, threshold: float
    ) -> str | None:
        """The neighbour whose shared large message forces co-location.

        Generalises ``There_Is_Constraints``: the largest incoming
        message plays the pseudo-code's ``left_message`` role, the
        largest outgoing one the ``right_message`` role; whichever
        exceeds the threshold by more decides. ``None`` when neither is
        large.
        """
        workflow = context.workflow
        best_in: tuple[float, str] | None = None
        for predecessor in workflow.predecessors(operation):
            size = context.weighted_message_bits(predecessor, operation)
            if best_in is None or size > best_in[0]:
                best_in = (size, predecessor)
        best_out: tuple[float, str] | None = None
        for successor in workflow.successors(operation):
            size = context.weighted_message_bits(operation, successor)
            if best_out is None or size > best_out[0]:
                best_out = (size, successor)

        in_large = best_in is not None and best_in[0] >= threshold
        out_large = best_out is not None and best_out[0] >= threshold
        if in_large and out_large:
            # the message "furthest from the threshold value" wins; the
            # appendix breaks the exact tie toward the left (incoming) end
            return best_in[1] if best_in[0] >= best_out[0] else best_out[1]
        if in_large:
            return best_in[1]
        if out_large:
            return best_out[1]
        return None

    def _deploy(self, context: ProblemContext) -> Deployment:
        budgets = ServerBudgets(context)
        if self.random_start:
            mapping = Deployment.random(
                context.workflow, context.network, context.rng
            )
        else:
            mapping = Deployment()
        pending = sorted_operations_by_cost(context)
        threshold = big_message_threshold(context, self.big_fraction)
        while pending:
            ordered_servers = budgets.sorted_servers()
            tied_servers = tied_prefix(ordered_servers, budgets.remaining)
            candidates = tied_prefix(pending, context.weighted_cycles)
            best_operation = candidates[0]
            best_server = tied_servers[0]
            best_gain = gain_of_operation_at_server(
                context, best_operation, best_server, mapping
            )
            for operation in candidates:
                for server in tied_servers:
                    if operation == best_operation and server == best_server:
                        continue
                    gain = gain_of_operation_at_server(
                        context, operation, server, mapping
                    )
                    if gain > best_gain:
                        best_gain = gain
                        best_operation = operation
                        best_server = server

            neighbor = self._constraining_neighbor(
                context, best_operation, threshold
            )
            if neighbor is not None and mapping.get(neighbor) is not None:
                target_server = mapping.server_of(neighbor)
            else:
                target_server = best_server
            mapping.assign(best_operation, target_server)
            budgets.charge(target_server, context.weighted_cycles(best_operation))
            pending.remove(best_operation)
        return mapping
