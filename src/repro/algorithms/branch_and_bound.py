"""Exact deployment by branch and bound (an extension beyond §3.1).

The paper's exhaustive algorithm enumerates all ``N**M`` mappings; this
solver finds the same optimum while pruning, extending the range of
instances where the true optimum is computable (used by the optimality-
gap benchmarks).

Search: operations are assigned in descending (weighted) cycle order;
each node of the search tree branches over the servers. A node is pruned
when an optimistic *lower bound* on the scalar objective already meets
the incumbent:

* **execution-time bound** -- the cost model's forward pass computed on
  the partial mapping with every unassigned operation optimistically
  placed on the fastest server and every message with an unassigned
  endpoint transferred for free;
* **fairness bound** -- a continuous water-filling relaxation: the
  remaining (weighted) cycles are spread fractionally over the least-
  loaded servers to minimise the deviation statistic; no integral
  completion can be fairer.

Both bounds are exact at the leaves, so the incumbent at exhaustion is
the global optimum (asserted against :class:`Exhaustive` in the test
suite). The incumbent is seeded with HeavyOps-LargeMsgs so pruning bites
immediately.

Every explored node is one :class:`~repro.algorithms.runtime.SearchStep`
on the shared runtime, which turns the exact solver into an *anytime*
one: under a deadline or evaluation budget it returns the best
incumbent found so far (optimal only at exhaustion -- check
``report.stop_reason``), and a cancel token aborts cleanly. The
``node_limit`` hard stop is unchanged: exceeding it is still an error,
whereas a budget is a graceful stop.
"""

from __future__ import annotations

from typing import Iterator

from repro.algorithms.base import (
    DeploymentAlgorithm,
    ProblemContext,
    register_algorithm,
)
from repro.algorithms.fair_load import sorted_operations_by_cost
from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs
from repro.algorithms.runtime import SearchBudget, SearchStep
from repro.core.incremental import TableScorer
from repro.core.mapping import Deployment
from repro.core.workflow import NodeKind
from repro.exceptions import SearchSpaceTooLargeError

__all__ = ["BranchAndBound"]

#: Safety valve: give up after this many search-tree nodes.
DEFAULT_NODE_LIMIT = 2_000_000


@register_algorithm
class BranchAndBound(DeploymentAlgorithm):
    """Optimal deployment with bound-based pruning.

    Parameters
    ----------
    node_limit:
        Maximum number of search-tree nodes before raising
        :class:`~repro.exceptions.SearchSpaceTooLargeError`. The explored
        count of the last run is exposed as :attr:`nodes_explored`.
    """

    name = "BranchAndBound"

    def __init__(self, node_limit: int = DEFAULT_NODE_LIMIT):
        # same contract as Exhaustive: a bad argument is AlgorithmError,
        # SearchSpaceTooLargeError is reserved for the search outcome
        self.node_limit = SearchBudget.validate_count(
            "node_limit", node_limit
        )
        self.nodes_explored = 0

    # ------------------------------------------------------------------
    # bounds
    # ------------------------------------------------------------------
    def _execution_lower_bound(
        self,
        context: ProblemContext,
        assignment: dict[str, str],
        order: tuple[str, ...],
        fastest_hz: float,
    ) -> float:
        """Optimistic ``Texecute`` of any completion of *assignment*.

        Mirrors :meth:`CostModel.execution_time`'s forward pass, but an
        unassigned operation runs on the fastest server and a message
        with an unassigned endpoint costs nothing. Both relaxations only
        lower the result, so the bound is sound; with a full assignment
        it equals the true execution time.
        """
        workflow = context.workflow
        cost_model = context.cost_model
        router = cost_model.router
        finish: dict[str, float] = {}
        for name in order:
            operation = workflow.operation(name)
            incoming = workflow.incoming(name)
            if not incoming:
                ready = 0.0
            else:
                arrivals = []
                for message in incoming:
                    source_server = assignment.get(message.source)
                    target_server = assignment.get(name)
                    if source_server is None or target_server is None:
                        delay = 0.0
                    else:
                        delay = router.transmission_time(
                            source_server, target_server, message.size_bits
                        )
                    arrivals.append(finish[message.source] + delay)
                if operation.kind is NodeKind.XOR_JOIN:
                    weights = [
                        cost_model.message_probability(m) for m in incoming
                    ]
                    total = sum(weights)
                    if total <= 0:
                        ready = max(arrivals)
                    else:
                        ready = (
                            sum(w * a for w, a in zip(weights, arrivals))
                            / total
                        )
                elif operation.kind is NodeKind.OR_JOIN:
                    ready = min(arrivals)
                else:
                    ready = max(arrivals)
            server = assignment.get(name)
            power = (
                context.network.server(server).power_hz
                if server is not None
                else fastest_hz
            )
            finish[name] = ready + operation.cycles / power
        return max(finish[name] for name in workflow.exits)

    def _penalty_lower_bound(
        self,
        context: ProblemContext,
        assigned_cycles: dict[str, float],
        remaining_cycles: float,
    ) -> float:
        """Water-filling relaxation of the fairness penalty.

        The remaining work is distributed *fractionally* over the least-
        loaded servers, levelling them to a common time ``t``; integral
        completions can only be less balanced.
        """
        network = context.network
        powers_by_load = sorted(
            (
                (assigned_cycles[name] / network.server(name).power_hz,
                 network.server(name).power_hz)
                for name in network.server_names
            ),
            key=lambda pair: pair[0],
        )
        budget = remaining_cycles
        # raise the lowest loads to a common level while budget lasts
        levelled = [load for load, _ in powers_by_load]
        powers = [power for _, power in powers_by_load]
        i = 0
        n = len(levelled)
        while budget > 0 and i < n - 1:
            current = levelled[i]
            nxt = levelled[i + 1]
            capacity = sum(powers[: i + 1])
            needed = (nxt - current) * capacity
            if needed >= budget:
                break
            budget -= needed
            for j in range(i + 1):
                levelled[j] = nxt
            i += 1
        if budget > 0:
            capacity = sum(powers[: i + 1])
            bump = budget / capacity
            for j in range(i + 1):
                levelled[j] += bump
        # the deviation statistic only reads the values; keys are dummies
        return context.cost_model._penalty_from_loads(
            {str(j): value for j, value in enumerate(levelled)}
        )

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _deploy(self, context: ProblemContext) -> Deployment:
        return context.search(self._steps(context)).best

    def _steps(self, context: ProblemContext):
        workflow = context.workflow
        network = context.network
        cost_model = context.cost_model
        order = sorted_operations_by_cost(context)
        topo = workflow.topological_order()
        fastest_hz = max(server.power_hz for server in network)
        servers = list(network.server_names)

        # leaf evaluation goes through the table-based scorer: one leaf
        # costs a forward pass, not two validation sweeps plus a
        # throwaway Deployment
        scorer = TableScorer(cost_model)

        incumbent = HeavyOpsLargeMsgs().deploy(
            workflow, network, cost_model=cost_model, rng=context.rng
        )
        best_mapping = incumbent.as_dict()
        best_value = scorer.score_mapping(best_mapping)

        assignment: dict[str, str] = {}
        assigned_cycles = {name: 0.0 for name in servers}
        total_cycles = context.total_weighted_cycles()
        self.nodes_explored = 0

        # called by the runtime only at strict improvements, which happen
        # synchronously at the yield that carried the improved value --
        # best_mapping is exactly the mapping that scored best_value then
        def snapshot() -> Deployment:
            return Deployment(dict(best_mapping))

        yield SearchStep(best_value, snapshot, evals=1)

        # the shared objective combine (migration of still-unassigned
        # operations is unknown, and >= 0, so the two-term value stays a
        # valid lower bound for transition-aware objectives too)
        compiled = cost_model.compiled

        def bound(remaining: float) -> float:
            execution = self._execution_lower_bound(
                context, assignment, topo, fastest_hz
            )
            penalty = self._penalty_lower_bound(
                context, assigned_cycles, remaining
            )
            return compiled.objective_value(execution, penalty)

        def recurse(index: int, remaining: float) -> Iterator[SearchStep]:
            nonlocal best_value, best_mapping
            self.nodes_explored += 1
            if self.nodes_explored > self.node_limit:
                raise SearchSpaceTooLargeError(
                    f"branch-and-bound exceeded {self.node_limit} nodes; "
                    f"raise node_limit or use a heuristic"
                )
            if index == len(order):
                value = scorer.score_mapping(assignment)
                if value < best_value:
                    best_value = value
                    best_mapping = dict(assignment)
                    yield SearchStep(value, snapshot, evals=1, accepted=1)
                else:
                    yield SearchStep(
                        best_value, snapshot, evals=1, rejected=1
                    )
                return
            yield SearchStep(best_value, snapshot, evals=1)
            operation = order[index]
            cycles = context.weighted_cycles(operation)
            for server in servers:
                assignment[operation] = server
                assigned_cycles[server] += cycles
                if bound(remaining - cycles) < best_value - 1e-15:
                    yield from recurse(index + 1, remaining - cycles)
                assigned_cycles[server] -= cycles
                del assignment[operation]

        yield from recurse(0, total_cycles)
