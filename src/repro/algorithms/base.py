"""Algorithm base class, problem context and registry.

Every deployment algorithm implements the same contract: given a workflow
``W(O, E)`` and a server network ``N(S, L)``, produce a complete
:class:`~repro.core.mapping.Deployment`. The :class:`DeploymentAlgorithm`
base class normalises the entry point (:meth:`DeploymentAlgorithm.deploy`),
validates the inputs once, builds the shared :class:`ProblemContext` and
leaves only :meth:`DeploymentAlgorithm._deploy` for subclasses.

A module-level registry maps algorithm names (the labels used in the
paper's figures) to classes so that the experiment harness and benchmarks
can select algorithms by name.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro.algorithms.runtime import (
    CancelToken,
    SearchBudget,
    SearchOutcome,
    SearchProgress,
    SearchReport,
    SearchRuntime,
    SearchStep,
)
from repro.core.clock import Clock
from repro.core.compiled import CompiledInstance
from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.core.migration import TransitionObjective
from repro.core.rng import coerce_rng
from repro.core.workflow import Workflow
from repro.exceptions import AlgorithmError
from repro.network.topology import ServerNetwork

__all__ = [
    "ProblemContext",
    "DeploymentAlgorithm",
    "register_algorithm",
    "algorithm_registry",
    "get_algorithm",
]

_REGISTRY: dict[str, type["DeploymentAlgorithm"]] = {}


def register_algorithm(cls: type["DeploymentAlgorithm"]) -> type["DeploymentAlgorithm"]:
    """Class decorator adding *cls* to the global registry by its name."""
    name = cls.name
    if not name or name == DeploymentAlgorithm.name:
        raise AlgorithmError(f"algorithm class {cls.__name__} must set a name")
    if name in _REGISTRY:
        raise AlgorithmError(f"algorithm name {name!r} registered twice")
    _REGISTRY[name] = cls
    return cls


def algorithm_registry() -> dict[str, type["DeploymentAlgorithm"]]:
    """A copy of the name -> class registry."""
    return dict(_REGISTRY)


def get_algorithm(name: str) -> type["DeploymentAlgorithm"]:
    """Look an algorithm class up by its registered name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise AlgorithmError(
            f"unknown algorithm {name!r}; known algorithms: {known}"
        ) from None


@dataclass
class ProblemContext:
    """Everything an algorithm needs about one problem instance.

    Built once per :meth:`DeploymentAlgorithm.deploy` call, it bundles the
    inputs with the shared cost model, the RNG, and the section 3.4
    probability weights (all 1.0 for workflows without XOR splits or when
    the algorithm opts out of weighting).

    Attributes
    ----------
    op_weights:
        Execution probability per operation name.
    msg_weights:
        Unconditional send probability per ``(source, target)`` pair.
    compiled:
        The cost model's :class:`~repro.core.compiled.CompiledInstance`
        -- the integer-indexed problem IR shared by every consumer, so
        algorithm inner loops can price candidates without name-dict
        lookups.
    budget:
        The :class:`~repro.algorithms.runtime.SearchBudget` governing
        this deploy call (unlimited by default).
    cancel:
        Optional :class:`~repro.algorithms.runtime.CancelToken` the
        caller can trigger to preempt the search.
    clock, on_progress:
        The runtime's clock and periodic progress callback.
    report:
        The :class:`~repro.algorithms.runtime.SearchReport` of the last
        :meth:`search` run (``None`` for non-iterative algorithms).
    objective:
        The resolved :class:`~repro.core.migration.TransitionObjective`
        the cost model prices with. Algorithms that evaluate through
        the cost model / compiled instance are transition-aware
        automatically; this field is informational.
    """

    workflow: Workflow
    network: ServerNetwork
    cost_model: CostModel
    rng: random.Random
    op_weights: Mapping[str, float] = field(default_factory=dict)
    msg_weights: Mapping[tuple[str, str], float] = field(default_factory=dict)
    compiled: CompiledInstance | None = None
    budget: SearchBudget = field(default_factory=SearchBudget)
    cancel: CancelToken | None = None
    clock: Clock | None = None
    on_progress: Callable[[SearchProgress], None] | None = None
    report: SearchReport | None = None
    objective: TransitionObjective | None = None

    def search(self, steps: Iterator[SearchStep]) -> SearchOutcome:
        """Run a step generator under this context's budget and plumbing.

        The one entry point search algorithms use from ``_deploy``:
        builds a :class:`~repro.algorithms.runtime.SearchRuntime` with
        the context's budget, clock, cancel token and progress
        callback, drives *steps* under it, and records the resulting
        report on the context (surfaced by
        :meth:`DeploymentAlgorithm.deploy_with_report`).
        """
        runtime = SearchRuntime(
            budget=self.budget,
            clock=self.clock,
            cancel=self.cancel,
            on_progress=self.on_progress,
        )
        outcome = runtime.run(steps)
        self.report = outcome.report
        return outcome

    def weighted_cycles(self, operation_name: str) -> float:
        """``C(op)`` scaled by the operation's execution probability."""
        return (
            self.workflow.operation(operation_name).cycles
            * self.op_weights[operation_name]
        )

    def weighted_message_bits(self, source: str, target: str) -> float:
        """``MsgSize`` scaled by the message's send probability."""
        return (
            self.workflow.message(source, target).size_bits
            * self.msg_weights[(source, target)]
        )

    def total_weighted_cycles(self) -> float:
        """Weighted ``Sum_Cycles`` over all operations."""
        return sum(
            op.cycles * self.op_weights[op.name] for op in self.workflow
        )

    def initial_ideal_cycles(self) -> dict[str, float]:
        """``Ideal_Cycles(s)`` for every server (weighted ``Sum_Cycles``)."""
        total = self.total_weighted_cycles()
        capacity = self.network.total_power_hz
        return {
            server.name: total * server.power_hz / capacity
            for server in self.network
        }


class DeploymentAlgorithm(ABC):
    """Base class for all deployment algorithms.

    Subclasses set :attr:`name` (the registry key, matching the paper's
    labels) and implement :meth:`_deploy`. Instances are stateless with
    respect to problem data: configuration lives in ``__init__``
    parameters, and every :meth:`deploy` call is independent.

    Class attributes
    ----------------
    name:
        Registry key and report label.
    uses_probability_weights:
        When True (the default) and the workflow contains ``XOR`` splits,
        cycles and message sizes seen through the
        :class:`ProblemContext` are probability-weighted (section 3.4).
        Fair Load sets this to False -- the paper keeps it "exactly the
        same" on random graphs.
    """

    name: str = "abstract"
    uses_probability_weights: bool = True

    def deploy(
        self,
        workflow: Workflow,
        network: ServerNetwork,
        cost_model: CostModel | None = None,
        rng: random.Random | int | None = None,
        budget: SearchBudget | None = None,
        cancel: CancelToken | None = None,
        clock: Clock | None = None,
        on_progress: Callable[[SearchProgress], None] | None = None,
        objective: TransitionObjective | None = None,
    ) -> Deployment:
        """Compute a complete mapping of *workflow* onto *network*.

        Parameters
        ----------
        workflow, network:
            The problem instance. The workflow must be non-empty and a
            DAG; the network must be non-empty and connected.
        cost_model:
            Optional shared :class:`~repro.core.cost.CostModel`; built
            with default weights when omitted. Algorithms use it for
            evaluation-driven choices (e.g. best-of-two-directions) and
            experiments should pass the same model they score with.
        rng:
            Seed or ``random.Random`` used for the random initial mapping
            required by the tie-resolver family and for any stochastic
            tie-breaks. ``None`` explicitly means the library-wide
            deterministic default, ``Random(0)`` -- see
            :func:`repro.core.rng.coerce_rng`.
        budget:
            Optional :class:`~repro.algorithms.runtime.SearchBudget`.
            Iterative algorithms stop at whichever limit fires first
            and return their best-so-far incumbent -- always a valid,
            complete deployment. With the default unlimited budget,
            seeded results are byte-identical to the pre-runtime
            implementations. Non-iterative algorithms (the greedy
            suite) ignore the budget.
        cancel:
            Optional :class:`~repro.algorithms.runtime.CancelToken` to
            preempt the search cooperatively.
        clock:
            Clock used for ``budget.deadline_s`` (monotonic wall clock
            by default; inject :class:`~repro.core.clock.StepClock`
            for deterministic tests).
        on_progress:
            Periodic per-step progress callback (see
            :class:`~repro.algorithms.runtime.SearchRuntime`).
        objective:
            Optional :class:`~repro.core.migration.TransitionObjective`.
            When given and *cost_model* is omitted, the cost model is
            built from it, so the whole search (anytime curves and
            budgets included) prices candidates transition-aware. When
            both are given they must agree -- passing a cost model
            compiled from a different objective raises
            :class:`~repro.exceptions.AlgorithmError`.
        """
        deployment, _ = self.deploy_with_report(
            workflow,
            network,
            cost_model=cost_model,
            rng=rng,
            budget=budget,
            cancel=cancel,
            clock=clock,
            on_progress=on_progress,
            objective=objective,
        )
        return deployment

    def deploy_with_report(
        self,
        workflow: Workflow,
        network: ServerNetwork,
        cost_model: CostModel | None = None,
        rng: random.Random | int | None = None,
        budget: SearchBudget | None = None,
        cancel: CancelToken | None = None,
        clock: Clock | None = None,
        on_progress: Callable[[SearchProgress], None] | None = None,
        objective: TransitionObjective | None = None,
    ) -> tuple[Deployment, SearchReport | None]:
        """:meth:`deploy`, plus the search report.

        Returns ``(deployment, report)`` where *report* is the
        :class:`~repro.algorithms.runtime.SearchReport` of the
        algorithm's top-level search -- evaluation counts, the anytime
        best-so-far curve and the stop reason -- or ``None`` for
        non-iterative algorithms.
        """
        if len(workflow) == 0:
            raise AlgorithmError("workflow has no operations")
        if len(network) == 0:
            raise AlgorithmError("network has no servers")
        network.require_connected()
        if objective is not None:
            if cost_model is None:
                cost_model = CostModel(workflow, network, objective=objective)
            elif cost_model.compiled.objective != objective:
                raise AlgorithmError(
                    "deploy(objective=...) conflicts with the provided "
                    "cost_model; build the cost model from the same "
                    "TransitionObjective (or pass only one of the two)"
                )
        if cost_model is None:
            cost_model = CostModel(workflow, network)
        rng = coerce_rng(rng)

        if self.uses_probability_weights and cost_model.use_probabilities:
            op_weights = {
                name: cost_model.node_probability(name)
                for name in workflow.operation_names
            }
            msg_weights = {
                message.pair: cost_model.message_probability(message)
                for message in workflow.messages
            }
        else:
            op_weights = {name: 1.0 for name in workflow.operation_names}
            msg_weights = {message.pair: 1.0 for message in workflow.messages}

        context = ProblemContext(
            workflow=workflow,
            network=network,
            cost_model=cost_model,
            rng=rng,
            op_weights=op_weights,
            msg_weights=msg_weights,
            compiled=cost_model.compiled,
            budget=budget if budget is not None else SearchBudget(),
            cancel=cancel,
            clock=clock,
            on_progress=on_progress,
            objective=cost_model.compiled.objective,
        )
        deployment = self._deploy(context)
        deployment.validate(workflow, network)
        return deployment, context.report

    @abstractmethod
    def _deploy(self, context: ProblemContext) -> Deployment:
        """Algorithm body; must return a complete deployment."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
