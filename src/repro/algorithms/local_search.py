"""Local-search refinement (an extension beyond the paper's greedies).

Section 6 leaves deeper optimisation as future work; these two algorithms
fill that gap and double as upper baselines in the ablation benchmarks.
Both explore the *move* neighbourhood -- relocate one operation to another
server -- over the cost model's scalar objective:

* :class:`HillClimbing` -- steepest-descent until no move improves (or an
  iteration cap is hit). Deterministic given its starting mapping.
* :class:`SimulatedAnnealing` -- classic Metropolis acceptance with a
  geometric cooling schedule; escapes the local optima hill climbing gets
  stuck in, at the price of more evaluations.

Candidate moves are priced through the
:class:`~repro.core.incremental.MoveEvaluator`, so one proposal costs a
dirty-region forward pass instead of a full ``CostModel.objective()``;
``use_incremental=False`` selects the original full-evaluation path
(kept as the reference implementation -- the regression tests assert
both return byte-identical deployments for a fixed seed, and the
benchmarks measure the speedup between them).

Both are expressed as step generators driven by the shared
:class:`~repro.algorithms.runtime.SearchRuntime`: one hill-climbing
round or one annealing proposal is one step, incumbent tracking lives
in the runtime, and any :class:`~repro.algorithms.runtime.SearchBudget`
(deadline, evaluation cap) or cancel token stops the search at a step
boundary with a valid best-so-far deployment.

Each accepts any registered algorithm (or explicit deployment) as its
starting point, so they compose naturally: ``HillClimbing(seed_algorithm=
HeavyOpsLargeMsgs())`` polishes the paper's winner.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.algorithms.base import (
    DeploymentAlgorithm,
    ProblemContext,
    register_algorithm,
)
from repro.algorithms.runtime import SearchBudget, SearchStep
from repro.core.compiled import batch_evaluator_or_none
from repro.core.incremental import MoveEvaluator
from repro.core.mapping import Deployment
from repro.exceptions import AlgorithmError

__all__ = ["HillClimbing", "SimulatedAnnealing"]


class _RefinementBase(DeploymentAlgorithm):
    """Shared starting-point handling for the refinement algorithms."""

    def __init__(
        self,
        seed_algorithm: DeploymentAlgorithm | None = None,
        use_incremental: bool = True,
    ):
        self.seed_algorithm = seed_algorithm
        self.use_incremental = use_incremental

    def _starting_mapping(self, context: ProblemContext) -> Deployment:
        if self.seed_algorithm is not None:
            return self.seed_algorithm.deploy(
                context.workflow,
                context.network,
                cost_model=context.cost_model,
                rng=context.rng,
            )
        return Deployment.random(context.workflow, context.network, context.rng)


@register_algorithm
class HillClimbing(_RefinementBase):
    """Steepest-descent over single-operation moves.

    Parameters
    ----------
    seed_algorithm:
        Algorithm producing the starting mapping (random when omitted).
    max_iterations:
        Upper bound on improvement rounds; each round scans the full
        ``M x (N - 1)`` move neighbourhood. External budgets compose:
        a ``SearchBudget`` passed to ``deploy`` can stop the climb
        earlier still.
    use_incremental:
        Price moves with the incremental
        :class:`~repro.core.incremental.MoveEvaluator` (default) or fall
        back to one full ``CostModel.objective()`` per candidate.
        Ignored when ``sweep="batch"`` takes effect.
    sweep:
        ``"scalar"`` (default) scans the neighbourhood one proposal at
        a time through the paths above. ``"batch"`` scores the whole
        ``M x S`` single-move grid per iteration in **one**
        :class:`~repro.core.batch.BatchEvaluator` kernel call --
        best-improvement with the identical scan order and floats, so
        seeded results are byte-identical to the scalar sweep -- and
        falls back to the incremental
        :class:`~repro.core.incremental.MoveEvaluator` when NumPy is
        unavailable.
    """

    name = "HillClimbing"

    def __init__(
        self,
        seed_algorithm: DeploymentAlgorithm | None = None,
        max_iterations: int = 1_000,
        use_incremental: bool = True,
        sweep: str = "scalar",
    ):
        super().__init__(seed_algorithm, use_incremental)
        self.max_iterations = SearchBudget.validate_count(
            "max_iterations", max_iterations
        )
        if sweep not in ("scalar", "batch"):
            raise AlgorithmError(
                f"sweep must be 'scalar' or 'batch', got {sweep!r}"
            )
        self.sweep = sweep

    def _deploy(self, context: ProblemContext) -> Deployment:
        current = self._starting_mapping(context)
        batch = None
        if self.sweep == "batch":
            batch = batch_evaluator_or_none(context.compiled)
        if batch is not None:
            steps = self._steps_batch(context, current, batch)
        elif self.use_incremental:
            steps = self._steps_incremental(context, current)
        else:
            steps = self._steps_full(context, current)
        return context.search(steps).best

    def _steps_batch(
        self, context: ProblemContext, current: Deployment, batch
    ) -> Iterator[SearchStep]:
        compiled = context.compiled
        num_servers = compiled.num_servers
        servers = compiled.server_vector(current)
        current_value = float(batch.evaluate([servers]).objective[0])
        yield SearchStep(current_value, current.copy, evals=1)
        # moves per sweep, excluding the no-op rows of the grid (they
        # score the incumbent and never win the strict-improvement test)
        evals = compiled.num_ops * (num_servers - 1)
        for _ in range(self.max_iterations):
            scores = batch.evaluate(batch.neighborhood(servers))
            index = scores.argbest()
            value = float(scores.objective[index])
            if not value < current_value:
                yield SearchStep(
                    current_value, current.copy, evals=evals, rejected=evals
                )
                break
            operation, server = divmod(index, num_servers)
            servers[operation] = server
            current.assign(
                compiled.op_names[operation], compiled.server_names[server]
            )
            current_value = value
            yield SearchStep(
                value,
                current.copy,
                evals=evals,
                accepted=1,
                rejected=evals - 1,
            )

    def _steps_incremental(
        self, context: ProblemContext, current: Deployment
    ) -> Iterator[SearchStep]:
        evaluator = MoveEvaluator(context.cost_model, current)
        yield SearchStep(evaluator.objective, current.copy, evals=1)
        for _ in range(self.max_iterations):
            best_move: tuple[str, str] | None = None
            best_value = evaluator.objective
            evals = 0
            for operation in context.workflow.operation_names:
                original = current.server_of(operation)
                for server in context.network.server_names:
                    if server == original:
                        continue
                    value = evaluator.propose_value(operation, server)
                    evals += 1
                    if value < best_value:
                        best_value = value
                        best_move = (operation, server)
            if best_move is None:
                yield SearchStep(
                    best_value, current.copy, evals=evals, rejected=evals
                )
                break
            evaluator.apply(*best_move)
            yield SearchStep(
                best_value,
                current.copy,
                evals=evals,
                accepted=1,
                rejected=evals - 1,
            )

    def _steps_full(
        self, context: ProblemContext, current: Deployment
    ) -> Iterator[SearchStep]:
        cost_model = context.cost_model
        current_value = cost_model.objective(current)
        yield SearchStep(current_value, current.copy, evals=1)
        for _ in range(self.max_iterations):
            best_move: tuple[str, str] | None = None
            best_value = current_value
            evals = 0
            for operation in context.workflow.operation_names:
                original = current.server_of(operation)
                for server in context.network.server_names:
                    if server == original:
                        continue
                    current.assign(operation, server)
                    value = cost_model.objective(current)
                    evals += 1
                    if value < best_value:
                        best_value = value
                        best_move = (operation, server)
                current.assign(operation, original)
            if best_move is None:
                yield SearchStep(
                    best_value, current.copy, evals=evals, rejected=evals
                )
                break
            current.assign(*best_move)
            current_value = best_value
            yield SearchStep(
                best_value,
                current.copy,
                evals=evals,
                accepted=1,
                rejected=evals - 1,
            )


@register_algorithm
class SimulatedAnnealing(_RefinementBase):
    """Metropolis search over single-operation moves.

    Parameters
    ----------
    seed_algorithm:
        Algorithm producing the starting mapping (random when omitted).
    initial_temperature:
        Starting temperature *relative to the starting objective value*
        (an absolute temperature would be meaningless across instances
        whose objectives differ by orders of magnitude).
    cooling:
        Geometric cooling factor per step, in ``(0, 1)``.
    steps:
        Number of proposed moves (the schedule length; an external
        ``SearchBudget`` can cut it short).
    use_incremental:
        Price moves with the incremental
        :class:`~repro.core.incremental.MoveEvaluator` (default) or fall
        back to one full ``CostModel.objective()`` per proposal.
    """

    name = "SimulatedAnnealing"

    def __init__(
        self,
        seed_algorithm: DeploymentAlgorithm | None = None,
        initial_temperature: float = 0.5,
        cooling: float = 0.995,
        steps: int = 2_000,
        use_incremental: bool = True,
    ):
        super().__init__(seed_algorithm, use_incremental)
        if initial_temperature <= 0:
            raise AlgorithmError("initial_temperature must be > 0")
        if not 0.0 < cooling < 1.0:
            raise AlgorithmError("cooling must lie strictly in (0, 1)")
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.steps = SearchBudget.validate_count("steps", steps)

    def _deploy(self, context: ProblemContext) -> Deployment:
        current = self._starting_mapping(context)
        if self.use_incremental:
            steps = self._steps_incremental(context, current)
        else:
            steps = self._steps_full(context, current)
        return context.search(steps).best

    def _steps_incremental(
        self, context: ProblemContext, current: Deployment
    ) -> Iterator[SearchStep]:
        rng = context.rng
        operations = context.workflow.operation_names
        servers = context.network.server_names
        evaluator = MoveEvaluator(context.cost_model, current)
        # hot loop: thousands of cheap steps, so the SearchStep is built
        # with positional (value, snapshot, evals, accepted, rejected),
        # the snapshot supplier is hoisted out of the loop and the
        # current objective is tracked in a local instead of re-reading
        # the evaluator property per rejected proposal
        snapshot = current.copy
        cooling = self.cooling
        current_value = evaluator.objective
        yield SearchStep(current_value, snapshot, 1)
        if len(servers) == 1:
            return  # no move neighbourhood exists
        temperature = self.initial_temperature * max(current_value, 1e-12)
        for _ in range(self.steps):
            operation = rng.choice(operations)
            original = current.server_of(operation)
            alternatives = [s for s in servers if s != original]
            server = rng.choice(alternatives)
            outcome = evaluator.propose(operation, server)
            delta = outcome.delta
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                evaluator.commit()
                current_value = outcome.objective
                yield SearchStep(current_value, snapshot, 1, 1, 0)
            else:
                yield SearchStep(current_value, snapshot, 1, 0, 1)
            temperature *= cooling

    def _steps_full(
        self, context: ProblemContext, current: Deployment
    ) -> Iterator[SearchStep]:
        cost_model = context.cost_model
        rng = context.rng
        operations = context.workflow.operation_names
        servers = context.network.server_names
        current_value = cost_model.objective(current)
        snapshot = current.copy
        yield SearchStep(current_value, snapshot, 1)
        if len(servers) == 1:
            return  # no move neighbourhood exists
        temperature = self.initial_temperature * max(current_value, 1e-12)
        for _ in range(self.steps):
            operation = rng.choice(operations)
            original = current.server_of(operation)
            alternatives = [s for s in servers if s != original]
            server = rng.choice(alternatives)
            current.assign(operation, server)
            value = cost_model.objective(current)
            delta = value - current_value
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                current_value = value
                yield SearchStep(value, snapshot, 1, 1, 0)
            else:
                current.assign(operation, original)
                yield SearchStep(current_value, snapshot, 1, 0, 1)
            temperature *= self.cooling
