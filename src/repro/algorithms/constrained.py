"""Constraint-aware deployment (the §6 "user-defined constraints" study).

Section 2.2 admits a constraint set ``C``; section 6 leaves "a detailed
study of the proposed algorithms whenever user-defined constraints are
given" as future work. :class:`ConstraintAwareSearch` provides that
study's missing piece: a deployment algorithm that *honours* the
constraints instead of filtering after the fact.

Strategy: seed with any base algorithm, then steepest-descent over
single-operation moves under a lexicographic objective --

1. minimise the summed constraint excess (seconds over the limits);
2. among equally-feasible mappings, minimise the scalar objective.

The result is admissible whenever the search finds any admissible
mapping; when the constraints are unsatisfiable it returns the mapping
with the smallest remaining excess (callers can check with
``constraints.satisfied(...)``).

The refinement loop runs as a step generator on the shared
:class:`~repro.algorithms.runtime.SearchRuntime`; the yielded values
are the lexicographic ``(excess, objective)`` pairs, so budgets and
cancellation return the *most feasible* mapping seen so far.
"""

from __future__ import annotations

from typing import Iterator

from repro.algorithms.base import (
    DeploymentAlgorithm,
    ProblemContext,
    register_algorithm,
)
from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs
from repro.algorithms.runtime import SearchBudget, SearchStep
from repro.core.constraints import ConstraintSet
from repro.core.mapping import Deployment

__all__ = ["ConstraintAwareSearch"]


@register_algorithm
class ConstraintAwareSearch(DeploymentAlgorithm):
    """Local search under a lexicographic (feasibility, objective) order.

    Parameters
    ----------
    constraints:
        The user constraint set ``C`` to honour.
    seed_algorithm:
        Produces the starting mapping (HeavyOps-LargeMsgs by default --
        start from the paper's best general-purpose heuristic).
    max_iterations:
        Improvement rounds; each scans the full move neighbourhood.
    """

    name = "ConstraintAware"

    def __init__(
        self,
        constraints: ConstraintSet | None = None,
        seed_algorithm: DeploymentAlgorithm | None = None,
        max_iterations: int = 200,
    ):
        self.max_iterations = SearchBudget.validate_count(
            "max_iterations", max_iterations
        )
        self.constraints = constraints or ConstraintSet()
        self.seed_algorithm = seed_algorithm or HeavyOpsLargeMsgs()

    def _score(self, context: ProblemContext, deployment: Deployment):
        cost = context.cost_model.evaluate(deployment)
        return (self.constraints.total_excess(cost), cost.objective)

    def _deploy(self, context: ProblemContext) -> Deployment:
        return context.search(self._steps(context)).best

    def _steps(self, context: ProblemContext) -> Iterator[SearchStep]:
        current = self.seed_algorithm.deploy(
            context.workflow,
            context.network,
            cost_model=context.cost_model,
            rng=context.rng,
        )
        current_score = self._score(context, current)
        operations = context.workflow.operation_names
        servers = context.network.server_names
        yield SearchStep(current_score, current.copy, evals=1)
        for _ in range(self.max_iterations):
            best_move: tuple[str, str] | None = None
            best_score = current_score
            evals = 0
            for operation in operations:
                original = current.server_of(operation)
                for server in servers:
                    if server == original:
                        continue
                    current.assign(operation, server)
                    score = self._score(context, current)
                    evals += 1
                    if score < best_score:
                        best_score = score
                        best_move = (operation, server)
                current.assign(operation, original)
            if best_move is None:
                yield SearchStep(
                    best_score, current.copy, evals=evals, rejected=evals
                )
                break
            current.assign(*best_move)
            current_score = best_score
            yield SearchStep(
                best_score,
                current.copy,
                evals=evals,
                accepted=1,
                rejected=evals - 1,
            )
