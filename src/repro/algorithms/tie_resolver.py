"""The tie-resolver extensions of Fair Load (section 3.3, Figs. 4-5).

*Fair Load -- Tie Resolver for Cycles* (FLTR) keeps Fair Load's basic
principle but, whenever several operations tie for the heaviest remaining
cost, picks the one whose deployment to the chosen server saves the most
communication (bytes kept off the bus), using the
``Gain_Of_Operation_At_Server`` function of Fig. 5.

*Fair Load -- Tie Resolver for Cycles and Servers* (FLTR2) also widens the
server side: when several servers tie for the largest remaining
``Ideal_Cycles`` budget, every (tied operation, tied server) combination
is scored and the best gain wins.

Both algorithms require the mapping to be *initialised randomly* -- the
paper notes that otherwise the first gain evaluations would see no
neighbours and return 0. Unassigned operations therefore sit at a random
server until their real assignment replaces it, and gains are computed
against this mixed mapping exactly as in the pseudo-code.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.algorithms.base import (
    DeploymentAlgorithm,
    ProblemContext,
    register_algorithm,
)
from repro.algorithms.fair_load import sorted_operations_by_cost
from repro.algorithms.graph_adapters import ServerBudgets, gain_of_operation_at_server
from repro.core.mapping import Deployment

__all__ = ["FairLoadTieResolver", "FairLoadTieResolver2", "tied_prefix"]

#: Relative tolerance when deciding that two costs/budgets "tie". The
#: paper compares exact integers (cycles); floating-point weighting makes
#: a small tolerance necessary.
TIE_RELATIVE_TOLERANCE = 1e-9


def tied_prefix(
    ordered: Sequence[str],
    key: Callable[[str], float],
    tolerance: float = TIE_RELATIVE_TOLERANCE,
) -> list[str]:
    """Leading run of *ordered* whose key ties the first element's key."""
    if not ordered:
        return []
    top = key(ordered[0])
    scale = max(abs(top), 1.0)
    return [
        name for name in ordered if abs(key(name) - top) <= tolerance * scale
    ]


@register_algorithm
class FairLoadTieResolver(DeploymentAlgorithm):
    """FLTR: Fair Load with gain-based resolution of operation ties.

    Parameters
    ----------
    random_start:
        Initialise the mapping randomly, as the paper requires ("or
        else, the first calls of function Gain_Of_Operation_At_Server
        would not return any gain at all"). ``False`` starts from an
        empty mapping instead -- gains then only see already-finalised
        neighbours -- which is the ablation DESIGN.md calls out.
    """

    name = "FL-TieResolver"

    def __init__(self, random_start: bool = True):
        self.random_start = random_start

    def _initial_mapping(self, context: ProblemContext) -> Deployment:
        if self.random_start:
            return Deployment.random(
                context.workflow, context.network, context.rng
            )
        return Deployment()

    def _deploy(self, context: ProblemContext) -> Deployment:
        budgets = ServerBudgets(context)
        mapping = self._initial_mapping(context)
        pending = sorted_operations_by_cost(context)
        while pending:
            server = budgets.neediest()
            candidates = tied_prefix(pending, context.weighted_cycles)
            best_operation = candidates[0]
            best_gain = gain_of_operation_at_server(
                context, best_operation, server, mapping
            )
            for operation in candidates[1:]:
                gain = gain_of_operation_at_server(
                    context, operation, server, mapping
                )
                if gain > best_gain:
                    best_gain = gain
                    best_operation = operation
            mapping.assign(best_operation, server)
            budgets.charge(server, context.weighted_cycles(best_operation))
            pending.remove(best_operation)
        return mapping


@register_algorithm
class FairLoadTieResolver2(FairLoadTieResolver):
    """FLTR2: gain-based resolution of both operation and server ties.

    Shares :class:`FairLoadTieResolver`'s ``random_start`` parameter.
    """

    name = "FL-TieResolver2"

    def _deploy(self, context: ProblemContext) -> Deployment:
        budgets = ServerBudgets(context)
        mapping = self._initial_mapping(context)
        pending = sorted_operations_by_cost(context)
        while pending:
            ordered_servers = budgets.sorted_servers()
            tied_servers = tied_prefix(ordered_servers, budgets.remaining)
            candidates = tied_prefix(pending, context.weighted_cycles)
            best_operation = candidates[0]
            best_server = tied_servers[0]
            best_gain = gain_of_operation_at_server(
                context, best_operation, best_server, mapping
            )
            for operation in candidates:
                for server in tied_servers:
                    if operation == best_operation and server == best_server:
                        continue
                    gain = gain_of_operation_at_server(
                        context, operation, server, mapping
                    )
                    if gain > best_gain:
                        best_gain = gain
                        best_operation = operation
                        best_server = server
            mapping.assign(best_operation, best_server)
            budgets.charge(best_server, context.weighted_cycles(best_operation))
            pending.remove(best_operation)
        return mapping
