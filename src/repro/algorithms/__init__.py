"""Deployment algorithms (section 3 and the appendix of the paper).

Baselines
    :class:`~repro.algorithms.exhaustive.Exhaustive` (section 3.1),
    :class:`~repro.algorithms.sampling.RandomMapping` and
    :class:`~repro.algorithms.sampling.SolutionSampler` (the 32 000-sample
    quality protocol of section 4.1).

Line--Line (section 3.2)
    :class:`~repro.algorithms.line_line.LineLine` with its four variants
    (with/without critical-bridge fixing, left-to-right / best of both
    directions).

Line--Bus and Random Graph--Bus (sections 3.3-3.4)
    :class:`~repro.algorithms.fair_load.FairLoad`,
    :class:`~repro.algorithms.tie_resolver.FairLoadTieResolver` (FLTR),
    :class:`~repro.algorithms.tie_resolver.FairLoadTieResolver2` (FLTR2),
    :class:`~repro.algorithms.merge_messages.FairLoadMergeMessages`
    (FL-MergeMsgEnds) and
    :class:`~repro.algorithms.heavy_ops.HeavyOpsLargeMsgs` (HOLM). The
    same classes handle both workflow shapes: on graphs with XOR decision
    nodes all of them except Fair Load weight cycles and message sizes by
    execution probability, exactly as section 3.4 prescribes.

Extensions (section 6 future work)
    :class:`~repro.algorithms.local_search.HillClimbing` and
    :class:`~repro.algorithms.local_search.SimulatedAnnealing` refine any
    starting mapping by single-operation moves;
    :class:`~repro.algorithms.branch_and_bound.BranchAndBound` finds the
    exact optimum with pruning (a stronger §3.1);
    :class:`~repro.algorithms.genetic.GeneticAlgorithm` is a population-
    based improver seeded with the greedy suite.

The search runtime (:mod:`repro.algorithms.runtime`)
    Every iterative algorithm above is expressed as a *step generator*
    driven by :class:`~repro.algorithms.runtime.SearchRuntime` under a
    :class:`~repro.algorithms.runtime.SearchBudget` (step/evaluation
    caps, wall-clock deadlines), with cooperative cancellation via
    :class:`~repro.algorithms.runtime.CancelToken` and a structured
    :class:`~repro.algorithms.runtime.SearchReport` per run. Pass
    ``budget=`` / ``cancel=`` to any ``deploy`` call, or use
    ``deploy_with_report`` to also get the anytime best-so-far curve.

The parallel layer (:mod:`repro.parallel`)
    :func:`~repro.parallel.deploy_parallel` shards one algorithm across
    worker processes (seeded restarts, GA islands, partitioned hill
    climbing) and :func:`~repro.parallel.race_portfolio` races a
    portfolio of algorithms under one shared budget; both are
    re-exported here for convenience.
"""

from repro.algorithms.base import (
    DeploymentAlgorithm,
    ProblemContext,
    algorithm_registry,
    get_algorithm,
    register_algorithm,
)
from repro.algorithms.runtime import (
    CancelToken,
    SearchBudget,
    SearchOutcome,
    SearchProgress,
    SearchReport,
    SearchRuntime,
    SearchStep,
)
from repro.algorithms.exhaustive import Exhaustive
from repro.algorithms.sampling import RandomMapping, SolutionSampler, SampleStatistics
from repro.algorithms.line_line import LineLine
from repro.algorithms.fair_load import FairLoad
from repro.algorithms.tie_resolver import FairLoadTieResolver, FairLoadTieResolver2
from repro.algorithms.merge_messages import FairLoadMergeMessages
from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs
from repro.algorithms.local_search import HillClimbing, SimulatedAnnealing
from repro.algorithms.branch_and_bound import BranchAndBound
from repro.algorithms.genetic import GeneticAlgorithm
from repro.algorithms.constrained import ConstraintAwareSearch

__all__ = [
    "DeploymentAlgorithm",
    "ProblemContext",
    "algorithm_registry",
    "get_algorithm",
    "register_algorithm",
    "CancelToken",
    "SearchBudget",
    "SearchOutcome",
    "SearchProgress",
    "SearchReport",
    "SearchRuntime",
    "SearchStep",
    "Exhaustive",
    "RandomMapping",
    "SolutionSampler",
    "SampleStatistics",
    "LineLine",
    "FairLoad",
    "FairLoadTieResolver",
    "FairLoadTieResolver2",
    "FairLoadMergeMessages",
    "HeavyOpsLargeMsgs",
    "HillClimbing",
    "SimulatedAnnealing",
    "BranchAndBound",
    "GeneticAlgorithm",
    "ConstraintAwareSearch",
    "deploy_parallel",
    "race_portfolio",
]

# imported last: repro.parallel builds on the registry populated above
from repro.parallel.api import deploy_parallel, race_portfolio  # noqa: E402
