"""Algorithm *Heavy Operations -- Large Messages* (section 3.3, appendix).

HOLM is the paper's overall winner. Unlike the Fair-Load family it treats
operations as *groups*: two operations that exchange a large message are
clustered so they always land on the same server. Each step the algorithm
chooses between

(a) assigning the costliest remaining group to the server with the most
    available cycles (the Fair-Load move), or
(b) neutralising the largest remaining message: if one of its ends is
    already placed, the other end joins it on the same server; if both
    ends are free, their groups merge.

A message is *large* exactly when the time to send it over the bus
exceeds the execution time of the costliest group on the currently
most-available server -- i.e. the threshold adapts as the deployment
proceeds. Messages disappear from consideration once both ends are
assigned; a message whose ends already share a group is skipped (its
co-location is already guaranteed), which also makes the loop terminate
where a literal reading of the pseudo-code would merge a group with
itself forever.

On random graphs both cycles and message sizes are probability-weighted
(section 3.4). On non-bus networks the transfer-time estimate uses the
slowest link speed and the largest propagation delay as a conservative
bus equivalent.
"""

from __future__ import annotations

from repro.algorithms.base import (
    DeploymentAlgorithm,
    ProblemContext,
    register_algorithm,
)
from repro.algorithms.graph_adapters import ServerBudgets
from repro.core.mapping import Deployment

__all__ = ["HeavyOpsLargeMsgs"]


class _Groups:
    """Union of operation groups with weighted-cycle bookkeeping."""

    def __init__(self, context: ProblemContext):
        self._context = context
        self._members: dict[int, set[str]] = {}
        self._cycles: dict[int, float] = {}
        self._group_of: dict[str, int] = {}
        self._rank: dict[str, int] = {}
        for i, name in enumerate(context.workflow.operation_names):
            self._members[i] = {name}
            self._cycles[i] = context.weighted_cycles(name)
            self._group_of[name] = i
            self._rank[name] = i

    def group_of(self, operation: str) -> int:
        """Group id currently containing *operation*."""
        return self._group_of[operation]

    def same_group(self, a: str, b: str) -> bool:
        """True when both operations sit in one group."""
        return self._group_of.get(a) == self._group_of.get(b) and a in self._group_of

    def members(self, group_id: int) -> set[str]:
        """Operations of one group."""
        return set(self._members[group_id])

    def merge(self, a: str, b: str) -> int:
        """Merge the groups of *a* and *b*; returns the surviving id."""
        ga, gb = self._group_of[a], self._group_of[b]
        if ga == gb:
            return ga
        # keep the larger group's id to bound the relabelling work
        if len(self._members[ga]) < len(self._members[gb]):
            ga, gb = gb, ga
        self._members[ga] |= self._members[gb]
        self._cycles[ga] += self._cycles[gb]
        for name in self._members[gb]:
            self._group_of[name] = ga
        del self._members[gb]
        del self._cycles[gb]
        return ga

    def remove_operation(self, operation: str) -> None:
        """Detach *operation* (it has been assigned individually)."""
        group_id = self._group_of.pop(operation)
        members = self._members[group_id]
        members.discard(operation)
        self._cycles[group_id] -= self._context.weighted_cycles(operation)
        if not members:
            del self._members[group_id]
            del self._cycles[group_id]

    def remove_group(self, group_id: int) -> set[str]:
        """Drop a whole group (it has been assigned); returns its members."""
        members = self._members.pop(group_id)
        del self._cycles[group_id]
        for name in members:
            del self._group_of[name]
        return members

    def heaviest(self) -> int | None:
        """Id of the group with the most (weighted) cycles, or ``None``.

        Ties break toward the group containing the earliest-inserted
        operation, keeping runs deterministic.
        """
        if not self._members:
            return None
        return min(
            self._members,
            key=lambda gid: (
                -self._cycles[gid],
                min(self._rank[name] for name in self._members[gid]),
            ),
        )

    def cycles(self, group_id: int) -> float:
        """Weighted cycles of one group."""
        return self._cycles[group_id]

    def __len__(self) -> int:
        return len(self._members)


@register_algorithm
class HeavyOpsLargeMsgs(DeploymentAlgorithm):
    """HOLM: group-based deployment neutralising large messages."""

    name = "HeavyOps-LargeMsgs"

    def _bus_transfer_time(self, context: ProblemContext, weighted_bits: float) -> float:
        """Time to push *weighted_bits* over the (conservative) bus."""
        network = context.network
        if not network.links:
            return 0.0  # single server: every message is local
        if network.is_uniform_bus():
            speed = network.uniform_speed_bps
            propagation = network.links[0].propagation_s if network.links else 0.0
        else:
            speed = min(link.speed_bps for link in network.links)
            propagation = max(link.propagation_s for link in network.links)
        return weighted_bits / speed + propagation

    def _deploy(self, context: ProblemContext) -> Deployment:
        workflow = context.workflow
        budgets = ServerBudgets(context)
        groups = _Groups(context)
        mapping = Deployment()

        # messages sorted by weighted size descending, insertion order on ties
        messages = sorted(
            workflow.messages,
            key=lambda m: -context.weighted_message_bits(*m.pair),
        )

        def active_top_message():
            """First message still worth acting on; prunes dead entries.

            Dead: both ends assigned (the appendix's cleanup loop).
            Skipped but kept: both ends unassigned in one group -- their
            co-location is already guaranteed, acting would self-merge.
            """
            while messages and all(end in mapping for end in messages[0].pair):
                messages.pop(0)
            for message in messages:
                src_assigned = message.source in mapping
                dst_assigned = message.target in mapping
                if src_assigned and dst_assigned:
                    continue
                if (
                    not src_assigned
                    and not dst_assigned
                    and groups.same_group(message.source, message.target)
                ):
                    continue
                return message
            return None

        unassigned = len(workflow)
        while unassigned:
            heaviest = groups.heaviest()
            assert heaviest is not None  # every unassigned op is in a group
            server = budgets.neediest()
            top = active_top_message()

            message_is_large = False
            if top is not None:
                group_time = groups.cycles(heaviest) / context.network.server(
                    server
                ).power_hz
                transfer_time = self._bus_transfer_time(
                    context, context.weighted_message_bits(*top.pair)
                )
                message_is_large = transfer_time >= group_time

            if top is None or not message_is_large:
                # option (a): heaviest group to the most available server
                for name in sorted(groups.remove_group(heaviest)):
                    mapping.assign(name, server)
                    budgets.charge(server, context.weighted_cycles(name))
                    unassigned -= 1
                continue

            src_assigned = top.source in mapping
            dst_assigned = top.target in mapping
            if src_assigned and not dst_assigned:
                # option (b1): pull the free end onto the sender's server
                host = mapping.server_of(top.source)
                mapping.assign(top.target, host)
                budgets.charge(host, context.weighted_cycles(top.target))
                groups.remove_operation(top.target)
                unassigned -= 1
            elif dst_assigned and not src_assigned:
                host = mapping.server_of(top.target)
                mapping.assign(top.source, host)
                budgets.charge(host, context.weighted_cycles(top.source))
                groups.remove_operation(top.source)
                unassigned -= 1
            else:
                # option (b2): both free -> merge their groups
                groups.merge(top.source, top.target)
        return mapping
