"""The exhaustive algorithm (section 3.1).

Enumerates every one of the ``N**M`` operation-to-server mappings and
returns the one minimising the cost model's scalar objective. Exponential,
of course -- the paper uses it only on small configurations to study the
properties of near-optimal solutions, and so do we: a guard refuses
search spaces beyond a configurable size instead of hanging.

Besides the best mapping, :meth:`Exhaustive.enumerate` exposes the whole
evaluation as an iterator so the experiment harness can build Pareto
fronts and optimality gaps on toy instances.

Through ``deploy`` the enumeration runs on the shared
:class:`~repro.algorithms.runtime.SearchRuntime`: every evaluated
mapping is one step, so an evaluation budget or deadline turns the
exact solver into an anytime one (best mapping seen so far; optimal
only when ``report.exhausted``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from repro.algorithms.base import (
    DeploymentAlgorithm,
    ProblemContext,
    register_algorithm,
)
from repro.algorithms.runtime import SearchStep
from repro.core.cost import CostBreakdown, CostModel
from repro.core.mapping import Deployment
from repro.core.workflow import Workflow
from repro.exceptions import AlgorithmError, SearchSpaceTooLargeError
from repro.network.topology import ServerNetwork

__all__ = ["Exhaustive", "EvaluatedMapping"]

#: Refuse to enumerate more configurations than this by default
#: (5 servers x 9 operations ~ 2.0e6 is fine; 5 x 19 ~ 1.9e13 is not).
DEFAULT_LIMIT = 5_000_000


@dataclass(frozen=True)
class EvaluatedMapping:
    """One enumerated mapping together with its cost breakdown."""

    deployment: Deployment
    cost: CostBreakdown


@register_algorithm
class Exhaustive(DeploymentAlgorithm):
    """Optimal deployment by full enumeration (guarded).

    Parameters
    ----------
    limit:
        Maximum number of configurations to enumerate;
        :class:`~repro.exceptions.SearchSpaceTooLargeError` is raised when
        ``N**M`` exceeds it.
    """

    name = "Exhaustive"

    def __init__(self, limit: int = DEFAULT_LIMIT):
        # a bad argument is a configuration error, not a search outcome:
        # raising SearchSpaceTooLargeError here would be swallowed by
        # callers that catch it to fall back to a heuristic
        if limit < 1:
            raise AlgorithmError("limit must be >= 1")
        self.limit = limit

    def search_space_size(self, workflow: Workflow, network: ServerNetwork) -> int:
        """``N**M`` for the given instance."""
        return len(network) ** len(workflow)

    def _check_size(self, workflow: Workflow, network: ServerNetwork) -> None:
        size = self.search_space_size(workflow, network)
        if size > self.limit:
            raise SearchSpaceTooLargeError(
                f"search space has {size} configurations "
                f"({len(network)}**{len(workflow)}), over the limit of "
                f"{self.limit}; use a heuristic or SolutionSampler instead"
            )

    def enumerate(
        self, workflow: Workflow, network: ServerNetwork, cost_model: CostModel
    ) -> Iterator[EvaluatedMapping]:
        """Yield every mapping with its evaluation (appendix pseudo-code).

        The appendix builds the cross product level by level; Python's
        :func:`itertools.product` produces the identical set lazily.
        """
        self._check_size(workflow, network)
        names = workflow.operation_names
        servers = network.server_names
        for combo in itertools.product(servers, repeat=len(names)):
            deployment = Deployment(dict(zip(names, combo)))
            yield EvaluatedMapping(deployment, cost_model.evaluate(deployment))

    def best(
        self, workflow: Workflow, network: ServerNetwork, cost_model: CostModel
    ) -> EvaluatedMapping:
        """The mapping minimising the scalar objective."""
        return min(
            self.enumerate(workflow, network, cost_model),
            key=lambda em: em.cost.objective,
        )

    def pareto_front(
        self, workflow: Workflow, network: ServerNetwork, cost_model: CostModel
    ) -> list[EvaluatedMapping]:
        """Non-dominated mappings in the (Texecute, TimePenalty) plane.

        Useful for plotting the toy-instance solution space the paper
        samples. Returned sorted by execution time ascending.
        """
        front: list[EvaluatedMapping] = []
        for candidate in self.enumerate(workflow, network, cost_model):
            if any(kept.cost.dominates(candidate.cost) for kept in front):
                continue
            front = [
                kept for kept in front if not candidate.cost.dominates(kept.cost)
            ]
            front.append(candidate)
        front.sort(key=lambda em: (em.cost.execution_time, em.cost.time_penalty))
        return front

    def _deploy(self, context: ProblemContext) -> Deployment:
        return context.search(self._steps(context)).best

    def _steps(self, context: ProblemContext) -> Iterator[SearchStep]:
        # one step per enumerated mapping; the runtime's strict-improvement
        # incumbent keeps the first of equal minima, exactly like min()
        for evaluated in self.enumerate(
            context.workflow, context.network, context.cost_model
        ):
            yield SearchStep(
                evaluated.cost.objective,
                lambda candidate=evaluated.deployment: candidate,
                evals=1,
            )
