"""Algorithm *Fair Load* (section 3.3, appendix pseudo-code).

Tuned purely for load distribution: compute each server's
``Ideal_Cycles`` (its capacity-proportional share of the total work),
sort operations by cost descending, and repeatedly assign the heaviest
remaining operation to the server that is currently furthest below its
ideal share -- "a variant of the worst-fit algorithm for the bin packing
problem". Communication is ignored entirely; the tie-resolver and
merge-messages extensions add it back.

On random graphs the paper keeps Fair Load "exactly the same", i.e. it
does **not** weight cycles by execution probability
(:attr:`FairLoad.uses_probability_weights` is False).
"""

from __future__ import annotations

from repro.algorithms.base import (
    DeploymentAlgorithm,
    ProblemContext,
    register_algorithm,
)
from repro.algorithms.graph_adapters import ServerBudgets
from repro.core.mapping import Deployment

__all__ = ["FairLoad", "sorted_operations_by_cost"]


def sorted_operations_by_cost(context: ProblemContext) -> list[str]:
    """Operation names ordered by (weighted) cycles, descending.

    Ties keep the workflow's insertion order, which makes every greedy in
    the family deterministic for a fixed instance.
    """
    names = list(context.workflow.operation_names)
    rank = {name: i for i, name in enumerate(names)}
    names.sort(key=lambda name: (-context.weighted_cycles(name), rank[name]))
    return names


@register_algorithm
class FairLoad(DeploymentAlgorithm):
    """Worst-fit assignment of operations to capacity-proportional budgets."""

    name = "FairLoad"
    uses_probability_weights = False  # section 3.4: FL stays exactly the same

    def _deploy(self, context: ProblemContext) -> Deployment:
        budgets = ServerBudgets(context)
        mapping = Deployment()
        for operation in sorted_operations_by_cost(context):
            server = budgets.neediest()
            mapping.assign(operation, server)
            budgets.charge(server, context.weighted_cycles(operation))
        return mapping
