"""Random baseline and the sampling-based quality protocol (section 4.1).

The paper assesses solution quality by sampling 32 000 random mappings
per configuration (out of search spaces up to ``10**13``) and reporting
each heuristic's deviation from the best sampled execution time and time
penalty. :class:`SolutionSampler` implements that protocol;
:class:`RandomMapping` wraps a single uniform draw as a baseline
algorithm so it can sit in the same figures as the heuristics.

The sampler runs on the shared
:class:`~repro.algorithms.runtime.SearchRuntime` -- one draw is one
step -- so the 32 000-draw protocol accepts a
:class:`~repro.algorithms.runtime.SearchBudget` (deadline, evaluation
cap) or a cancel token and still returns well-formed statistics over
the draws actually made (check ``SampleStatistics.report``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.algorithms.base import (
    DeploymentAlgorithm,
    ProblemContext,
    register_algorithm,
)
from repro.algorithms.runtime import (
    CancelToken,
    SearchBudget,
    SearchProgress,
    SearchReport,
    SearchRuntime,
    SearchStep,
)
from repro.core.clock import Clock
from repro.core.compiled import batch_evaluator_or_none
from repro.core.cost import CostBreakdown, CostModel
from repro.core.incremental import TableScorer
from repro.core.mapping import Deployment
from repro.core.workflow import Workflow
from repro.exceptions import DeploymentError
from repro.network.topology import ServerNetwork

__all__ = [
    "RandomMapping",
    "SolutionSampler",
    "SampleStatistics",
    "DEFAULT_SAMPLE_BLOCK",
]

#: Sample count the paper uses per configuration.
PAPER_SAMPLE_COUNT = 32_000


@register_algorithm
class RandomMapping(DeploymentAlgorithm):
    """Uniformly random deployment -- the unskilled baseline."""

    name = "Random"

    def _deploy(self, context: ProblemContext) -> Deployment:
        return Deployment.random(context.workflow, context.network, context.rng)


@dataclass(frozen=True)
class SampleStatistics:
    """Aggregates over one sampling run.

    Attributes
    ----------
    samples:
        Number of mappings actually drawn (fewer than requested when a
        budget or cancellation cut the run short).
    best_objective:
        The best sampled mapping by scalar objective, with its cost.
    best_execution_time:
        Minimum ``Texecute`` observed across all samples (not necessarily
        the same mapping as the best penalty -- the paper's deviation
        metric treats the two dimensions independently).
    best_time_penalty:
        Minimum fairness penalty observed across all samples.
    worst_objective_value:
        Largest scalar objective seen (for range context in reports).
    report:
        The :class:`~repro.algorithms.runtime.SearchReport` of the
        sampling run (one step per draw); ``report.exhausted`` tells
        whether the full requested draw count completed.
    """

    samples: int
    best_objective: "tuple[Deployment, CostBreakdown]"
    best_execution_time: float
    best_time_penalty: float
    worst_objective_value: float
    report: SearchReport | None = None

    def execution_deviation(self, cost: CostBreakdown) -> float:
        """Relative gap of *cost*'s ``Texecute`` vs the sampled best.

        Matches the paper's "(2.9%, 12%) deviations for execution
        time/time penalty" quality numbers: 0.029 means 2.9% slower than
        the best sampled execution time. Clamped at 0 from below (a
        heuristic may beat every sample).
        """
        best = self.best_execution_time
        if best <= 0:
            return 0.0
        return max(0.0, cost.execution_time / best - 1.0)

    def penalty_deviation(self, cost: CostBreakdown) -> float:
        """Relative gap of *cost*'s ``TimePenalty`` vs the sampled best.

        When the sampled best penalty is 0 (a perfectly fair mapping was
        drawn), the deviation is 0 if the heuristic also achieves 0 and
        measured against the mean server load otherwise, keeping the
        metric finite.

        Caveat: with large sample counts the best sampled penalty
        approaches 0 and this ratio becomes ill-conditioned -- a 20 ms
        penalty against a 1 ms sampled best reads as 1900 % even though
        both are small against a 40 ms mean load. Use
        :meth:`penalty_gap_vs_load` for a scale-stable reading.
        """
        best = self.best_time_penalty
        if best > 0:
            return max(0.0, cost.time_penalty / best - 1.0)
        if cost.time_penalty <= 0:
            return 0.0
        loads = list(cost.loads.values())
        scale = sum(loads) / len(loads) if loads else 1.0
        return cost.time_penalty / scale if scale > 0 else float("inf")

    def penalty_gap_vs_load(self, cost: CostBreakdown) -> float:
        """Penalty gap to the sampled best, normalised by the mean load.

        ``(penalty - best_sampled_penalty) / mean_server_load``, clamped
        at 0: "how much extra unfairness, as a fraction of the time a
        server works anyway". Well-conditioned even when the sampled
        best penalty is near 0, which makes it the metric comparable in
        magnitude to the paper's quoted (x%, y%) pairs.
        """
        gap = max(0.0, cost.time_penalty - self.best_time_penalty)
        loads = list(cost.loads.values())
        if not loads:
            return 0.0
        scale = sum(loads) / len(loads)
        return gap / scale if scale > 0 else float("inf")


#: Default number of draws the sampler scores per batch kernel call.
DEFAULT_SAMPLE_BLOCK = 1024


class SolutionSampler:
    """Draw ``k`` random mappings and track the best along each dimension.

    Parameters
    ----------
    samples:
        Number of uniform draws (paper: 32 000).
    block:
        Draws scored per :class:`~repro.core.batch.BatchEvaluator`
        kernel call (default 1024). The per-draw statistics, steps and
        results are bit-identical for every block size; the block only
        sets the vectorisation width. ``block=1`` -- or a missing NumPy
        -- uses the scalar per-draw path.
    use_batch:
        Disable the batch kernel entirely when False.
    """

    def __init__(
        self,
        samples: int = PAPER_SAMPLE_COUNT,
        block: int = DEFAULT_SAMPLE_BLOCK,
        use_batch: bool = True,
    ):
        self.samples = SearchBudget.validate_count("samples", samples)
        self.block = SearchBudget.validate_count("block", block)
        self.use_batch = use_batch

    def run(
        self,
        workflow: Workflow,
        network: ServerNetwork,
        cost_model: CostModel,
        rng,
        budget: SearchBudget | None = None,
        cancel: CancelToken | None = None,
        clock: Clock | None = None,
        on_progress: Callable[[SearchProgress], None] | None = None,
    ) -> SampleStatistics:
        """Sample and aggregate; *rng* is ``random.Random``-like.

        Samples are scored a block at a time through the shared
        :class:`~repro.core.batch.BatchEvaluator` (one kernel call per
        :attr:`block` draws -- the 32 000-draw protocol's dominant
        cost), with the per-draw
        :class:`~repro.core.incremental.TableScorer` path as the
        NumPy-free fallback. Genomes are drawn with exactly the rng
        calls ``Deployment.random`` makes, keeping seeded runs
        byte-identical to the full-evaluation protocol in every block
        configuration; only the single best-objective sample is
        materialised and evaluated in full at the end.

        One draw is one runtime step, so *budget*, *cancel*, *clock*
        and *on_progress* behave exactly as for
        :meth:`~repro.algorithms.base.DeploymentAlgorithm.deploy`; the
        statistics then aggregate the draws actually made. (One caveat
        under a *binding* budget: blocks are drawn ahead of scoring, so
        the rng may sit up to one block further along its stream after
        an early stop than the scalar path would leave it; statistics
        and results still cover exactly the consumed draws.)
        """
        operations = workflow.operation_names
        servers = network.server_names
        if not servers:
            raise DeploymentError("network has no servers")
        scorer = TableScorer(cost_model, operations)
        batch = batch_evaluator_or_none(
            cost_model.compiled, enabled=self.use_batch and self.block > 1
        )
        # per-dimension extrema live outside the generator so the
        # aggregates survive an early (budget/cancel) stop
        state = {
            "drawn": 0,
            "best_execution": float("inf"),
            "best_penalty": float("inf"),
            "worst_objective": float("-inf"),
        }

        def draws() -> Iterator[SearchStep]:
            remaining = self.samples
            while remaining > 0:
                size = min(self.block, remaining) if batch else 1
                genomes = [
                    tuple(rng.choice(servers) for _ in operations)
                    for _ in range(size)
                ]
                if batch is not None:
                    scores = batch.evaluate(batch.index_batch(genomes))
                    scored = [
                        (g, float(e), float(p), float(o))
                        for g, e, p, o in zip(
                            genomes,
                            scores.execution,
                            scores.penalty,
                            scores.objective,
                        )
                    ]
                else:
                    scored = [(g, *scorer.components(g)) for g in genomes]
                remaining -= size
                for genome, execution, penalty, objective in scored:
                    state["drawn"] += 1
                    state["best_execution"] = min(
                        state["best_execution"], execution
                    )
                    state["best_penalty"] = min(
                        state["best_penalty"], penalty
                    )
                    state["worst_objective"] = max(
                        state["worst_objective"], objective
                    )
                    yield SearchStep(
                        objective,
                        lambda g=genome: Deployment(dict(zip(operations, g))),
                        evals=1,
                    )

        runtime = SearchRuntime(
            budget=budget, clock=clock, cancel=cancel, on_progress=on_progress
        )
        outcome = runtime.run(draws())
        best_deployment = outcome.best
        best_pair = (best_deployment, cost_model.evaluate(best_deployment))
        return SampleStatistics(
            samples=state["drawn"],
            best_objective=best_pair,
            best_execution_time=state["best_execution"],
            best_time_penalty=state["best_penalty"],
            worst_objective_value=state["worst_objective"],
            report=outcome.report,
        )
