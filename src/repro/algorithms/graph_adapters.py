"""Shared machinery adapting the Line--Bus greedies to random graphs.

Section 3.4 states that the Graph--Bus algorithms "are practically the
same" as their Line--Bus counterparts, with two modifications:

* an operation can receive (and send) more than one message, so the gain
  function sums over *all* graph neighbours instead of the two line
  neighbours of Fig. 5;
* costs are weighted by execution probability, because XOR decision
  nodes mean only a subset of the workflow runs per execution.

Both adaptations are centralised here: the :func:`gain_of_operation_at_server`
function (the generalised ``Gain_Of_Operation_At_Server`` of Fig. 5) and
the :class:`ServerBudgets` helper that tracks each server's remaining
``Ideal_Cycles`` budget, which every Fair-Load-family algorithm sorts and
decrements step by step.
"""

from __future__ import annotations

from repro.algorithms.base import ProblemContext
from repro.core.mapping import Deployment

__all__ = ["gain_of_operation_at_server", "ServerBudgets"]


def gain_of_operation_at_server(
    context: ProblemContext,
    operation_name: str,
    server_name: str,
    mapping: Deployment,
) -> float:
    """Communication saved by deploying *operation_name* on *server_name*.

    The gain is the number of (probability-weighted) message bits that
    stay off the network because a workflow neighbour of the operation is
    already mapped to the same server in *mapping* -- the paper's
    ``Gain_Of_Operation_At_Server`` (Fig. 5), generalised from the line's
    two neighbours to every predecessor and successor in the graph.
    """
    workflow = context.workflow
    gain = 0.0
    for predecessor in workflow.predecessors(operation_name):
        if mapping.get(predecessor) == server_name:
            gain += context.weighted_message_bits(predecessor, operation_name)
    for successor in workflow.successors(operation_name):
        if mapping.get(successor) == server_name:
            gain += context.weighted_message_bits(operation_name, successor)
    return gain


class ServerBudgets:
    """Remaining ``Ideal_Cycles`` per server, kept sorted descending.

    The Fair-Load family repeatedly (1) reads the server with the most
    remaining budget (or the set of servers tied for it), (2) charges an
    assignment against a server, and (3) re-sorts. This helper keeps the
    ordering stable and deterministic: ties between servers preserve the
    network's insertion order.
    """

    def __init__(self, context: ProblemContext):
        self._budget = context.initial_ideal_cycles()
        # insertion order index makes sorting deterministic under ties
        self._rank = {
            name: i for i, name in enumerate(context.network.server_names)
        }

    def remaining(self, server_name: str) -> float:
        """Remaining budget of one server (may go negative)."""
        return self._budget[server_name]

    def charge(self, server_name: str, cycles: float) -> None:
        """Subtract *cycles* from the server's remaining budget."""
        self._budget[server_name] -= cycles

    def sorted_servers(self) -> list[str]:
        """Server names ordered by remaining budget, descending."""
        return sorted(
            self._budget,
            key=lambda name: (-self._budget[name], self._rank[name]),
        )

    def neediest(self) -> str:
        """The server with the most remaining budget."""
        return self.sorted_servers()[0]

    def tied_with_neediest(self, tolerance: float = 0.0) -> list[str]:
        """All servers whose remaining budget ties the maximum.

        FLTR2 widens the candidate set to servers "with a tie ... with
        respect to their distance from their ideal load".
        """
        ordered = self.sorted_servers()
        top = self._budget[ordered[0]]
        return [
            name for name in ordered if top - self._budget[name] <= tolerance
        ]

    def as_dict(self) -> dict[str, float]:
        """Snapshot of the remaining budgets."""
        return dict(self._budget)
