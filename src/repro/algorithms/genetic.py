"""Genetic-algorithm deployment (an extension beyond the paper).

A straightforward GA over complete mappings, included as a stronger
stochastic baseline than simulated annealing for the ablation benches:

* a chromosome is the tuple of server choices, one gene per operation;
* fitness is the negative scalar objective of the cost model; each
  generation's population is scored in **one**
  :class:`~repro.core.batch.BatchEvaluator` kernel call (bit-identical
  to -- and much faster than -- the per-genome
  :class:`~repro.core.incremental.TableScorer` path, which remains the
  fallback when NumPy is unavailable or ``use_batch=False``);
* tournament selection, uniform crossover, per-gene reset mutation,
  elitism of the single best individual;
* the initial population mixes random mappings with the greedy suite's
  results so the GA starts no worse than the paper's heuristics;
* one generation is one :class:`~repro.algorithms.runtime.SearchStep`,
  so a deadline or evaluation budget stops evolution between
  generations and returns the best individual seen so far.
"""

from __future__ import annotations

from typing import Iterator

from repro.algorithms.base import (
    DeploymentAlgorithm,
    ProblemContext,
    register_algorithm,
)
from repro.algorithms.fair_load import FairLoad
from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs
from repro.algorithms.runtime import SearchBudget, SearchStep
from repro.core.compiled import batch_evaluator_or_none
from repro.core.incremental import TableScorer
from repro.core.mapping import Deployment
from repro.exceptions import AlgorithmError

__all__ = ["GeneticAlgorithm"]


@register_algorithm
class GeneticAlgorithm(DeploymentAlgorithm):
    """Population-based search over deployments.

    Parameters
    ----------
    population_size:
        Individuals per generation (>= 2).
    generations:
        Number of evolution steps.
    crossover_rate:
        Probability a child mixes two parents (else clones one).
    mutation_rate:
        Per-gene probability of a random server reset.
    tournament:
        Tournament size for parent selection.
    seed_with_heuristics:
        Include FairLoad's and HeavyOps-LargeMsgs' mappings in the
        initial population (on by default; the GA is then an *improver*).
    use_batch:
        Score each generation through the shared
        :class:`~repro.core.batch.BatchEvaluator` (on by default;
        results are bit-identical either way, and the scalar
        :class:`~repro.core.incremental.TableScorer` path is used
        automatically when NumPy is missing).
    initial_population:
        Optional explicit starting population: genome tuples of server
        names, one gene per operation in workflow order. Replaces both
        the heuristic seeding and the random fill for the genomes
        provided (extra slots are still filled randomly; surplus
        genomes are truncated). This is the island-model hook of
        :mod:`repro.parallel`: migration rounds resume evolution from
        the previous round's population.
    population_sink:
        Optional callable receiving ``(population, objectives)`` --
        the final generation's genomes and their objective values --
        when the search ends, *including* early stops by budget or
        cancellation (the runtime closes the step generator, running
        its ``finally``). The island runner uses it to ship populations
        back to the coordinator.
    """

    name = "Genetic"

    def __init__(
        self,
        population_size: int = 30,
        generations: int = 40,
        crossover_rate: float = 0.9,
        mutation_rate: float = 0.05,
        tournament: int = 3,
        seed_with_heuristics: bool = True,
        use_batch: bool = True,
        initial_population=None,
        population_sink=None,
    ):
        self.population_size = SearchBudget.validate_count(
            "population_size", population_size, minimum=2
        )
        self.generations = SearchBudget.validate_count(
            "generations", generations
        )
        if not 0.0 <= crossover_rate <= 1.0:
            raise AlgorithmError("crossover_rate must lie in [0, 1]")
        if not 0.0 <= mutation_rate <= 1.0:
            raise AlgorithmError("mutation_rate must lie in [0, 1]")
        self.tournament = SearchBudget.validate_count(
            "tournament", tournament
        )
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.seed_with_heuristics = seed_with_heuristics
        self.use_batch = use_batch
        self.initial_population = (
            None
            if initial_population is None
            else tuple(tuple(genome) for genome in initial_population)
        )
        self.population_sink = population_sink

    def _deploy(self, context: ProblemContext) -> Deployment:
        return context.search(self._steps(context)).best

    def _steps(self, context: ProblemContext) -> Iterator[SearchStep]:
        rng = context.rng
        cost_model = context.cost_model
        operations = context.workflow.operation_names
        servers = context.network.server_names
        scorer = TableScorer(cost_model, operations)
        batch = batch_evaluator_or_none(
            context.compiled, enabled=self.use_batch
        )

        def random_genome() -> tuple[str, ...]:
            return tuple(rng.choice(servers) for _ in operations)

        def genome_of(deployment: Deployment) -> tuple[str, ...]:
            return tuple(deployment.server_of(name) for name in operations)

        def fitness(genome: tuple[str, ...]) -> float:
            return -scorer.objective(genome)

        def score_population(
            genomes: list[tuple[str, ...]],
        ) -> list[float]:
            # one kernel call per generation; the scalar loop is the
            # NumPy-free fallback and produces the identical floats
            if batch is not None:
                objectives = batch.evaluate(batch.index_batch(genomes))
                return [-float(v) for v in objectives.objective]
            return [fitness(genome) for genome in genomes]

        population: list[tuple[str, ...]] = []
        if self.initial_population is not None:
            server_set = set(servers)
            for genome in self.initial_population[: self.population_size]:
                if len(genome) != len(operations):
                    raise AlgorithmError(
                        f"initial_population genome has {len(genome)} genes, "
                        f"workflow has {len(operations)} operations"
                    )
                unknown = set(genome) - server_set
                if unknown:
                    raise AlgorithmError(
                        f"initial_population names unknown servers: "
                        f"{sorted(unknown)}"
                    )
                population.append(tuple(genome))
        elif self.seed_with_heuristics:
            for algorithm in (FairLoad(), HeavyOpsLargeMsgs()):
                population.append(
                    genome_of(
                        algorithm.deploy(
                            context.workflow,
                            context.network,
                            cost_model=cost_model,
                            rng=rng,
                        )
                    )
                )
        while len(population) < self.population_size:
            population.append(random_genome())
        scores = score_population(population)

        def snapshot_of(genome: tuple[str, ...]):
            return lambda: Deployment(dict(zip(operations, genome)))

        def select() -> tuple[str, ...]:
            best_index = rng.randrange(len(population))
            for _ in range(self.tournament - 1):
                challenger = rng.randrange(len(population))
                if scores[challenger] > scores[best_index]:
                    best_index = challenger
            return population[best_index]

        elite_index = max(range(len(population)), key=scores.__getitem__)
        try:
            yield SearchStep(
                -scores[elite_index],
                snapshot_of(population[elite_index]),
                evals=len(population),
            )
            for _ in range(self.generations):
                next_population = [population[elite_index]]
                while len(next_population) < self.population_size:
                    parent_a = select()
                    if rng.random() < self.crossover_rate:
                        parent_b = select()
                        child = tuple(
                            a if rng.random() < 0.5 else b
                            for a, b in zip(parent_a, parent_b)
                        )
                    else:
                        child = parent_a
                    if len(servers) > 1:
                        child = tuple(
                            rng.choice(servers)
                            if rng.random() < self.mutation_rate
                            else gene
                            for gene in child
                        )
                    next_population.append(child)
                population = next_population
                scores = score_population(population)
                # elitism keeps the champion at index 0, so the first max
                # is the first genome ever to reach the current best score
                # -- exactly the incumbent the runtime tracks
                elite_index = max(range(len(population)), key=scores.__getitem__)
                yield SearchStep(
                    -scores[elite_index],
                    snapshot_of(population[elite_index]),
                    evals=len(population),
                )
        finally:
            # fires on natural exhaustion AND when the runtime closes the
            # generator early (budget/cancel): the sink always observes a
            # consistent (population, scores) pair because rebinds happen
            # together between yields
            if self.population_sink is not None:
                self.population_sink(
                    list(population), [-score for score in scores]
                )
