"""The Line--Line algorithm and its four variants (section 3.2, appendix).

Both the workflow and the server network are lines. Phase 1 walks the
operations left to right, filling each server up to its capacity-
proportional ``Ideal_Cycles`` budget (with the appendix's 20 % overflow
tolerance) while guaranteeing every server at least one operation, so the
mapping is a partition of the line into contiguous blocks. Phase 2
(``Fix_Bad_Bridges``) scans the *bridges* -- links carrying the message
between the last operation of one block and the first of the next -- and,
when a bridge is *critical* (slow link, large crossing message, small
adjacent message), shifts one operation across the bridge so the large
message becomes server-local (Fig. 3).

The paper derives four variants: phase 2 on/off, and assignment running
left-to-right only or both directions keeping the better result. These
are the ``fix_bridges`` and ``direction`` constructor parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import (
    DeploymentAlgorithm,
    ProblemContext,
    register_algorithm,
)
from repro.core.mapping import Deployment
from repro.exceptions import AlgorithmError, UnsupportedTopologyError

__all__ = ["LineLine"]

#: Appendix line 12: a server may exceed its ideal budget by 20 %.
OVERFLOW_TOLERANCE = 1.2

#: Percentile fractions of ``Is_Critical_Bridge``: a link is *slow* in the
#: bottom 20 % of speeds; a message is *large* in the top 20 % of sizes
#: and *small* in the bottom 20 %.
CRITICAL_FRACTION = 0.2


@dataclass
class _Blocks:
    """Contiguous operation blocks per server, in line order."""

    servers: list[str]
    blocks: list[list[str]]

    def to_deployment(self) -> Deployment:
        mapping = Deployment()
        for server, block in zip(self.servers, self.blocks):
            for operation in block:
                mapping.assign(operation, server)
        return mapping


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Value at *fraction* through an ascending-sorted list."""
    if not sorted_values:
        return 0.0
    index = int((len(sorted_values) - 1) * fraction)
    return sorted_values[index]


@register_algorithm
class LineLine(DeploymentAlgorithm):
    """Two-phase block partitioning for Line--Line configurations.

    Parameters
    ----------
    fix_bridges:
        Run the phase-2 critical-bridge repair (variant toggle).
    direction:
        ``"ltr"`` assigns left-to-right, ``"rtl"`` right-to-left (both
        lines reversed), ``"best"`` runs both and keeps the mapping with
        the lower scalar objective.
    """

    name = "Line-Line"

    def __init__(self, fix_bridges: bool = True, direction: str = "best"):
        if direction not in ("ltr", "rtl", "best"):
            raise AlgorithmError(
                f"direction must be 'ltr', 'rtl' or 'best', got {direction!r}"
            )
        self.fix_bridges = fix_bridges
        self.direction = direction

    # ------------------------------------------------------------------
    # phase 1: contiguous fill
    # ------------------------------------------------------------------
    def _phase1(
        self,
        context: ProblemContext,
        operations: list[str],
        servers: list[str],
    ) -> _Blocks:
        workflow = context.workflow
        network = context.network
        total = sum(workflow.operation(o).cycles for o in operations)
        capacity = network.total_power_hz

        def ideal(server: str) -> float:
            return total * network.server(server).power_hz / capacity

        blocks: list[list[str]] = [[] for _ in servers]
        server_index = 0
        current = 0.0
        for position, operation in enumerate(operations):
            remaining_ops = len(operations) - position
            remaining_servers = len(servers) - server_index
            advance = False
            if current > 0 and server_index < len(servers) - 1:
                if remaining_ops <= remaining_servers - 1:
                    # keeping this operation here would starve a later server
                    advance = True
                elif (
                    current + workflow.operation(operation).cycles
                    >= OVERFLOW_TOLERANCE * ideal(servers[server_index])
                ):
                    advance = True
            if advance:
                server_index += 1
                current = 0.0
            blocks[server_index].append(operation)
            current += workflow.operation(operation).cycles
        return _Blocks(servers=list(servers), blocks=blocks)

    # ------------------------------------------------------------------
    # phase 2: critical bridges (Fig. 3 / Fix_Bad_Bridges)
    # ------------------------------------------------------------------
    def _fix_bad_bridges(self, context: ProblemContext, blocks: _Blocks) -> None:
        workflow = context.workflow
        network = context.network
        speeds = sorted(
            network.link(a, b).speed_bps
            for a, b in zip(blocks.servers, blocks.servers[1:])
        )
        sizes = sorted(message.size_bits for message in workflow.messages)
        if not speeds or not sizes:
            return
        slow_speed = _percentile(speeds, CRITICAL_FRACTION)
        large_size = _percentile(sizes, 1.0 - CRITICAL_FRACTION)
        small_size = _percentile(sizes, CRITICAL_FRACTION)

        for i in range(len(blocks.servers) - 1):
            left_block = blocks.blocks[i]
            right_block = blocks.blocks[i + 1]
            if not left_block or not right_block:
                continue
            link = network.link(blocks.servers[i], blocks.servers[i + 1])
            crossing = workflow.message(left_block[-1], right_block[0])
            if link.speed_bps > slow_speed or crossing.size_bits < large_size:
                continue  # bridge is not critical
            # shift right: the sender of the large message follows it, as
            # long as its left neighbour's message is small and the left
            # block keeps at least one operation
            if len(left_block) >= 2:
                adjacent = workflow.message(left_block[-2], left_block[-1])
                if adjacent.size_bits <= small_size:
                    right_block.insert(0, left_block.pop())
                    continue
            # shift left: symmetric move of the receiver
            if len(right_block) >= 2:
                adjacent = workflow.message(right_block[0], right_block[1])
                if adjacent.size_bits <= small_size:
                    left_block.append(right_block.pop(0))

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def _run_direction(self, context: ProblemContext, reverse: bool) -> Deployment:
        operations = list(context.workflow.line_order())
        servers = list(context.network.line_order())
        if reverse:
            operations.reverse()
            servers.reverse()
        blocks = self._phase1(context, operations, servers)
        if reverse:
            # restore left-to-right orientation so bridge messages exist
            blocks.servers.reverse()
            blocks.blocks.reverse()
            for block in blocks.blocks:
                block.reverse()
        if self.fix_bridges:
            self._fix_bad_bridges(context, blocks)
        return blocks.to_deployment()

    def _deploy(self, context: ProblemContext) -> Deployment:
        if not context.workflow.is_line():
            raise UnsupportedTopologyError(
                f"{self.name} requires a line workflow; "
                f"{context.workflow.name!r} is not a line"
            )
        if not context.network.is_line():
            raise UnsupportedTopologyError(
                f"{self.name} requires a line server network; "
                f"{context.network.name!r} is not a line"
            )
        if self.direction in ("ltr", "rtl"):
            return self._run_direction(context, reverse=self.direction == "rtl")
        forward = self._run_direction(context, reverse=False)
        backward = self._run_direction(context, reverse=True)
        if (
            context.cost_model.objective(backward)
            < context.cost_model.objective(forward)
        ):
            return backward
        return forward
