"""repro.parallel -- multiprocess shard & portfolio search runtime.

A fan-out layer over the serial anytime
:class:`~repro.algorithms.runtime.SearchRuntime`: shard one algorithm
across worker processes (seeded restarts, GA islands with ring
migration, partitioned-neighbourhood hill climbing) or race a portfolio
of algorithms under one shared evaluation/deadline budget with
cooperative cancellation and a merged anytime report. Deterministic by
construction -- worker RNG streams are pure functions of the root seed
and each worker's structural position, and budget shares are
pre-partitioned -- so a fixed ``(seed, workers, plan)`` triple
reproduces the same winner. See DESIGN §11 for the protocols.
"""

from repro.parallel.api import (
    default_workers,
    deploy_parallel,
    race_portfolio,
)
from repro.parallel.budget import (
    DEFAULT_FLUSH_EVERY,
    STOP_TARGET,
    BudgetLedger,
    InlineLedger,
    SharedLedger,
    WorkerBridge,
    slice_budget,
)
from repro.parallel.rng import require_spawnable_seed, spawn_rng, spawn_seed
from repro.parallel.runtime import (
    ParallelOutcome,
    ParallelReport,
    ParallelRuntime,
    WorkerRun,
    merge_curves,
)
from repro.parallel.specs import (
    DEFAULT_PORTFOLIO,
    PLAN_KINDS,
    AlgorithmSpec,
    ShardPlan,
    auto_plan,
)
from repro.parallel.worker import InstancePayload, payload_from

__all__ = [
    "deploy_parallel",
    "race_portfolio",
    "default_workers",
    "ParallelRuntime",
    "ParallelOutcome",
    "ParallelReport",
    "WorkerRun",
    "merge_curves",
    "AlgorithmSpec",
    "ShardPlan",
    "PLAN_KINDS",
    "DEFAULT_PORTFOLIO",
    "auto_plan",
    "slice_budget",
    "BudgetLedger",
    "InlineLedger",
    "SharedLedger",
    "WorkerBridge",
    "STOP_TARGET",
    "DEFAULT_FLUSH_EVERY",
    "spawn_seed",
    "spawn_rng",
    "require_spawnable_seed",
    "InstancePayload",
    "payload_from",
]
