"""Worker-process entry points and the per-process instance cache.

What crosses the process boundary is deliberately small and dumb:

* an :class:`InstancePayload` -- the JSON-codec dicts of the workflow
  and network plus the cost-model knobs, fingerprinted so each worker
  process rebuilds (and compiles) an instance **once** and serves every
  later task for the same fingerprint from :data:`_MATERIALIZED`;
* task dataclasses whose per-round fields are integer indices into the
  worker's own :class:`~repro.core.compiled.CompiledInstance` -- genome
  populations as server-index tuples, operation partitions as op-index
  tuples, candidate rows as index vectors -- never live domain objects.

Every entry point is a module-level function (picklable by qualified
name under any ``multiprocessing`` start method) taking ``(task,
ledger)`` and returning a plain picklable result object. Budget
accounting and cooperative cancellation run through the
:class:`~repro.parallel.budget.WorkerBridge`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.algorithms.base import DeploymentAlgorithm
from repro.algorithms.runtime import CancelToken, SearchBudget, SearchReport
from repro.core.clock import Clock
from repro.core.cost import CostModel
from repro.core.incremental import MoveEvaluator
from repro.core.mapping import Deployment
from repro.core.rng import coerce_rng
from repro.core.workflow import Workflow
from repro.io.json_codec import (
    network_from_dict,
    network_to_dict,
    workflow_from_dict,
    workflow_to_dict,
)
from repro.network.topology import ServerNetwork
from repro.parallel.budget import (
    DEFAULT_FLUSH_EVERY,
    STOP_TARGET,
    BudgetLedger,
    WorkerBridge,
)
from repro.parallel.specs import AlgorithmSpec

__all__ = [
    "InstancePayload",
    "payload_from",
    "materialize",
    "SearchTask",
    "SearchResult",
    "run_search_task",
    "IslandTask",
    "IslandResult",
    "run_island_task",
    "PartitionTask",
    "PartitionResult",
    "run_partition_scan",
    "PricingTask",
    "run_pricing_task",
]


# ----------------------------------------------------------------------
# instance payloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InstancePayload:
    """A problem instance in wire form (see module docs).

    ``key`` is a content fingerprint: workers use it to cache the
    rebuilt (workflow, network, cost model) triple, and equal instances
    shipped by different callers share one cache entry.
    """

    key: str
    workflow: dict
    network: dict
    execution_weight: float
    penalty_weight: float
    penalty_mode: str
    use_probabilities: bool | None


def payload_from(
    workflow: Workflow,
    network: ServerNetwork,
    cost_model: CostModel | None = None,
) -> InstancePayload:
    """Encode an instance (and its cost-model knobs) for shipping."""
    if cost_model is None:
        cost_model = CostModel(workflow, network)
    workflow_doc = workflow_to_dict(workflow)
    network_doc = network_to_dict(network)
    knobs = (
        cost_model.execution_weight,
        cost_model.penalty_weight,
        cost_model.penalty_mode,
        cost_model.use_probabilities,
    )
    digest = hashlib.sha1(
        json.dumps(
            [workflow_doc, network_doc, knobs], sort_keys=True
        ).encode()
    ).hexdigest()
    return InstancePayload(
        key=digest,
        workflow=workflow_doc,
        network=network_doc,
        execution_weight=cost_model.execution_weight,
        penalty_weight=cost_model.penalty_weight,
        penalty_mode=cost_model.penalty_mode,
        use_probabilities=cost_model.use_probabilities,
    )


#: Per-process cache: payload fingerprint -> (workflow, network, model).
_MATERIALIZED: dict[str, tuple[Workflow, ServerNetwork, CostModel]] = {}

#: Cache bound: a long-lived worker pool serving many distinct
#: instances (the fleet controller across joins/failures) must not grow
#: without limit; rebuilding after a clear is cheap relative to search.
_CACHE_LIMIT = 32


def materialize(
    payload: InstancePayload,
) -> tuple[Workflow, ServerNetwork, CostModel]:
    """Rebuild (once per process per fingerprint) the instance triple."""
    cached = _MATERIALIZED.get(payload.key)
    if cached is not None:
        return cached
    workflow = workflow_from_dict(payload.workflow)
    network = network_from_dict(payload.network)
    model = CostModel(
        workflow,
        network,
        execution_weight=payload.execution_weight,
        penalty_weight=payload.penalty_weight,
        penalty_mode=payload.penalty_mode,
        use_probabilities=payload.use_probabilities,
    )
    if len(_MATERIALIZED) >= _CACHE_LIMIT:
        _MATERIALIZED.clear()
    _MATERIALIZED[payload.key] = (workflow, network, model)
    return workflow, network, model


def _bridged_cancel(
    ledger: BudgetLedger,
    flush_every: int,
    target_value: float | None,
) -> tuple[CancelToken, WorkerBridge]:
    """A cancel token pre-tripped if the run is already stopping, plus
    its ledger bridge."""
    cancel = CancelToken()
    if ledger.stop_requested:
        cancel.cancel(ledger.stop_reason)
    bridge = WorkerBridge(
        ledger, cancel, flush_every=flush_every, target_value=target_value
    )
    return cancel, bridge


# ----------------------------------------------------------------------
# whole-search tasks (restarts / portfolio racing)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SearchTask:
    """One complete algorithm run assigned to a worker.

    ``algorithm`` is either an :class:`~repro.parallel.specs.
    AlgorithmSpec` (built in the worker) or a ready picklable
    :class:`~repro.algorithms.base.DeploymentAlgorithm` instance (for
    configured variants the spec grammar cannot express). ``seed`` is
    the value fed to :func:`~repro.core.rng.coerce_rng` -- already
    spawned per worker by the coordinator.
    """

    index: int
    label: str
    payload: InstancePayload
    algorithm: "AlgorithmSpec | DeploymentAlgorithm"
    seed: Any
    budget: SearchBudget | None = None
    target_value: float | None = None
    flush_every: int = DEFAULT_FLUSH_EVERY


@dataclass(frozen=True)
class SearchResult:
    """What a :class:`SearchTask` sends back."""

    index: int
    label: str
    mapping: dict[str, str]
    value: float
    report: SearchReport | None


def run_search_task(
    task: SearchTask,
    ledger: BudgetLedger,
    clock: Clock | None = None,
) -> SearchResult:
    """Run one algorithm under the shared ledger; always returns a
    valid deployment (the anytime contract survives pre-cancellation:
    the first step's starting state is still produced)."""
    workflow, network, model = materialize(task.payload)
    algorithm = (
        task.algorithm.build()
        if isinstance(task.algorithm, AlgorithmSpec)
        else task.algorithm
    )
    cancel, bridge = _bridged_cancel(
        ledger, task.flush_every, task.target_value
    )
    try:
        deployment, report = algorithm.deploy_with_report(
            workflow,
            network,
            cost_model=model,
            rng=coerce_rng(task.seed),
            budget=task.budget,
            cancel=cancel,
            clock=clock,
            on_progress=bridge,
        )
    finally:
        # flush even when the search raises: the ledger must account
        # for the evaluations a crashed worker already spent
        bridge.finish()
    if report is not None:
        bridge.finish(report.evaluations)
    value = model.objective(deployment)
    ledger.record(0 if report is not None else 1)
    if task.target_value is not None and value <= task.target_value:
        # greedy algorithms never fire on_progress; check their result
        ledger.request_stop(STOP_TARGET)
    return SearchResult(
        index=task.index,
        label=task.label,
        mapping=deployment.as_dict(),
        value=value,
        report=report,
    )


# ----------------------------------------------------------------------
# GA island rounds
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IslandTask:
    """One island evolving for one migration round.

    ``population`` is the resume state -- server-*index* genomes from
    the previous round (``None`` on round zero, where the island seeds
    itself: heuristics plus random fill, exactly like the serial GA).
    """

    index: int
    payload: InstancePayload
    seed: Any
    generations: int
    ga_params: tuple[tuple[str, Any], ...]
    population: tuple[tuple[int, ...], ...] | None = None
    budget: SearchBudget | None = None
    target_value: float | None = None
    flush_every: int = DEFAULT_FLUSH_EVERY


@dataclass(frozen=True)
class IslandResult:
    """Round outcome: winner plus the resume state for migration."""

    index: int
    mapping: dict[str, str]
    value: float
    report: SearchReport
    population: tuple[tuple[int, ...], ...]
    objectives: tuple[float, ...]


def run_island_task(
    task: IslandTask,
    ledger: BudgetLedger,
    clock: Clock | None = None,
) -> IslandResult:
    """Evolve one island for ``task.generations`` generations."""
    from repro.algorithms.genetic import GeneticAlgorithm

    workflow, network, model = materialize(task.payload)
    compiled = model.compiled
    server_names = compiled.server_names
    initial = None
    if task.population is not None:
        initial = [
            tuple(server_names[index] for index in genome)
            for genome in task.population
        ]
    captured: dict[str, Any] = {}

    def sink(population, objectives):
        captured["population"] = population
        captured["objectives"] = objectives

    params = dict(task.ga_params)
    params["generations"] = task.generations
    algorithm = GeneticAlgorithm(
        initial_population=initial, population_sink=sink, **params
    )
    cancel, bridge = _bridged_cancel(
        ledger, task.flush_every, task.target_value
    )
    try:
        deployment, report = algorithm.deploy_with_report(
            workflow,
            network,
            cost_model=model,
            rng=coerce_rng(task.seed),
            budget=task.budget,
            cancel=cancel,
            clock=clock,
            on_progress=bridge,
        )
    finally:
        # a crashed island must still account for its spent evaluations
        bridge.finish()
    bridge.finish(report.evaluations)
    value = model.objective(deployment)
    if task.target_value is not None and value <= task.target_value:
        ledger.request_stop(STOP_TARGET)
    server_index = compiled.server_index
    population = tuple(
        tuple(server_index[name] for name in genome)
        for genome in captured["population"]
    )
    return IslandResult(
        index=task.index,
        mapping=deployment.as_dict(),
        value=value,
        report=report,
        population=population,
        objectives=tuple(captured["objectives"]),
    )


# ----------------------------------------------------------------------
# partitioned-neighbourhood hill-climbing scans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionTask:
    """One worker's share of a cooperative best-improvement sweep.

    ``servers`` is the current trajectory state (server index per
    operation, workflow order); ``operations`` the op indices this
    worker scans. The worker prices every single-operation move of its
    partition and reports its best strict improvement.
    """

    index: int
    payload: InstancePayload
    servers: tuple[int, ...]
    operations: tuple[int, ...]
    flush_every: int = DEFAULT_FLUSH_EVERY


@dataclass(frozen=True)
class PartitionResult:
    """Best move found in one partition (``move is None``: no
    improvement in this partition)."""

    index: int
    evaluations: int
    move: tuple[int, int] | None
    value: float


def run_partition_scan(
    task: PartitionTask,
    ledger: BudgetLedger,
    clock: Clock | None = None,
) -> PartitionResult:
    """Scan one partition of the move neighbourhood incrementally."""
    _, _, model = materialize(task.payload)
    compiled = model.compiled
    op_names = compiled.op_names
    server_names = compiled.server_names
    deployment = Deployment(
        {
            op_names[op]: server_names[server]
            for op, server in enumerate(task.servers)
        }
    )
    evaluator = MoveEvaluator(model, deployment)
    current_value = evaluator.objective
    best_move: tuple[int, int] | None = None
    best_value = current_value
    evaluations = 0
    unflushed = 0
    try:
        for op in task.operations:
            if ledger.stop_requested:
                break
            original = task.servers[op]
            operation_name = op_names[op]
            for server, server_name in enumerate(server_names):
                if server == original:
                    continue
                value = evaluator.propose_value(operation_name, server_name)
                evaluations += 1
                unflushed += 1
                if value < best_value:
                    best_value = value
                    best_move = (op, server)
            if unflushed >= task.flush_every:
                ledger.record(unflushed)
                unflushed = 0
    finally:
        # the tail delta must land even when a proposal raises, or the
        # global accounting under-counts after a crashed worker
        ledger.record(unflushed)
    return PartitionResult(
        index=task.index,
        evaluations=evaluations,
        move=best_move,
        value=best_value,
    )


# ----------------------------------------------------------------------
# batch candidate pricing (fleet rebalance sharding)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PricingTask:
    """Score candidate server-vectors; returns their execution times.

    The fleet controller's rebalance scan ships each tenant's
    ``(operation, target)`` candidate rows here when
    ``FleetConfig.parallel_workers > 1``; the kernel is the same
    :class:`~repro.core.batch.BatchEvaluator` the serial path uses, so
    the returned floats -- and therefore the applied moves and the
    decision log -- are byte-identical.
    """

    index: int
    payload: InstancePayload
    rows: tuple[tuple[int, ...], ...]


def run_pricing_task(task: PricingTask) -> list[float]:
    """Price ``task.rows`` through the worker's cached batch kernel."""
    _, _, model = materialize(task.payload)
    compiled = model.compiled
    rows = [list(row) for row in task.rows]
    try:
        scores = compiled.batch_evaluator().evaluate(rows)
        return [float(value) for value in scores.execution]
    except RuntimeError:
        # NumPy-free worker: the scalar forward pass produces the
        # identical floats, one row at a time
        return [
            compiled.components(row)[0]
            for row in rows
        ]
