"""Deterministic RNG spawning for multiprocess search.

A parallel run must be a pure function of ``(seed, workers, plan)``:
re-running it reproduces the same winner byte-identically. That rules
out shipping live ``random.Random`` streams across processes (their
state cannot be split) and it rules out entropy-based child seeding.
Instead every worker derives its *own* seed string from the parent seed
and its structural position -- worker index, island index, migration
round -- and feeds it through the library's one seeding convention,
:func:`repro.core.rng.coerce_rng` (the same ``f"{seed}:{path}"`` idiom
the experiment harness has always used for per-instance streams).

Two properties follow by construction:

* workers are order-independent -- a worker's stream depends only on
  its position in the plan, never on scheduling; and
* runs are extension-stable -- adding workers or rounds never perturbs
  the streams of existing positions.
"""

from __future__ import annotations

import random

from repro.core.rng import DEFAULT_SEED, coerce_rng
from repro.exceptions import AlgorithmError

__all__ = ["spawn_seed", "spawn_rng", "require_spawnable_seed"]


def require_spawnable_seed(
    seed: int | float | str | bytes | None,
) -> int | float | str | bytes:
    """Validate that *seed* can be split deterministically across workers.

    A live ``random.Random`` is rejected: its stream cannot be forked
    into independent, reproducible per-worker streams. ``None`` maps to
    the library default seed (the documented "deterministic by default"
    convention of :mod:`repro.core.rng`).
    """
    if isinstance(seed, random.Random):
        raise AlgorithmError(
            "parallel search needs a seed value (int/str), not a live "
            "random.Random: a shared stream cannot be split "
            "deterministically across workers"
        )
    return DEFAULT_SEED if seed is None else seed


def spawn_seed(seed, *path) -> str:
    """Derive a child seed string from *seed* and a structural *path*.

    ``spawn_seed(7, "w", 3)`` -> ``"7:w:3"``; nested positions chain
    naturally (``spawn_seed(7, "island", 2, "round", 5)``). The result
    is fed to :func:`~repro.core.rng.coerce_rng`, exactly like the
    experiment harness's historical ``f"{seed}:{repetition}:{name}"``
    strings.
    """
    seed = require_spawnable_seed(seed)
    return ":".join(str(part) for part in (seed, *path))


def spawn_rng(seed, *path) -> random.Random:
    """:func:`spawn_seed` coerced into a ready ``random.Random``."""
    return coerce_rng(spawn_seed(seed, *path))
