"""Public entry points of the parallel layer.

:func:`deploy_parallel`
    One algorithm, sharded across workers under its
    :class:`~repro.parallel.specs.ShardPlan` (parallel seeded restarts,
    GA islands, or a partitioned cooperative climb).
:func:`race_portfolio`
    Many algorithms racing under one shared budget -- the portfolio
    pattern: constructive seeds fanned into polishers, first target hit
    or global budget exhaustion ends the race, best deployment wins.

Both return a :class:`~repro.parallel.runtime.ParallelOutcome` and obey
the determinism contract: a fixed ``(seed, workers, plan)`` triple
reproduces the same winner for eval-/step-capped and unbudgeted runs
(wall-clock deadlines and target stops are inherently timing-dependent
across processes; with an *inline* runtime even those are exact).
``workers=1`` is the serial escape hatch -- :func:`deploy_parallel`
then makes the exact
:meth:`~repro.algorithms.base.DeploymentAlgorithm.deploy_with_report`
call a non-parallel caller would make, byte-identical report included.
"""

from __future__ import annotations

import os
from typing import Any, Sequence

from repro.algorithms.base import DeploymentAlgorithm
from repro.algorithms.runtime import CancelToken, SearchBudget
from repro.core.clock import Clock
from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.core.rng import coerce_rng
from repro.core.workflow import Workflow
from repro.exceptions import AlgorithmError
from repro.network.topology import ServerNetwork
from repro.parallel.rng import require_spawnable_seed, spawn_seed
from repro.parallel.runtime import (
    ParallelOutcome,
    ParallelReport,
    ParallelRuntime,
    WorkerRun,
    islands,
    partition,
    race,
)
from repro.parallel.specs import (
    DEFAULT_PORTFOLIO,
    AlgorithmSpec,
    ShardPlan,
    auto_plan,
    spec_label,
)
from repro.parallel.worker import payload_from

__all__ = ["deploy_parallel", "race_portfolio", "default_workers"]


def default_workers() -> int:
    """The worker count used when callers pass ``workers=None``."""
    return max(1, os.cpu_count() or 1)


def _materialize_algorithm(
    algorithm: "AlgorithmSpec | DeploymentAlgorithm | str",
) -> "AlgorithmSpec | DeploymentAlgorithm":
    return AlgorithmSpec.coerce(algorithm)


def _build(entry: "AlgorithmSpec | DeploymentAlgorithm") -> DeploymentAlgorithm:
    return entry.build() if isinstance(entry, AlgorithmSpec) else entry


def _serial_outcome(
    entry: "AlgorithmSpec | DeploymentAlgorithm",
    workflow: Workflow,
    network: ServerNetwork,
    cost_model: CostModel | None,
    rng: Any,
    budget: SearchBudget | None,
    cancel: CancelToken | None,
    clock: Clock | None,
) -> ParallelOutcome:
    """The ``workers=1`` path: the exact serial call, wrapped.

    No ledger, no bridge, no seed spawning -- byte-identity with
    :meth:`~repro.algorithms.base.DeploymentAlgorithm.deploy_with_report`
    holds by construction, not by argument.
    """
    if cost_model is None:
        cost_model = CostModel(workflow, network)
    algorithm = _build(entry)
    deployment, report = algorithm.deploy_with_report(
        workflow,
        network,
        cost_model=cost_model,
        rng=rng,
        budget=budget,
        cancel=cancel,
        clock=clock,
    )
    value = cost_model.objective(deployment)
    run = WorkerRun(
        index=0,
        label=spec_label(entry),
        deployment=deployment,
        value=value,
        report=report,
    )
    return ParallelOutcome(
        best=deployment,
        best_value=value,
        report=report,
        parallel=ParallelReport(
            plan="serial",
            workers=1,
            winner=0,
            runs=(run,),
            evaluations=report.evaluations if report is not None else 1,
        ),
    )


def _ga_parameters(
    entry: "AlgorithmSpec | DeploymentAlgorithm",
) -> tuple[dict, int]:
    """Extract ``(constructor kwargs, total generations)`` for islands."""
    from repro.algorithms.genetic import GeneticAlgorithm

    algorithm = _build(entry)
    if not isinstance(algorithm, GeneticAlgorithm):
        raise AlgorithmError(
            "the islands plan applies to the Genetic algorithm only, "
            f"got {spec_label(entry)!r}"
        )
    params = {
        "population_size": algorithm.population_size,
        "crossover_rate": algorithm.crossover_rate,
        "mutation_rate": algorithm.mutation_rate,
        "tournament": algorithm.tournament,
        "seed_with_heuristics": algorithm.seed_with_heuristics,
        "use_batch": algorithm.use_batch,
    }
    return params, algorithm.generations


def _partition_seed_name(
    entry: "AlgorithmSpec | DeploymentAlgorithm",
) -> str | None:
    """The constructive start of a partitioned climb (or random)."""
    from repro.algorithms.local_search import HillClimbing

    if isinstance(entry, AlgorithmSpec):
        if entry.name != "HillClimbing":
            raise AlgorithmError(
                "the partition plan applies to HillClimbing only, "
                f"got {spec_label(entry)!r}"
            )
        return entry.seed_algorithm
    if not isinstance(entry, HillClimbing):
        raise AlgorithmError(
            "the partition plan applies to HillClimbing only, "
            f"got {spec_label(entry)!r}"
        )
    seed_algorithm = entry.seed_algorithm
    return None if seed_algorithm is None else seed_algorithm.name


def deploy_parallel(
    algorithm: "AlgorithmSpec | DeploymentAlgorithm | str",
    workflow: Workflow,
    network: ServerNetwork,
    cost_model: CostModel | None = None,
    workers: int | None = None,
    seed: Any = None,
    budget: SearchBudget | None = None,
    plan: "ShardPlan | str | None" = None,
    target_value: float | None = None,
    cancel: CancelToken | None = None,
    runtime: ParallelRuntime | None = None,
    inline: bool = False,
    clock: Clock | None = None,
) -> ParallelOutcome:
    """Shard one algorithm's search across *workers* processes.

    Parameters mirror :meth:`~repro.algorithms.base.DeploymentAlgorithm.
    deploy_with_report` where they overlap; the parallel-specific knobs:

    ``algorithm``
        Registry name (``"Genetic"``, ``"HillClimbing@FL-TieResolver2"``),
        an :class:`~repro.parallel.specs.AlgorithmSpec`, or a picklable
        configured instance.
    ``workers``
        Shard width; defaults to the machine's CPU count. ``1`` makes
        the exact serial call (see module docs).
    ``seed``
        Root of the deterministic per-worker RNG streams. Must be a
        *spawnable* seed (int/str/None) when ``workers > 1`` -- a live
        ``random.Random`` has one stream and cannot be split.
    ``plan``
        A :class:`~repro.parallel.specs.ShardPlan`, a plan-kind string,
        or ``None`` for the algorithm's default (islands for the GA,
        seeded restarts otherwise).
    ``target_value``
        Stop everyone once any worker's incumbent reaches this
        objective value (stop reason ``"target"``).
    ``runtime``
        Reuse a caller-owned :class:`~repro.parallel.runtime.
        ParallelRuntime` (pool + manager); otherwise one is created for
        the call and closed afterwards.
    """
    entry = _materialize_algorithm(algorithm)
    if workers is None:
        workers = runtime.workers if runtime is not None else default_workers()
    SearchBudget.validate_count("workers", workers)
    if workers == 1 and runtime is None:
        return _serial_outcome(
            entry,
            workflow,
            network,
            cost_model,
            coerce_rng(seed),
            budget,
            cancel,
            clock,
        )
    seed = require_spawnable_seed(seed)
    shard_plan = ShardPlan.coerce(plan)
    if shard_plan is None:
        shard_plan = auto_plan(entry.name)
    payload = payload_from(workflow, network, cost_model)
    owned = runtime is None
    if runtime is None:
        runtime = ParallelRuntime(workers, inline=inline, clock=clock)
    try:
        if shard_plan.kind == "islands":
            ga_params, generations = _ga_parameters(entry)
            return islands(
                runtime,
                payload,
                seed,
                generations,
                ga_params,
                shard_plan,
                budget=budget,
                target_value=target_value,
                cancel=cancel,
            )
        if shard_plan.kind == "partition":
            return partition(
                runtime,
                payload,
                workflow,
                network,
                cost_model if cost_model is not None else CostModel(
                    workflow, network
                ),
                seed,
                _partition_seed_name(entry),
                shard_plan,
                budget=budget,
                target_value=target_value,
                cancel=cancel,
            )
        label = spec_label(entry)
        racers = [
            (f"{label}#{index}", entry, spawn_seed(seed, "worker", index))
            for index in range(runtime.workers)
        ]
        return race(
            runtime,
            payload,
            racers,
            budget=budget,
            target_value=target_value,
            cancel=cancel,
            plan_label="restarts",
        )
    finally:
        if owned:
            runtime.close()


def race_portfolio(
    workflow: Workflow,
    network: ServerNetwork,
    portfolio: Sequence["AlgorithmSpec | DeploymentAlgorithm | str"] | None = None,
    cost_model: CostModel | None = None,
    workers: int | None = None,
    seed: Any = None,
    budget: SearchBudget | None = None,
    target_value: float | None = None,
    cancel: CancelToken | None = None,
    runtime: ParallelRuntime | None = None,
    inline: bool = False,
    clock: Clock | None = None,
) -> ParallelOutcome:
    """Race a portfolio of algorithms under one shared budget.

    The line-up defaults to :data:`~repro.parallel.specs.
    DEFAULT_PORTFOLIO`. With more workers than entries the portfolio
    wraps around (extra racers are fresh-seeded restarts of the line-up
    from the top); with fewer workers every entry still races, sharing
    the smaller pool. ``workers=1`` races the portfolio sequentially --
    same entries, same seeds, same merged outcome, no processes.
    """
    entries = [
        AlgorithmSpec.coerce(entry)
        for entry in (portfolio if portfolio is not None else DEFAULT_PORTFOLIO)
    ]
    if not entries:
        raise AlgorithmError("portfolio must name at least one algorithm")
    if workers is None:
        workers = runtime.workers if runtime is not None else default_workers()
    SearchBudget.validate_count("workers", workers)
    seed = require_spawnable_seed(seed)
    num_racers = max(workers, len(entries))
    racers = []
    for index in range(num_racers):
        entry = entries[index % len(entries)]
        label = spec_label(entry)
        if index >= len(entries):
            label = f"{label}#{index}"
        racers.append((label, entry, spawn_seed(seed, "racer", index)))
    payload = payload_from(workflow, network, cost_model)
    owned = runtime is None
    if runtime is None:
        runtime = ParallelRuntime(workers, inline=inline, clock=clock)
    try:
        return race(
            runtime,
            payload,
            racers,
            budget=budget,
            target_value=target_value,
            cancel=cancel,
            plan_label="portfolio",
        )
    finally:
        if owned:
            runtime.close()
