"""Picklable algorithm specs, shard plans and the default portfolio.

Worker processes cannot receive live algorithm objects bound to problem
data, and the CLI needs a textual way to name "FLTR2-seeded hill
climbing". :class:`AlgorithmSpec` is the common currency: a frozen,
picklable description -- registry name, constructor parameters, and an
optional constructive *seed algorithm* for the refinement family --
that each worker :meth:`~AlgorithmSpec.build`\\ s locally.

:class:`ShardPlan` names how one algorithm's work is split across
workers (``restarts`` / ``islands`` / ``partition``; see
:mod:`repro.parallel.runtime` for the protocols), and
:data:`DEFAULT_PORTFOLIO` is the racing line-up used when the caller
does not provide one: the paper's strongest constructive baselines
(HOLM, FLTR2) fanned into hill-climbing / annealing polishers, plus a
genetic improver and a cold random-start climber for diversity.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any

from repro.algorithms.base import DeploymentAlgorithm, get_algorithm
from repro.algorithms.runtime import SearchBudget
from repro.exceptions import AlgorithmError

__all__ = [
    "AlgorithmSpec",
    "ShardPlan",
    "PLAN_KINDS",
    "DEFAULT_PORTFOLIO",
    "auto_plan",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """A picklable recipe for one configured deployment algorithm.

    Attributes
    ----------
    name:
        Registry name of the algorithm class.
    seed_algorithm:
        Optional registry name of the constructive algorithm passed as
        the ``seed_algorithm`` constructor argument (the refinement
        family's starting-point hook).
    params:
        Remaining constructor keyword arguments as a sorted tuple of
        ``(key, value)`` pairs -- tuple, not dict, so specs are
        hashable and their labels deterministic.
    """

    name: str
    seed_algorithm: str | None = None
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def of(
        cls, name: str, seed_algorithm: str | None = None, **params
    ) -> "AlgorithmSpec":
        """Validated constructor (names resolved, kwargs accepted)."""
        algorithm_cls = get_algorithm(name)
        accepted = inspect.signature(algorithm_cls.__init__).parameters
        if seed_algorithm is not None:
            get_algorithm(seed_algorithm)
            if "seed_algorithm" not in accepted:
                raise AlgorithmError(
                    f"algorithm {name!r} takes no seed_algorithm; "
                    f"cannot build {name}@{seed_algorithm}"
                )
        for key in params:
            if key not in accepted:
                raise AlgorithmError(
                    f"algorithm {name!r} has no parameter {key!r}"
                )
        return cls(
            name=name,
            seed_algorithm=seed_algorithm,
            params=tuple(sorted(params.items())),
        )

    @classmethod
    def parse(cls, text: str) -> "AlgorithmSpec":
        """Parse the CLI syntax ``Name`` or ``Name@SeedName``.

        ``"HillClimbing@HeavyOps-LargeMsgs"`` is FLTR-style notation
        for "HillClimbing seeded with HeavyOps-LargeMsgs".
        """
        name, _, seed_name = text.partition("@")
        return cls.of(name.strip(), seed_name.strip() or None)

    @classmethod
    def coerce(
        cls, entry: "AlgorithmSpec | DeploymentAlgorithm | str"
    ) -> "AlgorithmSpec | DeploymentAlgorithm":
        """Accept specs, registry names, or ready (picklable) instances."""
        if isinstance(entry, (AlgorithmSpec, DeploymentAlgorithm)):
            return entry
        return cls.parse(entry)

    @property
    def label(self) -> str:
        """Human/CLI label, invertible through :meth:`parse` when bare."""
        label = self.name
        if self.seed_algorithm is not None:
            label = f"{label}@{self.seed_algorithm}"
        if self.params:
            details = ",".join(f"{k}={v}" for k, v in self.params)
            label = f"{label}({details})"
        return label

    def build(self) -> DeploymentAlgorithm:
        """Instantiate the algorithm (in the worker process, usually)."""
        kwargs = dict(self.params)
        if self.seed_algorithm is not None:
            kwargs["seed_algorithm"] = get_algorithm(self.seed_algorithm)()
        return get_algorithm(self.name)(**kwargs)


def spec_label(entry: "AlgorithmSpec | DeploymentAlgorithm") -> str:
    """Label for either currency accepted by the fan-out layer."""
    if isinstance(entry, AlgorithmSpec):
        return entry.label
    return entry.name


#: Valid :attr:`ShardPlan.kind` values.
PLAN_KINDS = ("restarts", "islands", "partition")


@dataclass(frozen=True)
class ShardPlan:
    """How one algorithm's search is sharded across workers.

    Attributes
    ----------
    kind:
        ``"restarts"`` -- every worker runs the full algorithm from its
        own spawned RNG stream; best run wins. Works for any algorithm.
        ``"islands"`` -- GA islands evolving in parallel with periodic
        ring migration of elites (Genetic only).
        ``"partition"`` -- one cooperative hill-climbing trajectory
        whose move neighbourhood is partitioned across workers each
        sweep (HillClimbing only).
    migration_every:
        Islands: generations evolved between migration barriers.
    max_rounds:
        Partition: cap on cooperative sweeps (mirrors the serial
        climber's ``max_iterations`` default).
    """

    kind: str = "restarts"
    migration_every: int = 5
    max_rounds: int = 1_000

    def __post_init__(self) -> None:
        if self.kind not in PLAN_KINDS:
            raise AlgorithmError(
                f"plan kind must be one of {PLAN_KINDS}, got {self.kind!r}"
            )
        SearchBudget.validate_count("migration_every", self.migration_every)
        SearchBudget.validate_count("max_rounds", self.max_rounds)

    @classmethod
    def coerce(cls, plan: "ShardPlan | str | None") -> "ShardPlan | None":
        """``None`` passes through; strings become default-knob plans."""
        if plan is None or isinstance(plan, ShardPlan):
            return plan
        return cls(kind=plan)


def auto_plan(name: str) -> ShardPlan:
    """The default plan for an algorithm: islands for the GA (its
    population structure is what migration exploits), parallel seeded
    restarts for everything else. The ``partition`` plan is opt-in --
    it changes the search from independent trajectories to one
    cooperative trajectory, which callers should choose deliberately.
    """
    if name == "Genetic":
        return ShardPlan(kind="islands")
    return ShardPlan(kind="restarts")


#: The default racing line-up for :func:`repro.parallel.api.
#: race_portfolio`: constructive seeds fanned into polishers, ordered
#: strongest-first so truncation to few workers keeps the best entries.
DEFAULT_PORTFOLIO: tuple[AlgorithmSpec, ...] = (
    AlgorithmSpec("HillClimbing", "HeavyOps-LargeMsgs"),
    AlgorithmSpec("HillClimbing", "FL-TieResolver2"),
    AlgorithmSpec("Genetic"),
    AlgorithmSpec("SimulatedAnnealing", "HeavyOps-LargeMsgs"),
    AlgorithmSpec("SimulatedAnnealing", "FL-TieResolver2"),
    AlgorithmSpec("HillClimbing"),
)
