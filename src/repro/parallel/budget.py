"""One search budget, shared by every worker of a parallel run.

The serial runtime enforces a :class:`~repro.algorithms.runtime.
SearchBudget` inside a single process. A parallel run must keep the
*global* semantics -- "at most N objective evaluations in total, stop
everyone at the deadline, stop everyone once a target value is reached"
-- while each worker still drives its own local
:class:`~repro.algorithms.runtime.SearchRuntime`. Two cooperating
pieces provide that:

:func:`slice_budget`
    Deterministic pre-partitioning of the countable limits. Worker *i*
    of *n* receives ``max_evals // n`` evaluations (the remainder goes
    to the lowest indices), and likewise for ``max_steps``; deadlines
    pass through unchanged. Because the slices are a pure function of
    ``(budget, workers, index)``, eval- and step-capped runs stay
    reproducible -- no worker's share depends on scheduling.
:class:`BudgetLedger`
    The shared accounting channel. Workers flush their evaluation
    deltas into it in batches (:class:`WorkerBridge`), the parent and
    any worker can request a cooperative stop (deadline fired, target
    value reached, external cancellation), and everyone polls
    :attr:`~BudgetLedger.stop_requested` between steps. Two
    implementations share the interface: :class:`InlineLedger` (plain
    attributes, for in-process execution and deterministic tests) and
    :class:`SharedLedger` (``multiprocessing.Manager`` proxies, for
    real worker processes; proxies are picklable under every start
    method).

Accounting granularity: a worker flushes after at most ``flush_every``
locally accumulated evaluations, and its local runtime stops within one
step of its slice. The global evaluation count therefore never
overshoots ``max_evals`` by more than one batch per worker -- the bound
the budget tests pin.
"""

from __future__ import annotations

from typing import Callable

from repro.algorithms.runtime import (
    STOP_CANCELLED,
    STOP_DEADLINE,
    STOP_MAX_EVALS,
    CancelToken,
    SearchBudget,
    SearchProgress,
)

__all__ = [
    "STOP_TARGET",
    "slice_budget",
    "BudgetLedger",
    "InlineLedger",
    "SharedLedger",
    "WorkerBridge",
    "DEFAULT_FLUSH_EVERY",
]

#: Stop reason recorded when a worker reaches the caller's target value.
STOP_TARGET = "target"

#: Default evaluation-batch size between ledger flushes. Large enough
#: that cheap one-eval steps (simulated annealing) do not pay one IPC
#: round-trip per step, small enough that cancellation propagates
#: quickly relative to any realistic budget.
DEFAULT_FLUSH_EVERY = 256


def slice_budget(
    budget: SearchBudget | None, workers: int, index: int
) -> SearchBudget | None:
    """Worker *index*'s deterministic share of a global *budget*.

    Countable limits are divided evenly with the remainder assigned to
    the lowest worker indices; the wall-clock deadline is shared, not
    divided (all workers race the same clock). Workers beyond a tiny
    ``max_evals``/``max_steps`` (fewer units than workers) receive the
    floor of one unit -- the anytime contract needs at least the first
    step -- so a degenerate budget can overshoot by at most one unit
    per surplus worker.
    """
    if budget is None:
        return None
    SearchBudget.validate_count("workers", workers)
    if not 0 <= index < workers:
        raise ValueError(f"worker index {index} outside range({workers})")

    def share(total: int | None) -> int | None:
        if total is None:
            return None
        base, remainder = divmod(total, workers)
        return max(1, base + (1 if index < remainder else 0))

    return SearchBudget(
        max_steps=share(budget.max_steps),
        max_evals=share(budget.max_evals),
        deadline_s=budget.deadline_s,
    )


class BudgetLedger:
    """Interface of the shared accounting channel (see module docs).

    ``record`` adds a worker's evaluation delta and trips the
    evaluation cap; ``request_stop`` records the first stop reason and
    makes :attr:`stop_requested` true for everyone. Implementations are
    sticky like :class:`~repro.algorithms.runtime.CancelToken`: create
    a fresh ledger per parallel run.
    """

    def record(self, evals: int) -> None:
        """Add a worker's evaluation delta; trips the global eval cap."""
        raise NotImplementedError

    @property
    def evaluations(self) -> int:
        """Total evaluations recorded across all workers."""
        raise NotImplementedError

    def request_stop(self, reason: str) -> None:
        """Record the first stop *reason*; later requests are ignored."""
        raise NotImplementedError

    @property
    def stop_requested(self) -> bool:
        """True once any stop reason was recorded."""
        raise NotImplementedError

    @property
    def stop_reason(self) -> str:
        """The first recorded stop reason (empty while running)."""
        raise NotImplementedError


class InlineLedger(BudgetLedger):
    """Single-process ledger: plain attributes, no synchronisation.

    Used by the inline execution mode (tasks run sequentially in the
    parent) and by the budget tests, where it makes accounting a pure
    function of the recorded deltas.
    """

    def __init__(self, max_evals: int | None = None):
        self.max_evals = max_evals
        self._evals = 0
        self._reason = ""

    def record(self, evals: int) -> None:
        """Add a worker's evaluation delta; trips the global eval cap."""
        if evals <= 0:
            return
        self._evals += evals
        if (
            self.max_evals is not None
            and self._evals >= self.max_evals
            and not self._reason
        ):
            self._reason = STOP_MAX_EVALS

    @property
    def evaluations(self) -> int:
        """Total evaluations recorded across all workers."""
        return self._evals

    def request_stop(self, reason: str) -> None:
        """Record the first stop *reason*; later requests are ignored."""
        if not self._reason:
            self._reason = reason

    @property
    def stop_requested(self) -> bool:
        """True once any stop reason was recorded."""
        return bool(self._reason)

    @property
    def stop_reason(self) -> str:
        """The first recorded stop reason (empty while running)."""
        return self._reason


class SharedLedger(BudgetLedger):
    """Cross-process ledger over ``multiprocessing.Manager`` proxies.

    Built from a live manager (``SharedLedger(manager, max_evals=...)``).
    The proxy handles pickle cleanly under fork *and* spawn start
    methods, which is what lets tasks carry the ledger through a
    ``ProcessPoolExecutor`` submit call; the counter update runs under
    the manager lock, so concurrent flushes never lose deltas.
    """

    def __init__(self, manager, max_evals: int | None = None):
        self.max_evals = max_evals
        self._state = manager.dict()
        self._state["evals"] = 0
        self._state["reason"] = ""
        self._lock = manager.Lock()

    def record(self, evals: int) -> None:
        """Add a worker's evaluation delta; trips the global eval cap."""
        if evals <= 0:
            return
        with self._lock:
            total = self._state["evals"] + evals
            self._state["evals"] = total
            if (
                self.max_evals is not None
                and total >= self.max_evals
                and not self._state["reason"]
            ):
                self._state["reason"] = STOP_MAX_EVALS

    @property
    def evaluations(self) -> int:
        """Total evaluations recorded across all workers."""
        return self._state["evals"]

    def request_stop(self, reason: str) -> None:
        """Record the first stop *reason*; later requests are ignored."""
        with self._lock:
            if not self._state["reason"]:
                self._state["reason"] = reason

    @property
    def stop_requested(self) -> bool:
        """True once any stop reason was recorded."""
        return bool(self._state["reason"])

    @property
    def stop_reason(self) -> str:
        """The first recorded stop reason (empty while running)."""
        return self._state["reason"]


class WorkerBridge:
    """Glue between one worker's local search and the shared ledger.

    Installed as the worker's ``on_progress`` callback. Per invocation
    it (a) accumulates the evaluation delta since the last flush and
    pushes it to the ledger once ``flush_every`` is reached, (b) trips
    the shared target stop when the worker's incumbent reaches
    ``target_value``, and (c) propagates any shared stop into the
    worker's local :class:`~repro.algorithms.runtime.CancelToken` --
    ledger reads are paid only at flush boundaries, so cheap steps stay
    cheap. Call :meth:`finish` -- in a ``try/finally`` around the
    search -- to flush the tail delta: on the success path pass the
    report's exact total, on an exception path call it with no
    arguments and the evaluations seen by the last progress callback
    are flushed instead, so a crashed worker never under-counts the
    shared ledger by more than the steps after its final callback.
    """

    def __init__(
        self,
        ledger: BudgetLedger,
        cancel: CancelToken,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        target_value: float | None = None,
        chain: Callable[[SearchProgress], None] | None = None,
    ):
        self.ledger = ledger
        self.cancel = cancel
        self.flush_every = SearchBudget.validate_count(
            "flush_every", flush_every
        )
        self.target_value = target_value
        self.chain = chain
        self._reported = 0
        self._seen = 0

    def __call__(self, progress: SearchProgress) -> None:
        self._seen = max(self._seen, progress.evaluations)
        if self.chain is not None:
            self.chain(progress)
        if (
            self.target_value is not None
            and progress.best_value is not None
            and progress.best_value <= self.target_value
        ):
            self.ledger.request_stop(STOP_TARGET)
            self.cancel.cancel(STOP_TARGET)
            return
        pending = progress.evaluations - self._reported
        if pending >= self.flush_every:
            self._reported = progress.evaluations
            self.ledger.record(pending)
            if self.ledger.stop_requested:
                self.cancel.cancel(self.ledger.stop_reason)

    def finish(self, total_evaluations: int | None = None) -> None:
        """Flush the evaluations accumulated since the last batch.

        With no argument (the exception path) the count the last
        progress callback reported is flushed; an explicit total (the
        report's exact figure, which may exceed the last callback's on
        generators that evaluate between yields) takes precedence when
        larger. Idempotent: a ``finally`` clause may call it after the
        success path already has.
        """
        total = (
            self._seen
            if total_evaluations is None
            else max(total_evaluations, self._seen)
        )
        pending = total - self._reported
        if pending > 0:
            self._reported = total
            self.ledger.record(pending)


#: Stop reasons a parallel run can surface beyond the serial set, in
#: merge priority order (first match wins when workers disagree; see
#: ``repro.parallel.runtime.merge_stop_reason``).
MERGE_PRIORITY = (
    STOP_CANCELLED,
    STOP_TARGET,
    STOP_DEADLINE,
)
