"""The multiprocess fan-out runtime: pools, plans, merging.

:class:`ParallelRuntime` owns the mechanics every plan shares -- a
lazily created ``ProcessPoolExecutor`` plus ``multiprocessing.Manager``
(or a purely sequential *inline* mode for workers-in-this-process
execution, deterministic tests and clock injection), ordered task
fan-out with a parent-side watchdog loop that propagates external
cancellation and the global deadline into the shared
:class:`~repro.parallel.budget.BudgetLedger`, and result merging.

Three sharding protocols run on top of it (see DESIGN §11):

:func:`race`
    Independent full searches -- parallel seeded restarts of one
    algorithm, or a portfolio of different algorithms -- each under a
    deterministic :func:`~repro.parallel.budget.slice_budget` share.
    The global best wins; ties break on the lowest worker index.
:func:`islands`
    The GA island model. Islands evolve ``migration_every`` generations
    per round behind a barrier; between rounds the coordinator performs
    ring migration (island *i* receives the elite of island *i-1*,
    replacing its worst genome) and re-seeds each island's next round
    from ``seed:island:i:round:r``. Populations travel as server-index
    genomes; budgets are re-sliced each round from the ledger's actual
    spend (deterministic, because rounds are barriers and workers flush
    exact totals).
:func:`partition`
    One cooperative hill-climbing trajectory: each sweep, every worker
    scans the single-operation moves of its own operation partition
    (``ops[w::workers]``), the coordinator applies the globally best
    strict improvement (ties to the lowest worker index) and
    broadcasts the updated server vector.

Everything returns a :class:`ParallelOutcome`: the winning deployment,
its objective, a merged serial-shaped
:class:`~repro.algorithms.runtime.SearchReport` (summed accounting, a
merged anytime curve, one stop reason), and the per-worker
:class:`ParallelReport`.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.algorithms.base import DeploymentAlgorithm, get_algorithm
from repro.algorithms.runtime import (
    STOP_CANCELLED,
    STOP_DEADLINE,
    STOP_EXHAUSTED,
    STOP_MAX_EVALS,
    STOP_MAX_STEPS,
    CancelToken,
    SearchBudget,
    SearchReport,
)
from repro.core.clock import MONOTONIC, Clock
from repro.core.mapping import Deployment
from repro.core.rng import coerce_rng
from repro.parallel.budget import (
    DEFAULT_FLUSH_EVERY,
    STOP_TARGET,
    BudgetLedger,
    InlineLedger,
    SharedLedger,
    slice_budget,
)
from repro.parallel.rng import spawn_seed
from repro.parallel.specs import AlgorithmSpec, ShardPlan
from repro.parallel.worker import (
    InstancePayload,
    IslandTask,
    PartitionTask,
    SearchTask,
    run_island_task,
    run_partition_scan,
    run_search_task,
)

__all__ = [
    "ParallelRuntime",
    "WorkerRun",
    "ParallelReport",
    "ParallelOutcome",
    "race",
    "islands",
    "partition",
    "merge_curves",
]


# ----------------------------------------------------------------------
# outcome containers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerRun:
    """One worker's contribution, coordinator side."""

    index: int
    label: str
    deployment: Deployment
    value: float
    report: SearchReport | None


@dataclass(frozen=True)
class ParallelReport:
    """Structured account of one parallel run.

    ``runs`` holds one entry per logical worker position (racer,
    island, or partition), in deterministic plan order -- never in
    completion order. ``winner`` indexes into it.
    """

    plan: str
    workers: int
    winner: int
    runs: tuple[WorkerRun, ...]
    evaluations: int

    def describe(self) -> str:
        """One-line human summary (used by the CLI)."""
        best = self.runs[self.winner]
        return (
            f"plan {self.plan}, {self.workers} workers, "
            f"{len(self.runs)} runs, {self.evaluations} evaluations, "
            f"winner: {best.label}"
        )


@dataclass(frozen=True)
class ParallelOutcome:
    """What every plan returns (see module docs)."""

    best: Deployment
    best_value: float
    report: SearchReport | None
    parallel: ParallelReport


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------
def merge_curves(
    curves: Sequence[tuple[tuple[int, Any], ...]],
) -> tuple[tuple[int, Any], ...]:
    """Merge per-worker anytime curves into one best-so-far curve.

    Worker-local steps are the only cross-process ordering that is
    *reproducible* (wall-clock interleavings are not), so entries merge
    sorted by ``(step, worker_index)`` and the result keeps strict
    improvements only. Read it as "the best value any worker had
    reached by its k-th step".
    """
    tagged = [
        (step, worker, value)
        for worker, curve in enumerate(curves)
        for step, value in curve
    ]
    tagged.sort(key=lambda entry: (entry[0], entry[1]))
    merged: list[tuple[int, Any]] = []
    best = None
    for step, _, value in tagged:
        if best is None or value < best:
            best = value
            merged.append((step, value))
    return tuple(merged)


def _merge_stop_reason(
    ledger: BudgetLedger,
    runs: Sequence[WorkerRun],
    budget: SearchBudget | None,
) -> str:
    """One stop reason for the merged report (deterministic for
    deterministic runs: priority order, then worker order)."""
    if ledger.stop_reason in (STOP_CANCELLED, STOP_TARGET, STOP_DEADLINE):
        return ledger.stop_reason
    reasons = [
        run.report.stop_reason for run in runs if run.report is not None
    ]
    for candidate in (STOP_DEADLINE, STOP_MAX_EVALS, STOP_MAX_STEPS):
        if candidate in reasons:
            return candidate
    for reason in reasons:
        if reason != STOP_EXHAUSTED:
            return reason
    return STOP_EXHAUSTED


def _merged_outcome(
    plan_label: str,
    workers: int,
    runs: Sequence[WorkerRun],
    ledger: BudgetLedger,
    budget: SearchBudget | None,
    elapsed_s: float,
) -> ParallelOutcome:
    """Reduce worker runs to the global best + merged report."""
    winner = min(range(len(runs)), key=lambda i: (runs[i].value, i))
    reports = [run.report for run in runs if run.report is not None]
    merged = SearchReport(
        steps=sum(r.steps for r in reports),
        evaluations=max(
            ledger.evaluations, sum(r.evaluations for r in reports)
        ),
        accepted=sum(r.accepted for r in reports),
        rejected=sum(r.rejected for r in reports),
        best_value=runs[winner].value,
        curve=merge_curves([r.curve for r in reports]),
        stop_reason=_merge_stop_reason(ledger, runs, budget),
        elapsed_s=elapsed_s,
    )
    return ParallelOutcome(
        best=runs[winner].deployment,
        best_value=runs[winner].value,
        report=merged,
        parallel=ParallelReport(
            plan=plan_label,
            workers=workers,
            winner=winner,
            runs=tuple(runs),
            evaluations=merged.evaluations,
        ),
    )


# ----------------------------------------------------------------------
# the runtime
# ----------------------------------------------------------------------
class ParallelRuntime:
    """Owns the worker pool and drives ordered task fan-out.

    Parameters
    ----------
    workers:
        Logical worker count: pool size, and the shard width every plan
        uses (number of racers/islands/partitions). Must be >= 1.
    inline:
        When true, no processes are created: tasks run sequentially in
        the parent, in task order, against an
        :class:`~repro.parallel.budget.InlineLedger`. Semantically the
        same plans (identical seeds, slices and merge), which makes it
        the vehicle for deterministic tests, injected clocks, and
        environments where multiprocessing is unavailable.
    flush_every:
        Evaluation-batch size of the workers' ledger flushes.
    clock:
        Parent-side clock for the global deadline watchdog and elapsed
        accounting; in inline mode it is also handed to each task's
        local :class:`~repro.algorithms.runtime.SearchRuntime`.
    start_method:
        Optional ``multiprocessing`` start method (``"fork"``,
        ``"spawn"``, ``"forkserver"``); platform default when ``None``.
    poll_s:
        Watchdog period of the parent wait loop.

    Use as a context manager, or call :meth:`close` -- a runtime may
    serve many plan invocations (the fleet controller keeps one).
    """

    def __init__(
        self,
        workers: int,
        inline: bool = False,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        clock: Clock | None = None,
        start_method: str | None = None,
        poll_s: float = 0.05,
    ):
        SearchBudget.validate_count("workers", workers)
        self.workers = workers
        self.inline = inline or workers == 1
        self.flush_every = SearchBudget.validate_count(
            "flush_every", flush_every
        )
        self.clock = clock if clock is not None else MONOTONIC
        self.start_method = start_method
        self.poll_s = poll_s
        self._pool: ProcessPoolExecutor | None = None
        self._manager = None

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "ParallelRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool and manager down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing

            context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method is not None
                else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return self._pool

    def make_ledger(self, max_evals: int | None = None) -> BudgetLedger:
        """A fresh ledger of the right kind for this runtime."""
        if self.inline:
            return InlineLedger(max_evals)
        if self._manager is None:
            import multiprocessing

            self._manager = multiprocessing.Manager()
        return SharedLedger(self._manager, max_evals)

    # -- fan-out -------------------------------------------------------
    def execute(
        self,
        fn: Callable,
        tasks: Sequence[Any],
        ledger: BudgetLedger,
        deadline_at: float | None = None,
        cancel: CancelToken | None = None,
    ) -> list[Any]:
        """Run ``fn(task, ledger)`` for every task; results in task order.

        Process mode submits everything and babysits the futures: every
        ``poll_s`` the parent folds an external cancellation or the
        global deadline into the ledger, which workers observe at their
        next flush boundary. Inline mode runs tasks sequentially,
        re-checking the same conditions between tasks and shrinking
        each task's deadline share to the time actually remaining.
        """
        if self.inline:
            return self._execute_inline(fn, tasks, ledger, deadline_at, cancel)
        pool = self._ensure_pool()
        futures = [pool.submit(fn, task, ledger) for task in tasks]
        pending = set(futures)
        while pending:
            done, pending = wait(
                pending, timeout=self.poll_s, return_when=FIRST_COMPLETED
            )
            self._watchdog(ledger, deadline_at, cancel)
        return [future.result() for future in futures]

    def _watchdog(
        self,
        ledger: BudgetLedger,
        deadline_at: float | None,
        cancel: CancelToken | None,
    ) -> None:
        if cancel is not None and cancel.cancelled:
            ledger.request_stop(STOP_CANCELLED)
        if deadline_at is not None and self.clock() >= deadline_at:
            ledger.request_stop(STOP_DEADLINE)

    def map_plain(self, fn: Callable, tasks: Sequence[Any]) -> list[Any]:
        """Fan ``fn(task)`` out with no ledger and no watchdog -- for
        short, unbudgeted work such as fleet candidate pricing."""
        if self.inline:
            return [fn(task) for task in tasks]
        pool = self._ensure_pool()
        return list(pool.map(fn, tasks))

    def _execute_inline(
        self, fn, tasks, ledger, deadline_at, cancel
    ) -> list[Any]:
        results = []
        for task in tasks:
            self._watchdog(ledger, deadline_at, cancel)
            budget = getattr(task, "budget", None)
            if (
                budget is not None
                and budget.deadline_s is not None
                and deadline_at is not None
            ):
                # sequential execution: this task's share of the shared
                # deadline is whatever wall clock is actually left
                remaining = deadline_at - self.clock()
                if remaining <= 0:
                    ledger.request_stop(STOP_DEADLINE)
                    remaining = None
                task = dataclasses.replace(
                    task,
                    budget=dataclasses.replace(
                        budget, deadline_s=remaining
                    ),
                )
            results.append(fn(task, ledger, self.clock))
        return results


# ----------------------------------------------------------------------
# plans
# ----------------------------------------------------------------------
def race(
    runtime: ParallelRuntime,
    payload: InstancePayload,
    racers: Sequence[tuple[str, "AlgorithmSpec | DeploymentAlgorithm", Any]],
    budget: SearchBudget | None = None,
    target_value: float | None = None,
    cancel: CancelToken | None = None,
    plan_label: str = "restarts",
) -> ParallelOutcome:
    """Fan independent full searches out and keep the global best.

    ``racers`` is a deterministic sequence of ``(label, algorithm,
    seed)`` -- the portfolio or restart line-up with pre-spawned
    per-worker seeds. Each racer receives its
    :func:`~repro.parallel.budget.slice_budget` share.
    """
    start = runtime.clock()
    ledger = runtime.make_ledger(budget.max_evals if budget else None)
    deadline_at = (
        start + budget.deadline_s
        if budget is not None and budget.deadline_s is not None
        else None
    )
    tasks = [
        SearchTask(
            index=index,
            label=label,
            payload=payload,
            algorithm=algorithm,
            seed=seed,
            budget=slice_budget(budget, len(racers), index),
            target_value=target_value,
            flush_every=runtime.flush_every,
        )
        for index, (label, algorithm, seed) in enumerate(racers)
    ]
    results = runtime.execute(
        run_search_task, tasks, ledger, deadline_at, cancel
    )
    runs = [
        WorkerRun(
            index=result.index,
            label=result.label,
            deployment=Deployment(result.mapping),
            value=result.value,
            report=result.report,
        )
        for result in results
    ]
    return _merged_outcome(
        plan_label,
        runtime.workers,
        runs,
        ledger,
        budget,
        runtime.clock() - start,
    )


def _argmin(values: Sequence[float]) -> int:
    return min(range(len(values)), key=lambda i: (values[i], i))


def _argmax(values: Sequence[float]) -> int:
    return max(range(len(values)), key=lambda i: (values[i], -i))


def islands(
    runtime: ParallelRuntime,
    payload: InstancePayload,
    seed,
    generations: int,
    ga_params: dict,
    plan: ShardPlan,
    budget: SearchBudget | None = None,
    target_value: float | None = None,
    cancel: CancelToken | None = None,
) -> ParallelOutcome:
    """GA island model with periodic ring migration (see module docs)."""
    start = runtime.clock()
    num_islands = runtime.workers
    max_evals = budget.max_evals if budget is not None else None
    ledger = runtime.make_ledger(max_evals)
    deadline_at = (
        start + budget.deadline_s
        if budget is not None and budget.deadline_s is not None
        else None
    )
    params = tuple(sorted(ga_params.items()))
    populations: list[tuple[tuple[int, ...], ...] | None]
    populations = [None] * num_islands

    # per-island accumulators across rounds
    best_value = [None] * num_islands
    best_mapping: list[dict | None] = [None] * num_islands
    steps = [0] * num_islands
    evals = [0] * num_islands
    accepted = [0] * num_islands
    rejected = [0] * num_islands
    curves: list[list[tuple[int, Any]]] = [[] for _ in range(num_islands)]
    last_reason = [STOP_EXHAUSTED] * num_islands

    done_generations = 0
    round_index = 0
    while done_generations < generations:
        if cancel is not None and cancel.cancelled:
            ledger.request_stop(STOP_CANCELLED)
        if deadline_at is not None and runtime.clock() >= deadline_at:
            ledger.request_stop(STOP_DEADLINE)
        if round_index > 0 and ledger.stop_requested:
            # round zero always runs: workers see the pre-tripped stop
            # and still produce their initial population (the anytime
            # contract the serial runtime keeps under pre-cancellation)
            break
        round_budget = budget
        if max_evals is not None:
            remaining_evals = max_evals - ledger.evaluations
            if remaining_evals <= 0:
                break
            round_budget = SearchBudget(
                max_evals=remaining_evals, deadline_s=budget.deadline_s
            )
        round_generations = min(
            plan.migration_every, generations - done_generations
        )
        tasks = [
            IslandTask(
                index=island,
                payload=payload,
                seed=spawn_seed(seed, "island", island, "round", round_index),
                generations=round_generations,
                ga_params=params,
                population=populations[island],
                budget=slice_budget(round_budget, num_islands, island),
                target_value=target_value,
                flush_every=runtime.flush_every,
            )
            for island in range(num_islands)
        ]
        results = runtime.execute(
            run_island_task, tasks, ledger, deadline_at, cancel
        )
        for island, result in enumerate(results):
            report = result.report
            offset = steps[island]
            curves[island].extend(
                (offset + step, value) for step, value in report.curve
            )
            steps[island] += report.steps
            evals[island] += report.evaluations
            accepted[island] += report.accepted
            rejected[island] += report.rejected
            last_reason[island] = report.stop_reason
            if best_value[island] is None or result.value < best_value[island]:
                best_value[island] = result.value
                best_mapping[island] = result.mapping

        # ring migration: island i adopts the elite of island i-1 in
        # place of its own worst genome (identity ring for one island)
        next_populations = [list(result.population) for result in results]
        if num_islands > 1:
            for island in range(num_islands):
                donor = results[(island - 1) % num_islands]
                elite = donor.population[_argmin(donor.objectives)]
                worst = _argmax(results[island].objectives)
                next_populations[island][worst] = elite
        populations = [tuple(pop) for pop in next_populations]
        done_generations += round_generations
        round_index += 1

    runs = [
        WorkerRun(
            index=island,
            label=f"island:{island}",
            deployment=Deployment(best_mapping[island]),
            value=best_value[island],
            report=SearchReport(
                steps=steps[island],
                evaluations=evals[island],
                accepted=accepted[island],
                rejected=rejected[island],
                best_value=best_value[island],
                curve=tuple(curves[island]),
                stop_reason=last_reason[island],
                elapsed_s=0.0,
            ),
        )
        for island in range(num_islands)
    ]
    return _merged_outcome(
        "islands",
        runtime.workers,
        runs,
        ledger,
        budget,
        runtime.clock() - start,
    )


def partition(
    runtime: ParallelRuntime,
    payload: InstancePayload,
    workflow,
    network,
    cost_model,
    seed,
    seed_algorithm_name: str | None,
    plan: ShardPlan,
    budget: SearchBudget | None = None,
    target_value: float | None = None,
    cancel: CancelToken | None = None,
) -> ParallelOutcome:
    """Partitioned-neighbourhood cooperative hill climbing.

    The coordinator holds the single trajectory (a server-index
    vector); each sweep fans the ``M x (N - 1)`` move scan out by
    operation partition and applies the globally best strict
    improvement. Equivalent to serial best-improvement hill climbing on
    the same start whenever per-partition bests are exact -- which they
    are, the workers price with the same incremental evaluator.
    """
    start = runtime.clock()
    num_workers = runtime.workers
    max_evals = budget.max_evals if budget is not None else None
    ledger = runtime.make_ledger(max_evals)
    deadline_at = (
        start + budget.deadline_s
        if budget is not None and budget.deadline_s is not None
        else None
    )
    start_rng = coerce_rng(spawn_seed(seed, "start"))
    if seed_algorithm_name is not None:
        starting = get_algorithm(seed_algorithm_name)().deploy(
            workflow, network, cost_model=cost_model, rng=start_rng
        )
    else:
        starting = Deployment.random(workflow, network, start_rng)
    compiled = cost_model.compiled
    servers = compiled.server_vector(starting)
    current_value = cost_model.objective(starting)
    ledger.record(1)
    partitions = [
        tuple(range(compiled.num_ops))[w::num_workers]
        for w in range(num_workers)
    ]
    worker_evals = [0] * num_workers
    worker_accepted = [0] * num_workers
    curve: list[tuple[int, Any]] = [(1, current_value)]
    rounds = 0
    stop_reason = STOP_EXHAUSTED
    for _ in range(plan.max_rounds):
        if cancel is not None and cancel.cancelled:
            ledger.request_stop(STOP_CANCELLED)
        if deadline_at is not None and runtime.clock() >= deadline_at:
            ledger.request_stop(STOP_DEADLINE)
        if target_value is not None and current_value <= target_value:
            ledger.request_stop(STOP_TARGET)
        if ledger.stop_requested:
            stop_reason = ledger.stop_reason
            break
        if max_evals is not None and ledger.evaluations >= max_evals:
            stop_reason = STOP_MAX_EVALS
            break
        tasks = [
            PartitionTask(
                index=worker,
                payload=payload,
                servers=tuple(servers),
                operations=partitions[worker],
                flush_every=runtime.flush_every,
            )
            for worker in range(num_workers)
            if partitions[worker]
        ]
        results = runtime.execute(
            run_partition_scan, tasks, ledger, deadline_at, cancel
        )
        rounds += 1
        for result in results:
            worker_evals[result.index] += result.evaluations
        improving = [
            result
            for result in results
            if result.move is not None and result.value < current_value
        ]
        if not improving:
            break
        best = min(improving, key=lambda r: (r.value, r.index))
        op, server = best.move
        servers[op] = server
        current_value = best.value
        worker_accepted[best.index] += 1
        curve.append((1 + rounds, current_value))
    else:
        stop_reason = STOP_MAX_STEPS

    deployment = Deployment(
        {
            compiled.op_names[op]: compiled.server_names[server]
            for op, server in enumerate(servers)
        }
    )
    runs = [
        WorkerRun(
            index=worker,
            label=f"partition:{worker}",
            deployment=deployment,
            value=current_value,
            report=SearchReport(
                steps=rounds,
                evaluations=worker_evals[worker],
                accepted=worker_accepted[worker],
                rejected=worker_evals[worker] - worker_accepted[worker],
                best_value=current_value,
                curve=tuple(curve) if worker == 0 else (),
                stop_reason=stop_reason,
                elapsed_s=0.0,
            ),
        )
        for worker in range(num_workers)
    ]
    return _merged_outcome(
        "partition",
        runtime.workers,
        runs,
        ledger,
        budget,
        runtime.clock() - start,
    )
