"""User constraints ``C`` on deployments (section 2.2, future work of §6).

The paper's broadest problem variant admits "a set of user constraints C,
concerning for example an upper bound on the completion time of a workflow
or on the distribution of load among the servers". This module provides a
small constraint framework: individual :class:`Constraint` objects judge a
:class:`~repro.core.cost.CostBreakdown`, and a :class:`ConstraintSet`
aggregates them, reporting every violation.

Algorithms stay constraint-agnostic; the experiment harness filters or
flags solutions through a constraint set after the fact, matching the
paper's formulation where constraints gate the admissible mappings.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.cost import CostBreakdown
from repro.exceptions import ConstraintViolationError

__all__ = [
    "Constraint",
    "MaxExecutionTime",
    "MaxServerLoad",
    "MaxResponseTime",
    "MaxTimePenalty",
    "ConstraintSet",
]


class Constraint(ABC):
    """A single admissibility rule on a deployment's cost breakdown."""

    @abstractmethod
    def violation(self, cost: CostBreakdown) -> str | None:
        """A human-readable violation message, or ``None`` when satisfied."""

    def excess(self, cost: CostBreakdown) -> float:
        """How far over the limit *cost* is, in seconds (0 when satisfied).

        The constraint-aware search (:mod:`repro.algorithms.constrained`)
        minimises the summed excess before the objective; subclasses with
        a numeric limit override this. The default treats any violation
        as an excess of ``inf`` (feasibility is all-or-nothing).
        """
        return 0.0 if self.violation(cost) is None else float("inf")

    def satisfied(self, cost: CostBreakdown) -> bool:
        """True when *cost* respects this constraint."""
        return self.violation(cost) is None


@dataclass(frozen=True)
class MaxExecutionTime(Constraint):
    """Upper bound on ``Texecute`` in seconds."""

    limit_s: float

    def violation(self, cost: CostBreakdown) -> str | None:
        """Report when ``Texecute`` exceeds the bound."""
        if cost.execution_time > self.limit_s:
            return (
                f"execution time {cost.execution_time:.6g}s exceeds limit "
                f"{self.limit_s:.6g}s"
            )
        return None

    def excess(self, cost: CostBreakdown) -> float:
        """Seconds of ``Texecute`` over the limit."""
        return max(0.0, cost.execution_time - self.limit_s)


@dataclass(frozen=True)
class MaxServerLoad(Constraint):
    """Upper bound on any single server's ``Load(s)`` in seconds.

    Optionally restricted to one named server.
    """

    limit_s: float
    server_name: str | None = None

    def violation(self, cost: CostBreakdown) -> str | None:
        """Report the first server whose load exceeds the bound."""
        if self.server_name is not None:
            load = cost.loads.get(self.server_name)
            if load is None:
                return f"no load recorded for server {self.server_name!r}"
            if load > self.limit_s:
                return (
                    f"load of {self.server_name!r} is {load:.6g}s, over "
                    f"limit {self.limit_s:.6g}s"
                )
            return None
        for server, load in cost.loads.items():
            if load > self.limit_s:
                return (
                    f"load of {server!r} is {load:.6g}s, over limit "
                    f"{self.limit_s:.6g}s"
                )
        return None

    def excess(self, cost: CostBreakdown) -> float:
        """Summed seconds of load over the limit (all offending servers)."""
        if self.server_name is not None:
            load = cost.loads.get(self.server_name)
            if load is None:
                return float("inf")
            return max(0.0, load - self.limit_s)
        return sum(
            max(0.0, load - self.limit_s) for load in cost.loads.values()
        )


@dataclass(frozen=True)
class MaxResponseTime(Constraint):
    """Upper bound on one operation's (expected) completion time.

    Section 6: "apart from the overall execution time, the response time
    of individual operations can also be considered as part of the cost
    model." Requires a breakdown produced by
    :meth:`repro.core.cost.CostModel.evaluate` (which fills
    ``response_times``).
    """

    operation_name: str
    limit_s: float

    def violation(self, cost: CostBreakdown) -> str | None:
        """Report when the operation's response time exceeds the bound."""
        response = cost.response_times.get(self.operation_name)
        if response is None:
            return (
                f"no response time recorded for operation "
                f"{self.operation_name!r}"
            )
        if response > self.limit_s:
            return (
                f"response time of {self.operation_name!r} is "
                f"{response:.6g}s, over limit {self.limit_s:.6g}s"
            )
        return None

    def excess(self, cost: CostBreakdown) -> float:
        """Seconds of response time over the limit."""
        response = cost.response_times.get(self.operation_name)
        if response is None:
            return float("inf")
        return max(0.0, response - self.limit_s)


@dataclass(frozen=True)
class MaxTimePenalty(Constraint):
    """Upper bound on the fairness penalty in seconds."""

    limit_s: float

    def violation(self, cost: CostBreakdown) -> str | None:
        """Report when the fairness penalty exceeds the bound."""
        if cost.time_penalty > self.limit_s:
            return (
                f"time penalty {cost.time_penalty:.6g}s exceeds limit "
                f"{self.limit_s:.6g}s"
            )
        return None

    def excess(self, cost: CostBreakdown) -> float:
        """Seconds of fairness penalty over the limit."""
        return max(0.0, cost.time_penalty - self.limit_s)


class ConstraintSet:
    """A conjunction of constraints with violation reporting."""

    def __init__(self, constraints: Iterable[Constraint] = ()):
        self._constraints: list[Constraint] = list(constraints)

    def add(self, constraint: Constraint) -> "ConstraintSet":
        """Append a constraint; returns self for chaining."""
        self._constraints.append(constraint)
        return self

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def violations(self, cost: CostBreakdown) -> list[str]:
        """All violation messages for *cost* (empty when admissible)."""
        messages = []
        for constraint in self._constraints:
            message = constraint.violation(cost)
            if message is not None:
                messages.append(message)
        return messages

    def satisfied(self, cost: CostBreakdown) -> bool:
        """True when every constraint holds for *cost*."""
        return not self.violations(cost)

    def total_excess(self, cost: CostBreakdown) -> float:
        """Summed excess over all constraints (0 when admissible)."""
        return sum(c.excess(cost) for c in self._constraints)

    def enforce(self, cost: CostBreakdown) -> None:
        """Raise :class:`ConstraintViolationError` listing all violations."""
        messages = self.violations(cost)
        if messages:
            raise ConstraintViolationError(
                "deployment violates constraints:\n  " + "\n  ".join(messages)
            )
