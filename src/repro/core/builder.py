"""Fluent construction of well-formed workflows.

:class:`WorkflowBuilder` offers a small imperative language for describing
workflows that are *well-formed by construction*: decision regions are
opened with :meth:`~WorkflowBuilder.split`, populated branch by branch with
:meth:`~WorkflowBuilder.branch`, and closed with
:meth:`~WorkflowBuilder.join`. Because regions can only nest, the
parenthesis rule of section 2.2 always holds for built workflows (and
:meth:`~WorkflowBuilder.build` re-validates as a safety net).

Example -- a diamond with an XOR choice::

    builder = WorkflowBuilder("triage", default_message_bits=8_000)
    builder.task("receive", cycles=5e6)
    builder.split(NodeKind.XOR_SPLIT, "check", cycles=1e6)
    builder.branch(probability=0.7)
    builder.task("assign", cycles=50e6)
    builder.branch(probability=0.3)
    builder.task("reject", cycles=5e6)
    builder.join("check_done", cycles=1e6)
    builder.task("archive", cycles=5e6)
    workflow = builder.build()
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.validation import assert_well_formed
from repro.core.workflow import Message, NodeKind, Operation, Workflow
from repro.exceptions import WorkflowError

__all__ = ["WorkflowBuilder"]

#: Default decision-node cost: evaluating a routing condition is cheap
#: relative to operational work (the paper's operational nodes start at
#: 5M cycles).
DEFAULT_DECISION_CYCLES = 1e6


@dataclass
class _OpenBlock:
    """Book-keeping for a decision region that has not been joined yet."""

    split_name: str
    kind: NodeKind
    finished_branch_tails: list[list[str]] = field(default_factory=list)
    branch_open: bool = False
    probabilities: list[float] = field(default_factory=list)


class WorkflowBuilder:
    """Build a well-formed :class:`~repro.core.workflow.Workflow` step by step.

    Parameters
    ----------
    name:
        Name given to the built workflow.
    default_message_bits:
        Message size used for every transition whose size is not passed
        explicitly (``message_bits=`` argument on the node methods).
    """

    def __init__(self, name: str = "workflow", default_message_bits: float = 8_000.0):
        if default_message_bits < 0:
            raise WorkflowError("default_message_bits must be >= 0")
        self._workflow = Workflow(name)
        self._default_bits = float(default_message_bits)
        self._tails: list[str] = []
        self._blocks: list[_OpenBlock] = []
        # probability for the next edge leaving an XOR split into a branch
        self._pending_probability: float | None = None
        self._built = False

    # ------------------------------------------------------------------
    # node insertion
    # ------------------------------------------------------------------
    def task(
        self,
        name: str,
        cycles: float,
        message_bits: float | None = None,
    ) -> "WorkflowBuilder":
        """Append an operational node after the current tail(s)."""
        self._append(Operation(name, cycles), message_bits)
        return self

    def split(
        self,
        kind: NodeKind,
        name: str,
        cycles: float = DEFAULT_DECISION_CYCLES,
        message_bits: float | None = None,
    ) -> "WorkflowBuilder":
        """Open a decision region headed by a split node of *kind*."""
        if not kind.is_split:
            raise WorkflowError(
                f"split() requires a split kind, got {kind.value!r}"
            )
        self._append(Operation(name, cycles, kind), message_bits)
        self._blocks.append(_OpenBlock(split_name=name, kind=kind))
        self._tails = []  # nothing may attach to the split until branch()
        return self

    def branch(self, probability: float = 1.0) -> "WorkflowBuilder":
        """Start the next branch of the innermost open region.

        For XOR regions, *probability* is the chance this branch is taken;
        the probabilities of all branches of one XOR split must sum to 1.
        For AND/OR regions the argument must stay at its default 1.
        """
        block = self._innermost_block("branch()")
        if block.kind is not NodeKind.XOR_SPLIT and probability != 1.0:
            raise WorkflowError(
                f"branch probability only applies to XOR regions; region "
                f"{block.split_name!r} is {block.kind.value}"
            )
        self._close_current_branch(block)
        block.branch_open = True
        block.probabilities.append(probability)
        self._tails = [block.split_name]
        self._pending_probability = (
            probability if block.kind is NodeKind.XOR_SPLIT else None
        )
        return self

    def join(
        self,
        name: str,
        cycles: float = DEFAULT_DECISION_CYCLES,
        message_bits: float | None = None,
    ) -> "WorkflowBuilder":
        """Close the innermost decision region with its complement node."""
        block = self._innermost_block("join()")
        self._close_current_branch(block)
        if not block.finished_branch_tails:
            raise WorkflowError(
                f"region {block.split_name!r} has no branches; call branch() "
                f"before join()"
            )
        if block.kind is NodeKind.XOR_SPLIT:
            total = sum(block.probabilities)
            if abs(total - 1.0) > 1e-9:
                raise WorkflowError(
                    f"XOR region {block.split_name!r}: branch probabilities "
                    f"sum to {total}, expected 1"
                )
        # connect every branch tail to the join node
        self._tails = [t for tails in block.finished_branch_tails for t in tails]
        self._append(Operation(name, cycles, block.kind.complement), message_bits)
        self._blocks.pop()
        return self

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> Workflow:
        """Finish and return the workflow.

        Raises when decision regions are still open, when a branch is
        dangling, or (with ``validate=True``) when the result unexpectedly
        fails the independent well-formedness checker.
        """
        if self._blocks:
            open_names = ", ".join(repr(b.split_name) for b in self._blocks)
            raise WorkflowError(f"unclosed decision region(s): {open_names}")
        if self._built:
            raise WorkflowError("build() may only be called once per builder")
        if len(self._workflow) == 0:
            raise WorkflowError("cannot build an empty workflow")
        if validate:
            assert_well_formed(self._workflow)
        self._built = True
        return self._workflow

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _innermost_block(self, caller: str) -> _OpenBlock:
        if not self._blocks:
            raise WorkflowError(f"{caller} called with no open decision region")
        return self._blocks[-1]

    def _close_current_branch(self, block: _OpenBlock) -> None:
        if block.branch_open:
            if not self._tails:
                raise WorkflowError(
                    f"empty branch in region {block.split_name!r}: add at "
                    f"least one node per branch"
                )
            # A tail equal to the split itself means the branch contained
            # only the split -> forbidden (empty branch).
            if self._tails == [block.split_name]:
                raise WorkflowError(
                    f"empty branch in region {block.split_name!r}: add at "
                    f"least one node per branch"
                )
            block.finished_branch_tails.append(list(self._tails))
            block.branch_open = False

    def _append(self, operation: Operation, message_bits: float | None) -> None:
        if self._built:
            raise WorkflowError("builder already finished; create a new one")
        if self._blocks and not self._blocks[-1].branch_open and self._tails == []:
            raise WorkflowError(
                f"region {self._blocks[-1].split_name!r} is open but no "
                f"branch has been started; call branch() first"
            )
        bits = self._default_bits if message_bits is None else float(message_bits)
        self._workflow.add_operation(operation)
        for tail in self._tails:
            probability = 1.0
            if self._pending_probability is not None:
                probability = self._pending_probability
            self._workflow.add_transition(
                Message(tail, operation.name, bits, probability)
            )
        self._pending_probability = None
        self._tails = [operation.name]
