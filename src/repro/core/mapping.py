"""The deployment mapping ``O -> S`` (section 2.2).

A :class:`Deployment` records, for each operation of a workflow, the
server it is deployed on -- the paper's ``Mapping`` set of assignments
``o -> s``. It is deliberately a thin, mutable container: the greedy
algorithms build mappings incrementally (assigning, re-assigning and
querying as they go) and the cost model validates completeness only when
a cost is actually computed.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Mapping

from repro.core.workflow import Workflow
from repro.exceptions import (
    DeploymentError,
    IncompleteMappingError,
    UnknownOperationError,
    UnknownServerError,
)
from repro.network.topology import ServerNetwork

__all__ = ["Deployment", "FrozenDeployment"]


class FrozenDeployment:
    """An immutable, hashable snapshot of a :class:`Deployment`.

    :class:`Deployment` is deliberately mutable (the greedy algorithms
    assign and re-assign as they go), which makes it unusable as a dict
    or set key: its hash would change under ``assign()`` while the
    container still files it under the old one. Snapshots taken with
    :meth:`Deployment.frozen` are the supported key type -- assignment
    order does not matter, so two snapshots are equal (and hash alike)
    exactly when they map the same operations to the same servers.
    """

    __slots__ = ("_items",)

    def __init__(self, assignments: Mapping[str, str]):
        self._items: tuple[tuple[str, str], ...] = tuple(
            sorted(assignments.items())
        )

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FrozenDeployment):
            return self._items == other._items
        if isinstance(other, Deployment):
            return dict(self._items) == other.as_dict()
        return NotImplemented

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._items)

    def as_dict(self) -> dict[str, str]:
        """A plain-dict copy of the snapshot."""
        return dict(self._items)

    def thaw(self) -> "Deployment":
        """A new mutable :class:`Deployment` with these assignments."""
        return Deployment(dict(self._items))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrozenDeployment({dict(self._items)!r})"


class Deployment:
    """A (possibly partial) assignment of operations to servers.

    The container does not hold references to the workflow or network; it
    stores names only, so one deployment can be evaluated against scaled
    copies of the same workflow (Class B experiments). Validation against
    concrete workflow/network objects happens in :meth:`validate` and in
    the cost model.
    """

    def __init__(self, assignments: Mapping[str, str] | None = None):
        self._assignments: dict[str, str] = dict(assignments or {})

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def all_on_one(cls, workflow: Workflow, server_name: str) -> "Deployment":
        """Deploy every operation on *server_name*.

        The degenerate mapping the paper uses to illustrate the tension
        between the two metrics: zero communication cost, worst fairness.
        """
        return cls({name: server_name for name in workflow.operation_names})

    @classmethod
    def round_robin(
        cls, workflow: Workflow, network: ServerNetwork
    ) -> "Deployment":
        """Deal operations to servers in turn -- a simple baseline."""
        servers = network.server_names
        if not servers:
            raise DeploymentError("network has no servers")
        return cls(
            {
                name: servers[i % len(servers)]
                for i, name in enumerate(workflow.operation_names)
            }
        )

    @classmethod
    def random(
        cls,
        workflow: Workflow,
        network: ServerNetwork,
        rng,
    ) -> "Deployment":
        """Uniformly random mapping, using *rng* (``random.Random``-like).

        This is both the paper's baseline and the required initial state
        of the tie-resolver algorithms ("initialize M to a random
        mapping").
        """
        servers = network.server_names
        if not servers:
            raise DeploymentError("network has no servers")
        return cls(
            {name: rng.choice(servers) for name in workflow.operation_names}
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def assign(self, operation_name: str, server_name: str) -> None:
        """Set (or move) *operation_name* onto *server_name*."""
        self._assignments[operation_name] = server_name

    def unassign(self, operation_name: str) -> None:
        """Remove the assignment for *operation_name* if present."""
        self._assignments.pop(operation_name, None)

    def update(self, assignments: Mapping[str, str]) -> None:
        """Bulk :meth:`assign`."""
        self._assignments.update(assignments)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, operation_name: str) -> bool:
        return operation_name in self._assignments

    def __len__(self) -> int:
        return len(self._assignments)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._assignments.items())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FrozenDeployment):
            return other == self
        if not isinstance(other, Deployment):
            return NotImplemented
        return self._assignments == other._assignments

    # Deployments are mutable; hashing one is a latent bug (a dict/set
    # key silently breaks after assign()), so there deliberately is no
    # __hash__ -- take a frozen() snapshot to use as a key.
    __hash__ = None  # type: ignore[assignment]

    def frozen(self) -> FrozenDeployment:
        """An immutable, hashable snapshot of the current assignments."""
        return FrozenDeployment(self._assignments)

    def server_of(self, operation_name: str) -> str:
        """``Server(op)``: where *operation_name* is deployed (or raise)."""
        try:
            return self._assignments[operation_name]
        except KeyError:
            raise IncompleteMappingError(
                f"operation {operation_name!r} is not deployed"
            ) from None

    def get(self, operation_name: str) -> str | None:
        """Like :meth:`server_of` but returning ``None`` when unassigned."""
        return self._assignments.get(operation_name)

    def operations_on(self, server_name: str) -> tuple[str, ...]:
        """Operations deployed on *server_name*, in assignment order."""
        return tuple(
            op for op, srv in self._assignments.items() if srv == server_name
        )

    def used_servers(self) -> tuple[str, ...]:
        """Distinct servers that host at least one operation."""
        return tuple(dict.fromkeys(self._assignments.values()))

    def occupancy(self) -> Counter:
        """Operation count per server."""
        return Counter(self._assignments.values())

    def is_complete(self, workflow: Workflow) -> bool:
        """True when every operation of *workflow* is assigned."""
        return all(name in self._assignments for name in workflow.operation_names)

    def missing(self, workflow: Workflow) -> tuple[str, ...]:
        """Operations of *workflow* that are not assigned yet."""
        return tuple(
            name
            for name in workflow.operation_names
            if name not in self._assignments
        )

    def validate(self, workflow: Workflow, network: ServerNetwork) -> None:
        """Raise unless the mapping is complete and names resolve.

        Checks: every workflow operation is assigned, every assignment key
        is a workflow operation, and every target is a network server.
        """
        for name in self._assignments:
            if name not in workflow:
                raise UnknownOperationError(
                    f"deployment assigns unknown operation {name!r}"
                )
        for server in self._assignments.values():
            if server not in network:
                raise UnknownServerError(
                    f"deployment targets unknown server {server!r}"
                )
        unassigned = self.missing(workflow)
        if unassigned:
            raise IncompleteMappingError(
                f"operations not deployed: {', '.join(map(repr, unassigned))}"
            )

    # ------------------------------------------------------------------
    # conversion / comparison
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, str]:
        """A plain-dict copy of the assignments."""
        return dict(self._assignments)

    def copy(self) -> "Deployment":
        """An independent copy."""
        return Deployment(self._assignments)

    def diff(self, other: "Deployment") -> dict[str, tuple[str | None, str | None]]:
        """Operations mapped differently in *other*.

        Returns ``{operation: (self_server, other_server)}`` where either
        side may be ``None`` for an unassigned operation.
        """
        names: Iterable[str] = dict.fromkeys(
            list(self._assignments) + list(other._assignments)
        )
        return {
            name: (self.get(name), other.get(name))
            for name in names
            if self.get(name) != other.get(name)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deployment({self._assignments!r})"
