"""Seed handling shared by every stochastic entry point.

Six call sites used to carry private copies of the same three-line
idiom -- "a ``random.Random`` passes through, anything else seeds a new
one" -- with the silent convention that ``None`` means ``Random(0)``.
:func:`coerce_rng` is that idiom, written once and documented: the
``None -> Random(0)`` default is deliberate (library entry points are
reproducible unless the caller explicitly asks for entropy), and the
helper preserves each historical call site's exact seeded streams --
``coerce_rng(s)`` constructs ``random.Random(s)`` for any non-``None``
seed, including the string seeds the experiment harness derives per
instance (``f"{seed}:{index}"``).
"""

from __future__ import annotations

import random

__all__ = ["DEFAULT_SEED", "coerce_rng"]

#: Seed used when a caller passes ``None``: every entry point of the
#: library is deterministic by default, and ``Random(0)`` is the shared,
#: documented "unseeded" stream (previously an unstated convention).
DEFAULT_SEED = 0


def coerce_rng(
    seed: int | float | str | bytes | random.Random | None,
) -> random.Random:
    """Coerce *seed* into a ``random.Random``.

    A ``random.Random`` instance passes through untouched (shared-stream
    semantics: successive draws continue the caller's stream). ``None``
    seeds a new generator with :data:`DEFAULT_SEED` -- the library's
    explicit "deterministic by default" convention. Any other value
    (int, string, bytes, float) seeds a new ``random.Random(seed)``
    exactly as the historical per-module helpers did, so seeded runs
    remain byte-identical.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(DEFAULT_SEED if seed is None else seed)
