"""Clocks shared by everything that measures or budgets time.

Two consumers need the same abstraction: the fleet controller stamps a
latency onto every log record, and the search runtime enforces
wall-clock deadlines. Both accept any zero-argument callable returning
seconds, so production code runs on the monotonic wall clock while
tests and scenario replays inject a :class:`StepClock` and become pure
functions of their inputs.

:data:`MONOTONIC`
    The library's default wall clock (:func:`time.monotonic` -- immune
    to system-clock adjustments, which matters for deadlines).
:class:`StepClock`
    A deterministic clock advancing by a fixed step per call.
    Previously private to :mod:`repro.service.controller`; extracted
    here so deadline-driven searches can be tested deterministically
    too.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Clock", "MONOTONIC", "StepClock"]

#: A clock is any zero-argument callable returning seconds.
Clock = Callable[[], float]

#: Default wall clock for deadlines and latency stamps.
MONOTONIC: Clock = time.monotonic


class StepClock:
    """A deterministic clock: every call advances by a fixed step.

    Injected by scenario replays so that the latency column of the
    fleet log is reproducible, and by the search-runtime tests so that
    "the deadline fires after exactly k steps" is a statement about
    call counts rather than about machine speed. The default wall
    clock (:data:`MONOTONIC`) is for benchmarks and live use.

    Parameters
    ----------
    step_s:
        Seconds added per reading.
    start_s:
        Initial reading (the first call returns ``start_s + step_s``).
    """

    def __init__(self, step_s: float = 0.001, start_s: float = 0.0):
        self.step_s = step_s
        self._now = start_s

    def __call__(self) -> float:
        """Advance and return the current reading."""
        self._now += self.step_s
        return self._now
