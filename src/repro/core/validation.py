"""Well-formedness checking for workflows (section 2.2 of the paper).

A workflow is *well-formed* when decision nodes behave like balanced
parentheses: for every split node ``a`` there exists a complement node
``/a`` of the matching kind, and **all** paths stemming from ``a`` pass
through ``/a``. Regions may nest but must not overlap.

The checker formalises this with graph dominance:

* the *match* of a split is the nearest **post-dominating** join node
  (every path from the split to the workflow exit passes through it);
* symmetrically, the matched split must be the nearest **dominating**
  split of that join;
* the match's kind must be the complement of the split's kind, and the
  split/join matching must be a bijection.

These three conditions are equivalent to the parenthesis rule on DAGs and
are what the workload generator guarantees by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.workflow import Workflow
from repro.exceptions import MalformedWorkflowError

__all__ = ["WellFormednessReport", "check_well_formed", "assert_well_formed"]

_VIRTUAL_SOURCE = "__repro_virtual_source__"
_VIRTUAL_SINK = "__repro_virtual_sink__"


@dataclass
class WellFormednessReport:
    """Outcome of a well-formedness check.

    Attributes
    ----------
    ok:
        True when the workflow satisfies every rule.
    problems:
        Human-readable descriptions of each violation found.
    matches:
        Split-name to join-name mapping discovered for well-formed regions.
        Populated even on failure for the regions that did match.
    """

    ok: bool
    problems: list[str] = field(default_factory=list)
    matches: dict[str, str] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok


def _augmented(graph: nx.DiGraph, entries, exits) -> nx.DiGraph:
    """Copy *graph* with a virtual source/sink tying entries and exits."""
    augmented = graph.copy()
    augmented.add_node(_VIRTUAL_SOURCE)
    augmented.add_node(_VIRTUAL_SINK)
    for entry in entries:
        augmented.add_edge(_VIRTUAL_SOURCE, entry)
    for exit_ in exits:
        augmented.add_edge(exit_, _VIRTUAL_SINK)
    return augmented


def check_well_formed(workflow: Workflow) -> WellFormednessReport:
    """Check *workflow* against the paper's well-formedness rules.

    Rules checked, in order:

    1. the workflow is non-empty and acyclic;
    2. XOR branch probabilities are consistent (sum to 1 per split);
    3. every split node has a nearest post-dominating join of the
       complementary kind;
    4. that join's nearest dominating split is the split itself;
    5. splits and joins match one-to-one (no orphan joins).

    Returns a :class:`WellFormednessReport`; never raises for structural
    problems (use :func:`assert_well_formed` for the raising variant).
    """
    report = WellFormednessReport(ok=True)

    if len(workflow) == 0:
        report.ok = False
        report.problems.append("workflow is empty")
        return report

    raw_graph = nx.DiGraph(workflow.graph)
    if not nx.is_directed_acyclic_graph(raw_graph):
        report.ok = False
        report.problems.append("workflow contains a cycle")
        return report

    try:
        workflow.validate_xor_probabilities()
    except Exception as exc:  # WorkflowError carries the detail
        report.ok = False
        report.problems.append(str(exc))

    splits = [op for op in workflow if op.kind.is_split]
    joins = [op for op in workflow if op.kind.is_join]

    if not splits and not joins:
        return report  # purely operational workflows are trivially well-formed

    forward = _augmented(raw_graph, workflow.entries, workflow.exits)
    backward = forward.reverse(copy=True)

    idom = nx.immediate_dominators(forward, _VIRTUAL_SOURCE)
    ipdom = nx.immediate_dominators(backward, _VIRTUAL_SINK)

    join_kinds = {op.name: op.kind for op in joins}
    split_kinds = {op.name: op.kind for op in splits}

    def nearest_postdominating_join(name: str) -> str | None:
        node = ipdom.get(name)
        while node is not None and node != _VIRTUAL_SINK:
            if node in join_kinds:
                return node
            nxt = ipdom.get(node)
            node = None if nxt == node else nxt
        return None

    def nearest_dominating_split(name: str) -> str | None:
        node = idom.get(name)
        while node is not None and node != _VIRTUAL_SOURCE:
            if node in split_kinds:
                return node
            nxt = idom.get(node)
            node = None if nxt == node else nxt
        return None

    matched_joins: dict[str, str] = {}
    for split in splits:
        join_name = nearest_postdominating_join(split.name)
        if join_name is None:
            report.ok = False
            report.problems.append(
                f"split {split.name!r} ({split.kind.value}) has no "
                f"post-dominating join: some path escapes its region"
            )
            continue
        expected = split.kind.complement
        actual = join_kinds[join_name]
        if actual is not expected:
            report.ok = False
            report.problems.append(
                f"split {split.name!r} ({split.kind.value}) is closed by "
                f"{join_name!r} ({actual.value}); expected a "
                f"{expected.value} node"
            )
            continue
        back = nearest_dominating_split(join_name)
        if back != split.name:
            report.ok = False
            report.problems.append(
                f"join {join_name!r} is dominated by split {back!r}, not by "
                f"its matched split {split.name!r}: regions overlap"
            )
            continue
        if join_name in matched_joins:
            report.ok = False
            report.problems.append(
                f"join {join_name!r} closes both {matched_joins[join_name]!r} "
                f"and {split.name!r}"
            )
            continue
        matched_joins[join_name] = split.name
        report.matches[split.name] = join_name

    for join in joins:
        if join.name not in matched_joins:
            report.ok = False
            report.problems.append(
                f"join {join.name!r} ({join.kind.value}) matches no split"
            )

    return report


def assert_well_formed(workflow: Workflow) -> WellFormednessReport:
    """Like :func:`check_well_formed` but raising on failure.

    Raises
    ------
    MalformedWorkflowError
        Carrying every problem found, one per line.
    """
    report = check_well_formed(workflow)
    if not report.ok:
        raise MalformedWorkflowError(
            f"workflow {workflow.name!r} is malformed:\n  "
            + "\n  ".join(report.problems)
        )
    return report
