"""The cost model of Table 1.

The paper evaluates a deployment along two antagonistic dimensions and, by
default, sums them with equal weights:

``Texecute``
    Time to complete the workflow. Per-operation processing time is
    ``Tproc(op) = C(op) / P(Server(op))``; per-message communication time
    ``Tcomm`` sums ``MsgSize/Line_Speed`` plus propagation over the links
    of the route between the two hosting servers (zero when co-located).
    For a *line* workflow this is simply the sum of all processing and
    communication times. For random graphs the evaluation is an
    expected-time forward pass over the DAG honouring the decision-node
    semantics: ``AND`` joins wait for every branch (max), ``OR`` joins
    complete with the first branch (min), ``XOR`` joins take the
    probability-weighted average of their branches -- the amortised cost
    over many executions that section 3.4 calls for.

``TimePenalty``
    A translation of load-distribution fairness into time units:
    the deviation of each server's load ``Load(s)`` (the time the server
    spends processing its assigned operations) from the average server
    load. The paper's formula is typeset ambiguously, so the deviation
    statistic is configurable (:attr:`CostModel.penalty_mode`); the
    default is the mean absolute deviation, which is in seconds and
    stable across server counts. In a perfectly fair deployment every
    server spends the same time and the penalty is 0.

The model also exposes ``Ideal_Cycles(s) = Sum_Cycles * P(s)/Sum_Capacity``,
the capacity-proportional cycle budget that every greedy algorithm in the
paper starts from.

Since the compiled-IR refactor :class:`CostModel` is a thin façade over
:class:`~repro.core.compiled.CompiledInstance`: construction compiles the
``(workflow, network, parameters)`` triple once into integer-indexed
arrays, and ``evaluate``/``objective``/``loads``/``response_times`` run an
array-index forward pass over the compiled form -- bit-identical to the
historical name-dict path, but sharing one precomputation with the move
evaluators, the simulation engine and the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.compiled import (
    PENALTY_MODES,
    CompiledInstance,
    penalty_statistic,
)
from repro.core.mapping import Deployment
from repro.core.migration import TransitionObjective
from repro.core.workflow import Message, Workflow
from repro.network.routing import Router
from repro.network.topology import ServerNetwork

__all__ = ["CostModel", "CostBreakdown", "PENALTY_MODES"]


@dataclass(frozen=True)
class CostBreakdown:
    """Everything the cost model knows about one deployment.

    Attributes
    ----------
    execution_time:
        ``Texecute`` in seconds (expected value for graphs with XOR).
    time_penalty:
        Fairness penalty in seconds (see :data:`PENALTY_MODES`).
    objective:
        ``execution_weight * execution_time + penalty_weight * time_penalty``.
    loads:
        ``Load(s)`` per server, in seconds (probability-weighted for
        graph workflows).
    communication_time:
        Total ``Tcomm`` over all messages (probability-weighted), an
        auxiliary diagnostic -- for non-linear workflows it is *not* a
        term of ``execution_time`` because parallel branches overlap.
    processing_time:
        Total ``Tproc`` over all operations (probability-weighted).
    response_times:
        Per-operation (expected, branch-conditional) completion times --
        the section 6 extension; empty when not computed.
    migration_cost:
        Summed per-op migration cost vs the transition baseline
        (unweighted seconds); 0.0 when the model is not
        transition-aware. When non-zero, ``objective`` includes it as
        ``migration_weight * migration_cost``.
    """

    execution_time: float
    time_penalty: float
    objective: float
    loads: Mapping[str, float] = field(default_factory=dict)
    communication_time: float = 0.0
    processing_time: float = 0.0
    response_times: Mapping[str, float] = field(default_factory=dict)
    migration_cost: float = 0.0

    def dominates(self, other: "CostBreakdown") -> bool:
        """Pareto dominance: at least as good on both axes, better on one."""
        not_worse = (
            self.execution_time <= other.execution_time
            and self.time_penalty <= other.time_penalty
        )
        strictly_better = (
            self.execution_time < other.execution_time
            or self.time_penalty < other.time_penalty
        )
        return not_worse and strictly_better


class CostModel:
    """Evaluate deployments of one workflow over one network.

    Parameters
    ----------
    workflow, network:
        The problem instance. The workflow must be a DAG; the network must
        be connected.
    execution_weight, penalty_weight:
        Coefficients of the scalar objective. The paper's default is an
        equally weighted sum.
    penalty_mode:
        Fairness statistic; one of :data:`PENALTY_MODES`.
    use_probabilities:
        Weight costs by execution probabilities (section 3.4). ``None``
        (default) auto-enables this exactly when the workflow contains an
        ``XOR`` split.
    router:
        Optional pre-built :class:`~repro.network.routing.Router` to share
        its cache across cost models.
    objective:
        Optional :class:`~repro.core.migration.TransitionObjective`; when
        given it supplies every objective parameter (the individual
        keyword arguments are ignored) and, if transition-aware, makes
        every evaluation include the migration term.
    """

    def __init__(
        self,
        workflow: Workflow,
        network: ServerNetwork,
        execution_weight: float = 0.5,
        penalty_weight: float = 0.5,
        penalty_mode: str = "mad",
        use_probabilities: bool | None = None,
        router: Router | None = None,
        objective: TransitionObjective | None = None,
    ):
        self._init_from_compiled(
            CompiledInstance(
                workflow,
                network,
                execution_weight=execution_weight,
                penalty_weight=penalty_weight,
                penalty_mode=penalty_mode,
                use_probabilities=use_probabilities,
                router=router,
                objective=objective,
            )
        )

    @classmethod
    def from_compiled(cls, compiled: CompiledInstance) -> "CostModel":
        """A façade over an existing compiled artifact, no recompilation.

        The returned model shares *compiled* (and its router and route
        tables) with every other consumer of the artifact -- this is how
        the fleet, the move evaluators and the simulation engine avoid
        rebuilding per-layer caches.
        """
        model = cls.__new__(cls)
        model._init_from_compiled(compiled)
        return model

    def _init_from_compiled(self, compiled: CompiledInstance) -> None:
        self.compiled = compiled
        self.workflow = compiled.workflow
        self.network = compiled.network
        self.execution_weight = compiled.execution_weight
        self.penalty_weight = compiled.penalty_weight
        self.penalty_mode = compiled.penalty_mode
        self.router = compiled.router
        self.use_probabilities = compiled.use_probabilities
        # the resolved specification (the method `objective` prices a
        # deployment; this attribute is the spec it prices against)
        self.objective_spec = compiled.objective

    # ------------------------------------------------------------------
    # Table 1 primitives
    # ------------------------------------------------------------------
    def node_probability(self, operation_name: str) -> float:
        """Execution probability of an operation (1 without XOR)."""
        compiled = self.compiled
        return compiled.node_prob[compiled.op_index[operation_name]]

    def message_probability(self, message: Message) -> float:
        """Unconditional probability that *message* is sent."""
        return self.node_probability(message.source) * message.probability

    def tproc(self, operation_name: str, deployment: Deployment) -> float:
        """``Tproc(op) = C(op) / P(Server(op))`` in seconds (unweighted)."""
        compiled = self.compiled
        operation = self.workflow.operation(operation_name)
        server = deployment.server_of(operation_name)
        return compiled.tproc[compiled.op_index[operation.name]][
            compiled.server_index_of(server)
        ]

    def tcomm(self, message: Message, deployment: Deployment) -> float:
        """``Tcomm`` of one message in seconds (unweighted).

        Zero when both endpoints share a server.
        """
        source = deployment.server_of(message.source)
        target = deployment.server_of(message.target)
        return self.router.transmission_time(source, target, message.size_bits)

    def ideal_cycles(self, server_name: str) -> float:
        """``Ideal_Cycles(s) = Sum_Cycles * P(s) / Sum_Capacity``.

        The capacity-proportional cycle budget used by every greedy
        algorithm. Probability-weighted cycles are used for graph
        workflows so that rarely executed branches count less.
        """
        compiled = self.compiled
        return compiled.ideal_cycles[compiled.server_index_of(server_name)]

    def total_weighted_cycles(self) -> float:
        """``Sum_Cycles``, probability-weighted when applicable."""
        return self.compiled.total_weighted_cycles

    # ------------------------------------------------------------------
    # loads and fairness
    # ------------------------------------------------------------------
    def load(self, server_name: str, deployment: Deployment) -> float:
        """``Load(s)``: seconds *server_name* spends on its operations.

        Validates the deployment, consistently with :meth:`loads`.
        """
        deployment.validate(self.workflow, self.network)
        compiled = self.compiled
        server = compiled.server_index_of(server_name)
        op_index = compiled.op_index
        wcycles = compiled.wcycles
        cycles = sum(
            wcycles[op_index[op]]
            for op in deployment.operations_on(server_name)
            if op in self.workflow
        )
        return cycles / compiled.power[server]

    def loads(self, deployment: Deployment) -> dict[str, float]:
        """``Load(s)`` for every server of the network (0 when unused)."""
        deployment.validate(self.workflow, self.network)
        return self._loads_unchecked(deployment)

    def _loads_unchecked(self, deployment: Deployment) -> dict[str, float]:
        """:meth:`loads` without re-validating an already-checked mapping."""
        compiled = self.compiled
        values = compiled.load_values(compiled.server_vector(deployment))
        return dict(zip(compiled.server_names, values))

    def time_penalty(self, deployment: Deployment) -> float:
        """The fairness penalty in seconds (see :data:`PENALTY_MODES`)."""
        deployment.validate(self.workflow, self.network)
        compiled = self.compiled
        return compiled.penalty(
            compiled.load_values(compiled.server_vector(deployment))
        )

    def _penalty_from_loads(self, loads: Mapping[str, float]) -> float:
        """The fairness statistic over an existing per-server load map.

        Kept as the named hook the branch-and-bound lower bound uses to
        price partial load vectors; delegates to
        :func:`repro.core.compiled.penalty_statistic`.
        """
        return penalty_statistic(list(loads.values()), self.penalty_mode)

    # ------------------------------------------------------------------
    # execution time
    # ------------------------------------------------------------------
    def execution_time(self, deployment: Deployment) -> float:
        """``Texecute``: (expected) completion time of the workflow.

        A forward pass in topological order. ``ready(n)`` aggregates the
        arrival times ``finish(pred) + Tcomm(pred -> n)`` of the incoming
        messages: max for ``AND`` joins and plain nodes, min for ``OR``
        joins, probability-weighted average for ``XOR`` joins (expected
        time over branch choices). ``finish(n) = ready(n) + Tproc(n)``,
        and the result is the latest finish among exit operations.

        For a line workflow this reduces exactly to the paper's
        ``sum(Tproc) + sum(Tcomm)``.
        """
        deployment.validate(self.workflow, self.network)
        compiled = self.compiled
        return compiled.execution_from(
            compiled.forward_pass(compiled.server_vector(deployment))
        )

    def response_times(self, deployment: Deployment) -> dict[str, float]:
        """(Expected) completion time of every individual operation.

        The per-operation view of the :meth:`execution_time` forward
        pass -- section 6 names "the response time of individual
        operations" as a cost-model extension, and this is it: the time
        at which each operation's result is available, conditional on
        its region executing (XOR branches report their conditional
        finish time, which is what a per-operation SLA cares about).
        """
        deployment.validate(self.workflow, self.network)
        return self._response_times_unchecked(deployment)

    def _response_times_unchecked(
        self, deployment: Deployment
    ) -> dict[str, float]:
        """:meth:`response_times` without re-validating the mapping."""
        compiled = self.compiled
        finish = compiled.forward_pass(compiled.server_vector(deployment))
        order = compiled.order
        op_names = compiled.op_names
        return {op_names[op]: finish[op] for op in order}

    # ------------------------------------------------------------------
    # aggregate diagnostics and the objective
    # ------------------------------------------------------------------
    def total_communication_time(self, deployment: Deployment) -> float:
        """Probability-weighted sum of ``Tcomm`` over all messages."""
        compiled = self.compiled
        return compiled.communication_time(compiled.server_vector(deployment))

    def total_processing_time(self, deployment: Deployment) -> float:
        """Probability-weighted sum of ``Tproc`` over all operations."""
        compiled = self.compiled
        return compiled.processing_time(compiled.server_vector(deployment))

    def objective(self, deployment: Deployment) -> float:
        """The scalar objective: weighted sum of the cost metrics.

        Includes the migration term when the model is transition-aware
        (``migration_cost`` is exactly 0.0 and ignored otherwise).
        Validates the deployment exactly once, not once per metric.
        """
        deployment.validate(self.workflow, self.network)
        compiled = self.compiled
        servers = compiled.server_vector(deployment)
        execution = compiled.execution_from(compiled.forward_pass(servers))
        penalty = compiled.penalty(compiled.load_values(servers))
        migration = compiled.migration_cost(servers)
        return compiled.objective_value(execution, penalty, migration)

    def evaluate(self, deployment: Deployment) -> CostBreakdown:
        """Full :class:`CostBreakdown` for *deployment*.

        Validates the deployment exactly once, not once per component.
        """
        deployment.validate(self.workflow, self.network)
        compiled = self.compiled
        servers = compiled.server_vector(deployment)
        load_values = compiled.load_values(servers)
        finish = compiled.forward_pass(servers)
        execution = compiled.execution_from(finish)
        penalty = compiled.penalty(load_values)
        migration = compiled.migration_cost(servers)
        op_names = compiled.op_names
        return CostBreakdown(
            execution_time=execution,
            time_penalty=penalty,
            objective=compiled.objective_value(execution, penalty, migration),
            loads=dict(zip(compiled.server_names, load_values)),
            communication_time=compiled.communication_time(servers),
            processing_time=compiled.processing_time(servers),
            response_times={
                op_names[op]: finish[op] for op in compiled.order
            },
            migration_cost=migration,
        )
