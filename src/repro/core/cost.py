"""The cost model of Table 1.

The paper evaluates a deployment along two antagonistic dimensions and, by
default, sums them with equal weights:

``Texecute``
    Time to complete the workflow. Per-operation processing time is
    ``Tproc(op) = C(op) / P(Server(op))``; per-message communication time
    ``Tcomm`` sums ``MsgSize/Line_Speed`` plus propagation over the links
    of the route between the two hosting servers (zero when co-located).
    For a *line* workflow this is simply the sum of all processing and
    communication times. For random graphs the evaluation is an
    expected-time forward pass over the DAG honouring the decision-node
    semantics: ``AND`` joins wait for every branch (max), ``OR`` joins
    complete with the first branch (min), ``XOR`` joins take the
    probability-weighted average of their branches -- the amortised cost
    over many executions that section 3.4 calls for.

``TimePenalty``
    A translation of load-distribution fairness into time units:
    the deviation of each server's load ``Load(s)`` (the time the server
    spends processing its assigned operations) from the average server
    load. The paper's formula is typeset ambiguously, so the deviation
    statistic is configurable (:attr:`CostModel.penalty_mode`); the
    default is the mean absolute deviation, which is in seconds and
    stable across server counts. In a perfectly fair deployment every
    server spends the same time and the penalty is 0.

The model also exposes ``Ideal_Cycles(s) = Sum_Cycles * P(s)/Sum_Capacity``,
the capacity-proportional cycle budget that every greedy algorithm in the
paper starts from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.mapping import Deployment
from repro.core.probability import execution_probabilities
from repro.core.workflow import Message, NodeKind, Workflow
from repro.exceptions import DeploymentError
from repro.network.routing import Router
from repro.network.topology import ServerNetwork

__all__ = ["CostModel", "CostBreakdown", "PENALTY_MODES"]

#: Supported fairness statistics for :attr:`CostModel.penalty_mode`:
#: ``"mad"`` -- mean absolute deviation from the average load;
#: ``"sum_abs"`` -- total absolute deviation;
#: ``"max"`` -- worst single-server deviation;
#: ``"std"`` -- population standard deviation of the loads.
PENALTY_MODES = ("mad", "sum_abs", "max", "std")


@dataclass(frozen=True)
class CostBreakdown:
    """Everything the cost model knows about one deployment.

    Attributes
    ----------
    execution_time:
        ``Texecute`` in seconds (expected value for graphs with XOR).
    time_penalty:
        Fairness penalty in seconds (see :data:`PENALTY_MODES`).
    objective:
        ``execution_weight * execution_time + penalty_weight * time_penalty``.
    loads:
        ``Load(s)`` per server, in seconds (probability-weighted for
        graph workflows).
    communication_time:
        Total ``Tcomm`` over all messages (probability-weighted), an
        auxiliary diagnostic -- for non-linear workflows it is *not* a
        term of ``execution_time`` because parallel branches overlap.
    processing_time:
        Total ``Tproc`` over all operations (probability-weighted).
    response_times:
        Per-operation (expected, branch-conditional) completion times --
        the section 6 extension; empty when not computed.
    """

    execution_time: float
    time_penalty: float
    objective: float
    loads: Mapping[str, float] = field(default_factory=dict)
    communication_time: float = 0.0
    processing_time: float = 0.0
    response_times: Mapping[str, float] = field(default_factory=dict)

    def dominates(self, other: "CostBreakdown") -> bool:
        """Pareto dominance: at least as good on both axes, better on one."""
        not_worse = (
            self.execution_time <= other.execution_time
            and self.time_penalty <= other.time_penalty
        )
        strictly_better = (
            self.execution_time < other.execution_time
            or self.time_penalty < other.time_penalty
        )
        return not_worse and strictly_better


class CostModel:
    """Evaluate deployments of one workflow over one network.

    Parameters
    ----------
    workflow, network:
        The problem instance. The workflow must be a DAG; the network must
        be connected.
    execution_weight, penalty_weight:
        Coefficients of the scalar objective. The paper's default is an
        equally weighted sum.
    penalty_mode:
        Fairness statistic; one of :data:`PENALTY_MODES`.
    use_probabilities:
        Weight costs by execution probabilities (section 3.4). ``None``
        (default) auto-enables this exactly when the workflow contains an
        ``XOR`` split.
    router:
        Optional pre-built :class:`~repro.network.routing.Router` to share
        its cache across cost models.
    """

    def __init__(
        self,
        workflow: Workflow,
        network: ServerNetwork,
        execution_weight: float = 0.5,
        penalty_weight: float = 0.5,
        penalty_mode: str = "mad",
        use_probabilities: bool | None = None,
        router: Router | None = None,
    ):
        if penalty_mode not in PENALTY_MODES:
            raise DeploymentError(
                f"unknown penalty mode {penalty_mode!r}; expected one of "
                f"{PENALTY_MODES}"
            )
        if execution_weight < 0 or penalty_weight < 0:
            raise DeploymentError("objective weights must be >= 0")
        network.require_connected()
        if not workflow.is_dag():
            raise DeploymentError(
                f"workflow {workflow.name!r} contains a cycle; the cost "
                f"model requires a DAG"
            )
        self.workflow = workflow
        self.network = network
        self.execution_weight = execution_weight
        self.penalty_weight = penalty_weight
        self.penalty_mode = penalty_mode
        self.router = router or Router(network)

        has_xor = any(op.kind is NodeKind.XOR_SPLIT for op in workflow)
        self.use_probabilities = (
            has_xor if use_probabilities is None else use_probabilities
        )
        if self.use_probabilities:
            workflow.validate_xor_probabilities()
            self._node_prob = execution_probabilities(workflow)
        else:
            self._node_prob = {name: 1.0 for name in workflow.operation_names}
        self._order = workflow.topological_order()

    # ------------------------------------------------------------------
    # Table 1 primitives
    # ------------------------------------------------------------------
    def node_probability(self, operation_name: str) -> float:
        """Execution probability of an operation (1 without XOR)."""
        return self._node_prob[operation_name]

    def message_probability(self, message: Message) -> float:
        """Unconditional probability that *message* is sent."""
        return self._node_prob[message.source] * message.probability

    def tproc(self, operation_name: str, deployment: Deployment) -> float:
        """``Tproc(op) = C(op) / P(Server(op))`` in seconds (unweighted)."""
        operation = self.workflow.operation(operation_name)
        server = self.network.server(deployment.server_of(operation_name))
        return operation.cycles / server.power_hz

    def tcomm(self, message: Message, deployment: Deployment) -> float:
        """``Tcomm`` of one message in seconds (unweighted).

        Zero when both endpoints share a server.
        """
        source = deployment.server_of(message.source)
        target = deployment.server_of(message.target)
        return self.router.transmission_time(source, target, message.size_bits)

    def ideal_cycles(self, server_name: str) -> float:
        """``Ideal_Cycles(s) = Sum_Cycles * P(s) / Sum_Capacity``.

        The capacity-proportional cycle budget used by every greedy
        algorithm. Probability-weighted cycles are used for graph
        workflows so that rarely executed branches count less.
        """
        server = self.network.server(server_name)
        total = self.total_weighted_cycles()
        return total * server.power_hz / self.network.total_power_hz

    def total_weighted_cycles(self) -> float:
        """``Sum_Cycles``, probability-weighted when applicable."""
        return sum(
            op.cycles * self._node_prob[op.name] for op in self.workflow
        )

    # ------------------------------------------------------------------
    # loads and fairness
    # ------------------------------------------------------------------
    def load(self, server_name: str, deployment: Deployment) -> float:
        """``Load(s)``: seconds *server_name* spends on its operations.

        Validates the deployment, consistently with :meth:`loads`.
        """
        deployment.validate(self.workflow, self.network)
        server = self.network.server(server_name)
        cycles = sum(
            self.workflow.operation(op).cycles * self._node_prob[op]
            for op in deployment.operations_on(server_name)
            if op in self.workflow
        )
        return cycles / server.power_hz

    def loads(self, deployment: Deployment) -> dict[str, float]:
        """``Load(s)`` for every server of the network (0 when unused)."""
        deployment.validate(self.workflow, self.network)
        return self._loads_unchecked(deployment)

    def _loads_unchecked(self, deployment: Deployment) -> dict[str, float]:
        """:meth:`loads` without re-validating an already-checked mapping."""
        totals: dict[str, float] = {
            name: 0.0 for name in self.network.server_names
        }
        for operation in self.workflow:
            server = deployment.server_of(operation.name)
            totals[server] += operation.cycles * self._node_prob[operation.name]
        return {
            name: cycles / self.network.server(name).power_hz
            for name, cycles in totals.items()
        }

    def time_penalty(self, deployment: Deployment) -> float:
        """The fairness penalty in seconds (see :data:`PENALTY_MODES`)."""
        deployment.validate(self.workflow, self.network)
        return self._penalty_from_loads(self._loads_unchecked(deployment))

    def _penalty_from_loads(self, loads: Mapping[str, float]) -> float:
        values = list(loads.values())
        if not values:
            return 0.0
        mean = sum(values) / len(values)
        deviations = [abs(v - mean) for v in values]
        if self.penalty_mode == "mad":
            return sum(deviations) / len(values)
        if self.penalty_mode == "sum_abs":
            return sum(deviations)
        if self.penalty_mode == "max":
            return max(deviations)
        # std
        return math.sqrt(sum(d * d for d in deviations) / len(values))

    # ------------------------------------------------------------------
    # execution time
    # ------------------------------------------------------------------
    def execution_time(self, deployment: Deployment) -> float:
        """``Texecute``: (expected) completion time of the workflow.

        A forward pass in topological order. ``ready(n)`` aggregates the
        arrival times ``finish(pred) + Tcomm(pred -> n)`` of the incoming
        messages: max for ``AND`` joins and plain nodes, min for ``OR``
        joins, probability-weighted average for ``XOR`` joins (expected
        time over branch choices). ``finish(n) = ready(n) + Tproc(n)``,
        and the result is the latest finish among exit operations.

        For a line workflow this reduces exactly to the paper's
        ``sum(Tproc) + sum(Tcomm)``.
        """
        deployment.validate(self.workflow, self.network)
        finish = self._response_times_unchecked(deployment)
        return max(finish[name] for name in self.workflow.exits)

    def response_times(self, deployment: Deployment) -> dict[str, float]:
        """(Expected) completion time of every individual operation.

        The per-operation view of the :meth:`execution_time` forward
        pass -- section 6 names "the response time of individual
        operations" as a cost-model extension, and this is it: the time
        at which each operation's result is available, conditional on
        its region executing (XOR branches report their conditional
        finish time, which is what a per-operation SLA cares about).
        """
        deployment.validate(self.workflow, self.network)
        return self._response_times_unchecked(deployment)

    def _response_times_unchecked(self, deployment: Deployment) -> dict[str, float]:
        """:meth:`response_times` without re-validating the mapping."""
        finish: dict[str, float] = {}
        for name in self._order:
            operation = self.workflow.operation(name)
            incoming = self.workflow.incoming(name)
            if not incoming:
                ready = 0.0
            else:
                arrivals = [
                    finish[m.source] + self.tcomm(m, deployment)
                    for m in incoming
                ]
                if operation.kind is NodeKind.XOR_JOIN:
                    weights = [
                        self.message_probability(m) for m in incoming
                    ]
                    total_weight = sum(weights)
                    if total_weight <= 0:
                        ready = max(arrivals)
                    else:
                        ready = (
                            sum(w * a for w, a in zip(weights, arrivals))
                            / total_weight
                        )
                elif operation.kind is NodeKind.OR_JOIN:
                    ready = min(arrivals)
                else:
                    ready = max(arrivals)
            finish[name] = ready + self.tproc(name, deployment)
        return finish

    # ------------------------------------------------------------------
    # aggregate diagnostics and the objective
    # ------------------------------------------------------------------
    def total_communication_time(self, deployment: Deployment) -> float:
        """Probability-weighted sum of ``Tcomm`` over all messages."""
        return sum(
            self.message_probability(m) * self.tcomm(m, deployment)
            for m in self.workflow.messages
        )

    def total_processing_time(self, deployment: Deployment) -> float:
        """Probability-weighted sum of ``Tproc`` over all operations."""
        return sum(
            self._node_prob[op.name] * self.tproc(op.name, deployment)
            for op in self.workflow
        )

    def objective(self, deployment: Deployment) -> float:
        """The scalar objective: weighted sum of the two metrics.

        Validates the deployment exactly once, not once per metric.
        """
        deployment.validate(self.workflow, self.network)
        finish = self._response_times_unchecked(deployment)
        execution = max(finish[name] for name in self.workflow.exits)
        penalty = self._penalty_from_loads(self._loads_unchecked(deployment))
        return (
            self.execution_weight * execution
            + self.penalty_weight * penalty
        )

    def evaluate(self, deployment: Deployment) -> CostBreakdown:
        """Full :class:`CostBreakdown` for *deployment*.

        Validates the deployment exactly once, not once per component.
        """
        deployment.validate(self.workflow, self.network)
        loads = self._loads_unchecked(deployment)
        response_times = self._response_times_unchecked(deployment)
        execution = max(response_times[name] for name in self.workflow.exits)
        penalty = self._penalty_from_loads(loads)
        return CostBreakdown(
            execution_time=execution,
            time_penalty=penalty,
            objective=(
                self.execution_weight * execution
                + self.penalty_weight * penalty
            ),
            loads=loads,
            communication_time=self.total_communication_time(deployment),
            processing_time=self.total_processing_time(deployment),
            response_times=response_times,
        )
