"""The compiled problem IR: one integer-indexed artifact per instance.

The paper's evaluation prices the same ``(workflow, network)`` pair
millions of times -- per candidate move of a local search, per genome of
the genetic algorithm, per leaf of branch-and-bound, per sample of the
32 000-draw quality protocol, per tenant of the fleet. Before this
module, each layer re-derived its own view of that pair: the cost model
kept name-keyed dicts, the incremental move evaluator built private
``Tproc``/delay tables, the router grew per-pair affine caches and the
fleet cached yet another copy per tenant.

:class:`CompiledInstance` compiles a ``(Workflow, ServerNetwork, cost
parameters)`` triple **once** into immutable integer-indexed arrays --
operation/server index maps, the topological order, message endpoint
index pairs with their probability weights, XOR join weights, the
per-``(op, server)`` ``Tproc`` table, per-``(server, server)`` affine
route-delay coefficients and the capacity-proportional ideal-load
vector -- and every consumer borrows the same artifact:

* :class:`~repro.core.cost.CostModel` is a thin façade whose
  ``evaluate``/``objective``/``loads``/``response_times`` run an
  array-index forward pass over the compiled form;
* :class:`~repro.core.incremental.MoveEvaluator` and
  :class:`~repro.core.incremental.TableScorer` keep only their running
  state and dirty-region logic;
* :class:`~repro.simulation.engine.SimulationEngine` reads processing
  durations and message delays from the same tables;
* :class:`~repro.service.state.FleetState` holds one artifact per
  tenant.

Every array entry is computed from exactly the operands (in exactly the
order) the pre-compilation object path used, so compiled evaluation is
bit-identical to the historical name-dict path -- the parity property
tests pin this at 1e-9 and seeded searches return byte-identical
deployments.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import networkx as nx

from repro.core.migration import PENALTY_MODES, TransitionObjective
from repro.core.probability import execution_probabilities
from repro.core.validation import check_well_formed
from repro.core.workflow import NodeKind, Workflow
from repro.exceptions import DeploymentError, UnknownServerError
from repro.network.routing import Router
from repro.network.topology import ServerNetwork

__all__ = [
    "CompiledInstance",
    "PENALTY_MODES",
    "batch_evaluator_or_none",
    "penalty_statistic",
    "JOIN_MAX",
    "JOIN_MIN",
    "JOIN_XOR",
]

#: Join-semantics codes of the forward pass, one per operation:
#: plain nodes and ``AND`` joins wait for every arrival (max).
JOIN_MAX = 0
#: ``OR`` joins complete with the first arrival (min).
JOIN_MIN = 1
#: ``XOR`` joins take the probability-weighted average of arrivals.
JOIN_XOR = 2


def penalty_statistic(values: Sequence[float], mode: str) -> float:
    """The fairness statistic over per-server load *values*.

    The single implementation behind ``CostModel.time_penalty``, the
    move evaluator's penalty refresh and the fleet-level
    ``load_penalty`` -- see :data:`PENALTY_MODES` for the supported
    *mode* strings (an unknown mode falls through to ``"std"``, which
    matches the historical behaviour of every former copy).
    """
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    deviations = [abs(v - mean) for v in values]
    if mode == "mad":
        return sum(deviations) / len(values)
    if mode == "sum_abs":
        return sum(deviations)
    if mode == "max":
        return max(deviations)
    # std
    return math.sqrt(sum(d * d for d in deviations) / len(values))


def batch_evaluator_or_none(compiled, enabled: bool = True):
    """The instance's shared batch evaluator, or ``None`` to go scalar.

    The one fallback idiom every batch consumer shares: returns
    ``compiled.batch_evaluator()`` when *compiled* is present, *enabled*
    is true and NumPy imports; returns ``None`` -- meaning "use your
    scalar path" -- otherwise. Keeps every non-batch code path working
    without NumPy (see :mod:`repro.core.batch`).
    """
    if compiled is None or not enabled:
        return None
    try:
        return compiled.batch_evaluator()
    except RuntimeError:
        return None


class CompiledInstance:
    """A frozen, integer-indexed compilation of one problem instance.

    Compile once, evaluate everywhere: all problem data needed to price
    a deployment lives in flat tuples indexed by small integers, and the
    only per-evaluation input is a server vector ``servers[op_index] ->
    server_index``. The artifact is immutable after construction (the
    route table and region caches fill lazily but never change value),
    with one sanctioned exception: when *link parameters* change at
    runtime, :meth:`invalidate_routes` resets everything derived from
    route delays in place. Any other mutation of the workflow or
    network requires a recompile.

    Parameters
    ----------
    workflow, network:
        The problem instance. The workflow must be a DAG; the network
        must be connected.
    execution_weight, penalty_weight:
        Coefficients of the scalar objective (both >= 0).
    penalty_mode:
        Fairness statistic; one of :data:`PENALTY_MODES`.
    use_probabilities:
        Weight costs by execution probabilities (section 3.4). ``None``
        (default) auto-enables this exactly when the workflow contains
        an ``XOR`` split.
    router:
        Optional pre-built :class:`~repro.network.routing.Router` whose
        per-pair affine coefficients seed the route-delay table; built
        fresh when omitted.
    objective:
        Optional :class:`~repro.core.migration.TransitionObjective`. When
        given it is the single source of truth for every objective
        parameter (the individual keyword arguments are ignored); when
        omitted one is assembled from them, which reproduces the
        historical two-term objective exactly. A transition-aware
        specification additionally compiles the baseline-assignment
        vector and the per-``(op, server)`` migration-cost table.

    Attributes
    ----------
    op_names, op_index:
        Operation names in insertion order and the name -> index map.
    server_names, server_index:
        Server names in network order and the name -> index map.
    order:
        Topological order of the workflow as operation indices.
    exits:
        Indices of exit operations.
    node_prob, cycles, wcycles:
        Per-operation execution probability, raw cycles and
        probability-weighted cycles.
    tproc:
        ``tproc[op][server] = cycles[op] / power[server]`` in seconds.
    power, ideal_cycles, total_power_hz, total_weighted_cycles:
        Per-server capacity, the capacity-proportional cycle budget
        ``Ideal_Cycles(s)`` and the fleet-wide totals they derive from.
    incoming, outgoing:
        Per-operation message endpoints as ``(peer_index, size_bits,
        weight)`` triples in the workflow's adjacency order, where
        *weight* is the unconditional send probability.
    messages:
        All messages in insertion order as ``(source_index,
        target_index, size_bits, weight)``.
    join_code, xor_weights, xor_weight_total:
        Join semantics code (:data:`JOIN_MAX`/:data:`JOIN_MIN`/
        :data:`JOIN_XOR`) plus the static XOR join weights.
    routes:
        The lazily-filled per-``(server, server)`` affine route-delay
        table: ``(propagation_s, transfer_s_per_bit)``, ``None`` when
        not yet resolved, ``()`` for the rare genuinely size-dependent
        pairs (answered by the router per size). Read through
        :meth:`delay` unless you replicate its fallback.
    objective, transition_aware, migration_weight:
        The resolved :class:`~repro.core.migration.TransitionObjective`
        plus its unpacked gate and coefficient.
    baseline_servers, migration_table:
        When transition-aware: the baseline placement as a server-index
        vector and ``migration_table[op][server]`` -- the cost of
        *op* running on *server* relative to its baseline (0.0 on the
        baseline server). ``None`` otherwise.
    """

    def __init__(
        self,
        workflow: Workflow,
        network: ServerNetwork,
        execution_weight: float = 0.5,
        penalty_weight: float = 0.5,
        penalty_mode: str = "mad",
        use_probabilities: bool | None = None,
        router: Router | None = None,
        objective: TransitionObjective | None = None,
    ):
        if objective is None:
            objective = TransitionObjective(
                execution_weight=execution_weight,
                penalty_weight=penalty_weight,
                penalty_mode=penalty_mode,
                use_probabilities=use_probabilities,
            )
        execution_weight = objective.execution_weight
        penalty_weight = objective.penalty_weight
        penalty_mode = objective.penalty_mode
        use_probabilities = objective.use_probabilities
        if penalty_mode not in PENALTY_MODES:
            raise DeploymentError(
                f"unknown penalty mode {penalty_mode!r}; expected one of "
                f"{PENALTY_MODES}"
            )
        if execution_weight < 0 or penalty_weight < 0:
            raise DeploymentError("objective weights must be >= 0")
        network.require_connected()
        if not workflow.is_dag():
            raise DeploymentError(
                f"workflow {workflow.name!r} contains a cycle; the cost "
                f"model requires a DAG"
            )
        self.workflow = workflow
        self.network = network
        self.objective = objective
        self.execution_weight = execution_weight
        self.penalty_weight = penalty_weight
        self.penalty_mode = penalty_mode
        self.migration_weight = objective.migration_weight
        self.transition_aware = objective.transition_aware
        self.router = router or Router(network)

        has_xor = any(op.kind is NodeKind.XOR_SPLIT for op in workflow)
        self.use_probabilities = (
            has_xor if use_probabilities is None else use_probabilities
        )
        if self.use_probabilities:
            workflow.validate_xor_probabilities()
            prob_by_name = execution_probabilities(workflow)
        else:
            prob_by_name = {name: 1.0 for name in workflow.operation_names}

        # ---- index maps --------------------------------------------------
        self.op_names: tuple[str, ...] = workflow.operation_names
        self.op_index: dict[str, int] = {
            name: i for i, name in enumerate(self.op_names)
        }
        self.num_ops = len(self.op_names)
        self.server_names: tuple[str, ...] = network.server_names
        self.server_index: dict[str, int] = {
            name: i for i, name in enumerate(self.server_names)
        }
        self.num_servers = len(self.server_names)

        # ---- per-operation arrays ---------------------------------------
        op_index = self.op_index
        self.order: tuple[int, ...] = tuple(
            op_index[name] for name in workflow.topological_order()
        )
        self.exits: tuple[int, ...] = tuple(
            op_index[name] for name in workflow.exits
        )
        self.node_prob: tuple[float, ...] = tuple(
            prob_by_name[name] for name in self.op_names
        )
        operations = workflow.operations
        self.cycles: tuple[float, ...] = tuple(
            op.cycles for op in operations
        )
        self.wcycles: tuple[float, ...] = tuple(
            op.cycles * prob_by_name[op.name] for op in operations
        )
        self.kinds: tuple[NodeKind, ...] = tuple(
            op.kind for op in operations
        )
        self.join_code: tuple[int, ...] = tuple(
            JOIN_XOR
            if kind is NodeKind.XOR_JOIN
            else (JOIN_MIN if kind is NodeKind.OR_JOIN else JOIN_MAX)
            for kind in self.kinds
        )

        # ---- per-server arrays ------------------------------------------
        self.power: tuple[float, ...] = tuple(
            network.server(name).power_hz for name in self.server_names
        )
        self.total_power_hz: float = network.total_power_hz
        # Tproc(op, s) = C(op) / P(s), the exact division the name-dict
        # path performed per query
        self.tproc: tuple[tuple[float, ...], ...] = tuple(
            tuple(op.cycles / p for p in self.power) for op in operations
        )
        self.total_weighted_cycles: float = sum(
            op.cycles * prob_by_name[op.name] for op in operations
        )
        self.ideal_cycles: tuple[float, ...] = tuple(
            self.total_weighted_cycles * p / self.total_power_hz
            for p in self.power
        )

        # ---- message endpoint arrays ------------------------------------
        incoming: list[tuple[tuple[int, float, float], ...]] = []
        outgoing: list[tuple[tuple[int, float, float], ...]] = []
        for name in self.op_names:
            incoming.append(
                tuple(
                    (
                        op_index[m.source],
                        m.size_bits,
                        prob_by_name[m.source] * m.probability,
                    )
                    for m in workflow.incoming(name)
                )
            )
            outgoing.append(
                tuple(
                    (
                        op_index[m.target],
                        m.size_bits,
                        prob_by_name[m.source] * m.probability,
                    )
                    for m in workflow.outgoing(name)
                )
            )
        self.incoming: tuple[tuple[tuple[int, float, float], ...], ...] = (
            tuple(incoming)
        )
        self.outgoing: tuple[tuple[tuple[int, float, float], ...], ...] = (
            tuple(outgoing)
        )
        self.messages: tuple[tuple[int, int, float, float], ...] = tuple(
            (
                op_index[m.source],
                op_index[m.target],
                m.size_bits,
                prob_by_name[m.source] * m.probability,
            )
            for m in workflow.messages
        )
        # static XOR join weights (and their sums) in arrival order
        self.xor_weights: tuple[tuple[float, ...], ...] = tuple(
            tuple(w for _, _, w in entries) for entries in self.incoming
        )
        self.xor_weight_total: tuple[float, ...] = tuple(
            sum(weights) for weights in self.xor_weights
        )

        # ---- route-delay table (lazily resolved through the router) -----
        self.routes: list[list[tuple[float, float] | None]] = [
            [None] * self.num_servers for _ in range(self.num_servers)
        ]
        for i in range(self.num_servers):
            self.routes[i][i] = (0.0, 0.0)  # co-located: free, any size

        # ---- transition baseline + migration-cost table ------------------
        if self.transition_aware:
            baseline = objective.baseline.as_dict()
            missing = [
                name for name in self.op_names if name not in baseline
            ]
            if missing:
                raise DeploymentError(
                    f"transition baseline is missing operations "
                    f"{missing!r} of workflow {workflow.name!r}"
                )
            self.baseline_servers: tuple[int, ...] | None = tuple(
                self.server_index_of(baseline[name])
                for name in self.op_names
            )
            self.migration_table: tuple[tuple[float, ...], ...] | None = (
                self._compile_migration_table()
            )
        else:
            self.baseline_servers = None
            self.migration_table = None

        # ---- lazily-filled caches ---------------------------------------
        self._graph = workflow.graph
        topo_pos = [0] * self.num_ops
        for pos, op in enumerate(self.order):
            topo_pos[op] = pos
        self._topo_pos: list[int] = topo_pos
        self._dirty: dict[int, tuple[int, ...]] = {}
        self._scopes: dict[int, tuple[int, ...]] | None = None
        self._batch = None

    # ------------------------------------------------------------------
    # index resolution
    # ------------------------------------------------------------------
    def server_index_of(self, server_name: str) -> int:
        """The index of *server_name*, raising ``UnknownServerError``."""
        try:
            return self.server_index[server_name]
        except KeyError:
            raise UnknownServerError(
                f"no server {server_name!r} in network {self.network.name!r}"
            ) from None

    def server_vector(self, deployment) -> list[int]:
        """``servers[op_index] -> server_index`` for a complete mapping.

        The one per-evaluation translation from the name-keyed
        :class:`~repro.core.mapping.Deployment` into the compiled index
        space. The deployment must already be validated (the cost-model
        entry points do so exactly once).
        """
        server_index = self.server_index
        server_of = deployment.server_of
        return [server_index[server_of(name)] for name in self.op_names]

    def _compile_migration_table(self) -> tuple[tuple[float, ...], ...]:
        """``migration_table[op][server]`` priced over the current links."""
        model = self.objective.migration
        # state size scales with *raw* cycles: the operation carries
        # its full state regardless of execution probability
        table = []
        for op in range(self.num_ops):
            source = self.baseline_servers[op]
            bits = model.state_bits(self.cycles[op])
            table.append(
                tuple(
                    0.0
                    if target == source
                    else model.move_cost(self.delay(source, target, bits))
                    for target in range(self.num_servers)
                )
            )
        return tuple(table)

    # ------------------------------------------------------------------
    # route delays
    # ------------------------------------------------------------------
    def compile_all_pairs(self) -> None:
        """Eagerly materialise the whole route-delay table.

        Batched compilation through
        :meth:`~repro.network.routing.Router.compile_all_pairs` (at most
        two single-source Dijkstra passes per server) followed by a bulk
        refill of the lazy per-pair table -- bit-identical entries to
        what lazy per-pair resolution would produce, just without the
        2 per pair targeted runs and without counting cache traffic.
        """
        self.router.compile_all_pairs()
        self._refresh_routes(None)

    def invalidate_routes(
        self,
        changed_links: tuple[tuple[str, str], ...] | None = None,
        worsening: bool = False,
        eager: bool = True,
        speed_changed: bool = True,
        propagation_changed: bool = True,
    ) -> None:
        """Rebuild the route-delay table after link parameters changed.

        The explicit invalidation/rebuild hook of the scenario layer:
        when a link fails, degrades or is upgraded, the compiled
        artifact stays valid *except* for everything derived from route
        delays. By default the refresh is *eager*: the router recomputes
        immediately (link-scoped when *changed_links* is given with
        ``worsening=True`` -- a failure or strict degrade -- full
        otherwise; see :meth:`repro.network.routing.Router.invalidate`
        for the asymmetry) and the route table, the migration-cost table
        and the memoised batch evaluator's dense delay matrices are
        bulk-refilled in one pass instead of trickling back through
        per-pair resolutions mid-rebalance. ``eager=False`` is the
        legacy lazy path: drop everything and let queries refill.

        The contract is *link changes only*: the server set, their
        powers and the workflow must be unchanged (those invalidate the
        whole artifact -- recompile instead). Callers holding
        ``MoveEvaluator``/``TableScorer`` running state over this
        instance must rebuild (or ``resync``) them; the fleet's
        rebalancer constructs them per round, so it gets fresh delays
        automatically.
        """
        if self.network.server_names != self.server_names:
            raise DeploymentError(
                f"invalidate_routes on {self.workflow.name!r} x "
                f"{self.network.name!r}: the server set changed; "
                f"recompile the instance instead"
            )
        if eager:
            affected = self.router.invalidate(
                changed_links=changed_links,
                worsening=worsening,
                speed_changed=speed_changed,
                propagation_changed=propagation_changed,
            )
            self._refresh_routes(affected)
        else:
            self.router.clear_cache()
            self.reset_routes()

    def reset_routes(self) -> None:
        """Drop route-derived state, to refill lazily (legacy path).

        Resets the lazy route table, drops the memoised batch evaluator
        and recompiles the migration table through fresh router queries.
        Does *not* touch the router's own caches -- the owner (the fleet
        state shares one router across tenants) clears or invalidates
        it exactly once.
        """
        self.routes = [
            [None] * self.num_servers for _ in range(self.num_servers)
        ]
        for i in range(self.num_servers):
            self.routes[i][i] = (0.0, 0.0)
        self._batch = None
        if self.transition_aware:
            self.migration_table = self._compile_migration_table()

    def refresh_routes(
        self, affected: set[tuple[str, str]] | None = None
    ) -> None:
        """Refresh route-derived state from an already-updated router.

        The fleet path: the shared router was invalidated (and eagerly
        recomputed) once at the state level; each tenant's compiled
        instance then refreshes its own route table, migration rows and
        batch matrices from the router's caches. *affected* is the
        scoped set of canonical ``(server, server)`` name pairs returned
        by :meth:`repro.network.routing.Router.invalidate` -- the
        recomputed pairs plus any size-dependent pair whose per-size
        fallback entries were dropped (its classification stood but its
        cached per-size prices did not) -- or ``None`` for "every pair
        changed".
        """
        self._refresh_routes(affected)

    def _refresh_routes(
        self, affected: set[tuple[str, str]] | None
    ) -> None:
        if affected is not None and not affected:
            return  # scoped invalidation touched none of the routes
        routes = self.routes
        server_index = self.server_index
        names = self.server_names
        if affected is None:
            pairs = [
                (i, j)
                for i in range(self.num_servers)
                for j in range(i + 1, self.num_servers)
            ]
        else:
            pairs = [
                (server_index[a], server_index[b]) for a, b in affected
            ]
        for i, j in pairs:
            route = self.router.cached_route(names[i], names[j])
            if route is None:  # pragma: no cover - router compiles first
                routes[i][j] = None
                routes[j][i] = None
                continue
            coeff: tuple[float, float] | tuple[()]
            if route.size_independent:
                coeff = (route.propagation_s, route.transfer_s_per_bit)
            else:
                coeff = ()  # size-dependent pair: router answers per size
            # canonical-direction builds make the coefficients exact for
            # both directions (the reverse path sums the same links)
            routes[i][j] = coeff
            routes[j][i] = coeff
        if self.transition_aware:
            if affected is None:
                self.migration_table = self._compile_migration_table()
            else:
                self._refresh_migration_rows(pairs)
        if self._batch is not None:
            scope = None
            if affected is not None:
                scope = {(i, j) for i, j in pairs}
                scope |= {(j, i) for i, j in pairs}
            self._batch.refresh_routes(scope)

    def _refresh_migration_rows(
        self, pairs: list[tuple[int, int]]
    ) -> None:
        """Re-price only the migration moves that cross a changed route."""
        model = self.objective.migration
        touched: dict[int, set[int]] = {}
        for i, j in pairs:
            touched.setdefault(i, set()).add(j)
            touched.setdefault(j, set()).add(i)
        table = [list(row) for row in self.migration_table]
        for op in range(self.num_ops):
            source = self.baseline_servers[op]
            targets = touched.get(source)
            if not targets:
                continue
            bits = model.state_bits(self.cycles[op])
            for target in targets:
                table[op][target] = model.move_cost(
                    self.delay(source, target, bits)
                )
        self.migration_table = tuple(tuple(row) for row in table)

    def _resolve_route(self, source: int, target: int) -> tuple:
        """Fill one route-table slot from the router's classification."""
        coeff = self.router.pair_coefficients(
            self.server_names[source], self.server_names[target]
        )
        if coeff is None:
            coeff = ()  # size-dependent pair: router answers per size
        self.routes[source][target] = coeff
        return coeff

    def route_coefficients(
        self, source: int, target: int
    ) -> tuple[float, float] | tuple[()]:
        """The resolved affine route coefficients of one server pair.

        ``(propagation_s, transfer_s_per_bit)`` for affine pairs, the
        empty tuple for the rare genuinely size-dependent pairs (price
        those through the router per size). Resolves the lazy route
        table slot on first access -- this is the read-through API for
        consumers (such as the batch kernel) that materialise the table
        instead of calling :meth:`delay` per message.
        """
        coeff = self.routes[source][target]
        if coeff is None:
            coeff = self._resolve_route(source, target)
        return coeff

    def delay(self, source: int, target: int, size_bits: float) -> float:
        """``Tcomm`` of one message between two server indices.

        Size-independent pairs (the overwhelmingly common case) are an
        affine evaluation of the cached ``(propagation, transfer)``
        coefficients -- exactly the value
        :meth:`~repro.network.routing.Router.transmission_time` returns,
        from the same operands. Genuinely size-dependent pairs fall back
        to the router per query.
        """
        coeff = self.routes[source][target]
        if coeff is None:
            coeff = self._resolve_route(source, target)
        if coeff:
            return coeff[0] + size_bits * coeff[1]
        return self.router.transmission_time(
            self.server_names[source], self.server_names[target], size_bits
        )

    # ------------------------------------------------------------------
    # the forward pass and its aggregates
    # ------------------------------------------------------------------
    def forward_pass(self, servers: Sequence[int]) -> list[float]:
        """(Expected) finish time of every operation, indexed by op.

        The cost model's expected-time forward pass over the DAG in
        topological order: ``ready(n)`` aggregates arrivals
        ``finish(pred) + Tcomm`` (max for ``AND``/plain, min for ``OR``
        joins, probability-weighted average for ``XOR`` joins) and
        ``finish(n) = ready(n) + Tproc(n)``.
        """
        finish = [0.0] * self.num_ops
        incoming_all = self.incoming
        tproc = self.tproc
        join = self.join_code
        weights_all = self.xor_weights
        weight_total = self.xor_weight_total
        routes = self.routes
        delay = self.delay
        for op in self.order:
            incoming = incoming_all[op]
            if not incoming:
                ready = 0.0
            else:
                dst = servers[op]
                arrivals = []
                append = arrivals.append
                for src, size_bits, _w in incoming:
                    coeff = routes[servers[src]][dst]
                    if coeff:
                        d = coeff[0] + size_bits * coeff[1]
                    else:
                        d = delay(servers[src], dst, size_bits)
                    append(finish[src] + d)
                code = join[op]
                if code == JOIN_XOR:
                    total = weight_total[op]
                    if total <= 0:
                        ready = max(arrivals)
                    else:
                        ready = (
                            sum(
                                w * a
                                for w, a in zip(weights_all[op], arrivals)
                            )
                            / total
                        )
                elif code == JOIN_MIN:
                    ready = min(arrivals)
                else:
                    ready = max(arrivals)
            finish[op] = ready + tproc[op][servers[op]]
        return finish

    def execution_from(self, finish: Sequence[float]) -> float:
        """``Texecute``: the latest finish among exit operations."""
        return max(finish[op] for op in self.exits)

    def load_values(self, servers: Sequence[int]) -> list[float]:
        """``Load(s)`` per server index, in seconds.

        Weighted-cycle sums accumulate in operation insertion order --
        the same floating-point order as the historical name-dict loop.
        """
        totals = [0.0] * self.num_servers
        wcycles = self.wcycles
        for op in range(self.num_ops):
            totals[servers[op]] += wcycles[op]
        power = self.power
        return [totals[j] / power[j] for j in range(self.num_servers)]

    def penalty(self, load_values: Sequence[float]) -> float:
        """The compiled-in fairness statistic over *load_values*."""
        return penalty_statistic(load_values, self.penalty_mode)

    def migration_cost(self, servers: Sequence[int]) -> float:
        """Summed per-op migration cost of *servers* vs the baseline.

        Table lookups accumulate in operation insertion order (the same
        floating-point order as :meth:`load_values`). Exactly ``0.0``
        -- without touching any table -- when the instance is not
        transition-aware, so non-aware callers can pass the result to
        :meth:`objective_value` unconditionally.
        """
        if not self.transition_aware:
            return 0.0
        table = self.migration_table
        total = 0.0
        for op in range(self.num_ops):
            total += table[op][servers[op]]
        return total

    def objective_value(
        self, execution: float, penalty: float, migration: float = 0.0
    ) -> float:
        """The scalar objective from its components.

        The compiled form of
        :meth:`~repro.core.migration.TransitionObjective.value`: the
        migration term participates only when the instance is
        transition-aware, so the historical two-argument call sites are
        byte-identical to the pre-refactor scalar.
        """
        value = (
            self.execution_weight * execution + self.penalty_weight * penalty
        )
        if self.transition_aware:
            return value + self.migration_weight * migration
        return value

    def components(
        self, servers: Sequence[int]
    ) -> tuple[float, float, float]:
        """``(execution_time, time_penalty, objective)`` of one vector."""
        penalty = self.penalty(self.load_values(servers))
        execution = self.execution_from(self.forward_pass(servers))
        migration = self.migration_cost(servers)
        return (
            execution,
            penalty,
            self.objective_value(execution, penalty, migration),
        )

    def communication_time(self, servers: Sequence[int]) -> float:
        """Probability-weighted ``Tcomm`` summed over all messages."""
        total = 0.0
        delay = self.delay
        for src, dst, size_bits, weight in self.messages:
            total += weight * delay(servers[src], servers[dst], size_bits)
        return total

    def processing_time(self, servers: Sequence[int]) -> float:
        """Probability-weighted ``Tproc`` summed over all operations."""
        total = 0.0
        node_prob = self.node_prob
        tproc = self.tproc
        for op in range(self.num_ops):
            total += node_prob[op] * tproc[op][servers[op]]
        return total

    # ------------------------------------------------------------------
    # batched evaluation
    # ------------------------------------------------------------------
    def batch_evaluator(self):
        """The shared :class:`~repro.core.batch.BatchEvaluator`.

        Built lazily on first access and memoised on the artifact, so
        every batch consumer of this instance -- GA generations, sampler
        blocks, neighbourhood sweeps, fleet candidate sets -- shares one
        set of dense delay matrices. Raises ``RuntimeError`` if NumPy is
        unavailable (see :mod:`repro.core.batch`); callers that must
        work without NumPy catch it and fall back to scalar pricing.
        """
        evaluator = self._batch
        if evaluator is None:
            from repro.core.batch import BatchEvaluator

            evaluator = BatchEvaluator(self)
            self._batch = evaluator
        return evaluator

    # ------------------------------------------------------------------
    # graph regions
    # ------------------------------------------------------------------
    def dirty_order(self, op: int) -> tuple[int, ...]:
        """The operation plus its descendants, in topological order.

        Moving an operation changes its own ``Tproc`` and the ``Tcomm``
        of every incident message; the only ``finish()`` values that can
        change are the operation's and its descendants'. Memoised on the
        artifact, so every move evaluator over this instance shares one
        region table.
        """
        cached = self._dirty.get(op)
        if cached is None:
            name = self.op_names[op]
            region = nx.descendants(self._graph, name) | {name}
            topo_pos = self._topo_pos
            cached = tuple(
                sorted(
                    (self.op_index[n] for n in region),
                    key=topo_pos.__getitem__,
                )
            )
            self._dirty[op] = cached
        return cached

    def decision_scopes(self) -> Mapping[int, tuple[int, ...]]:
        """Per-split region membership: split index -> member indices.

        For every well-formed decision region the scope is the split,
        its matching join and everything between them, in topological
        order -- the node set whose costs an ``XOR`` probability
        re-estimate or a region-local rebalance must touch. Computed
        lazily from the well-formedness checker's split/join matching;
        workflows that are not well-formed yield the regions that did
        match (possibly none).
        """
        if self._scopes is None:
            report = check_well_formed(self.workflow)
            topo_pos = self._topo_pos
            scopes: dict[int, tuple[int, ...]] = {}
            for split, join in report.matches.items():
                members = (
                    nx.descendants(self._graph, split)
                    & nx.ancestors(self._graph, join)
                ) | {split, join}
                scopes[self.op_index[split]] = tuple(
                    sorted(
                        (self.op_index[n] for n in members),
                        key=topo_pos.__getitem__,
                    )
                )
            self._scopes = scopes
        return self._scopes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledInstance({self.workflow.name!r} x "
            f"{self.network.name!r}, ops={self.num_ops}, "
            f"servers={self.num_servers})"
        )
