"""The workflow model ``W(O, E)`` of section 2.2.

A *workflow* is a directed graph whose nodes are web-service *operations*
and whose edges are XML *messages* (called *transitions* in the paper).
Operations are either *operational* (they perform a task and cost
``C(op)`` CPU cycles) or *decision* nodes that steer control flow:

``AND``
    all outgoing paths execute, with a rendezvous at the complement
    ``/AND`` node;
``OR``
    all outgoing paths start, but the region completes as soon as one
    path reaches ``/OR``;
``XOR``
    exactly one outgoing path executes, picked with the probability
    annotated on the outgoing edge.

Every decision node must be closed by its complement, and all paths
stemming from a decision node must pass through the complement -- the
*well-formedness* requirement enforced by :mod:`repro.core.validation`.

Units used throughout the library are SI base units:

* operation cost ``C(op)`` -- CPU **cycles**;
* message size -- **bits**;
* server power ``P(s)`` -- **Hz** (cycles/second);
* link speed -- **bits/second**;
* every derived time -- **seconds**.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from enum import Enum
from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro.exceptions import (
    DuplicateOperationError,
    DuplicateTransitionError,
    UnknownOperationError,
    WorkflowError,
)

__all__ = ["NodeKind", "Operation", "Message", "Workflow"]


class NodeKind(Enum):
    """The role an operation plays in the workflow control flow."""

    OPERATIONAL = "operational"
    AND_SPLIT = "and"
    AND_JOIN = "/and"
    OR_SPLIT = "or"
    OR_JOIN = "/or"
    XOR_SPLIT = "xor"
    XOR_JOIN = "/xor"

    @property
    def is_decision(self) -> bool:
        """True for the six decision kinds (splits and joins)."""
        return self is not NodeKind.OPERATIONAL

    @property
    def is_split(self) -> bool:
        """True for ``AND``, ``OR`` and ``XOR`` opening nodes."""
        return self in (NodeKind.AND_SPLIT, NodeKind.OR_SPLIT, NodeKind.XOR_SPLIT)

    @property
    def is_join(self) -> bool:
        """True for ``/AND``, ``/OR`` and ``/XOR`` closing nodes."""
        return self in (NodeKind.AND_JOIN, NodeKind.OR_JOIN, NodeKind.XOR_JOIN)

    @property
    def complement(self) -> "NodeKind":
        """The matching split for a join and vice versa.

        Raises :class:`ValueError` for :attr:`OPERATIONAL`, which has no
        complement.
        """
        pairs = {
            NodeKind.AND_SPLIT: NodeKind.AND_JOIN,
            NodeKind.AND_JOIN: NodeKind.AND_SPLIT,
            NodeKind.OR_SPLIT: NodeKind.OR_JOIN,
            NodeKind.OR_JOIN: NodeKind.OR_SPLIT,
            NodeKind.XOR_SPLIT: NodeKind.XOR_JOIN,
            NodeKind.XOR_JOIN: NodeKind.XOR_SPLIT,
        }
        try:
            return pairs[self]
        except KeyError:
            raise ValueError("operational nodes have no complement") from None


@dataclass(frozen=True)
class Operation:
    """A WSDL operation: a node of the workflow graph.

    Parameters
    ----------
    name:
        Unique identifier within a workflow.
    cycles:
        ``C(op)``, the CPU cycles the operation needs to complete. Decision
        nodes also consume cycles (they are operations that evaluate
        routing conditions), though typically far fewer than operational
        nodes.
    kind:
        Control-flow role; defaults to :attr:`NodeKind.OPERATIONAL`.
    """

    name: str
    cycles: float
    kind: NodeKind = NodeKind.OPERATIONAL

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowError("operation name must be non-empty")
        if not math.isfinite(self.cycles) or self.cycles < 0:
            raise WorkflowError(
                f"operation {self.name!r}: cycles must be finite and >= 0, "
                f"got {self.cycles!r}"
            )

    def with_cycles(self, cycles: float) -> "Operation":
        """Return a copy of this operation with a different cost."""
        return replace(self, cycles=cycles)

    @property
    def is_decision(self) -> bool:
        """Shorthand for ``self.kind.is_decision``."""
        return self.kind.is_decision


@dataclass(frozen=True)
class Message:
    """A transition ``(source, target)``: an XML message between operations.

    Parameters
    ----------
    source, target:
        Names of the sending and receiving operations.
    size_bits:
        ``MsgSize`` in bits.
    probability:
        Conditional probability that this edge is taken *given that the
        source executes*. Every edge that is not an ``XOR`` branch carries
        probability 1. ``XOR`` branch probabilities out of one split must
        sum to 1 (validated at workflow level).
    """

    source: str
    target: str
    size_bits: float
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise WorkflowError(
                f"self-transition on operation {self.source!r} is not allowed"
            )
        if not math.isfinite(self.size_bits) or self.size_bits < 0:
            raise WorkflowError(
                f"message {self.source!r}->{self.target!r}: size must be "
                f"finite and >= 0, got {self.size_bits!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise WorkflowError(
                f"message {self.source!r}->{self.target!r}: probability must "
                f"lie in [0, 1], got {self.probability!r}"
            )

    @property
    def pair(self) -> tuple[str, str]:
        """The ordered ``(source, target)`` operation-name pair."""
        return (self.source, self.target)


class Workflow:
    """A workflow ``W(O, E)``: a digraph of operations linked by messages.

    The class wraps a :class:`networkx.DiGraph` and guarantees the paper's
    structural assumptions at insertion time: operation names are unique,
    and each ordered pair of operations exchanges at most one message.
    Well-formedness of decision regions is checked separately (it is a
    whole-graph property) by :func:`repro.core.validation.check_well_formed`.

    Parameters
    ----------
    name:
        Optional label used in reports and reprs.
    """

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self._graph: nx.DiGraph = nx.DiGraph()
        self._operations: dict[str, Operation] = {}
        self._messages: dict[tuple[str, str], Message] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_operation(self, operation: Operation) -> Operation:
        """Insert *operation*; raise if the name is already used."""
        if operation.name in self._operations:
            raise DuplicateOperationError(
                f"operation {operation.name!r} already exists in {self.name!r}"
            )
        self._operations[operation.name] = operation
        self._graph.add_node(operation.name)
        return operation

    def add_operations(self, operations: Iterable[Operation]) -> None:
        """Insert several operations in order."""
        for operation in operations:
            self.add_operation(operation)

    def add_transition(self, message: Message) -> Message:
        """Insert *message*; both endpoints must already be operations."""
        for endpoint in message.pair:
            if endpoint not in self._operations:
                raise UnknownOperationError(
                    f"transition references unknown operation {endpoint!r}"
                )
        if message.pair in self._messages:
            raise DuplicateTransitionError(
                f"a message {message.source!r}->{message.target!r} already "
                f"exists; the paper allows one message per operation pair"
            )
        self._messages[message.pair] = message
        self._graph.add_edge(*message.pair)
        return message

    def connect(
        self,
        source: str,
        target: str,
        size_bits: float,
        probability: float = 1.0,
    ) -> Message:
        """Convenience wrapper building and inserting a :class:`Message`."""
        return self.add_transition(
            Message(source, target, size_bits, probability)
        )

    def replace_operation(self, operation: Operation) -> None:
        """Swap the stored operation with *operation* (same name).

        Used by workload generators to re-cost an existing workflow without
        rebuilding its structure.
        """
        if operation.name not in self._operations:
            raise UnknownOperationError(
                f"cannot replace unknown operation {operation.name!r}"
            )
        self._operations[operation.name] = operation

    def replace_message(self, message: Message) -> None:
        """Swap the stored message for the same pair with *message*."""
        if message.pair not in self._messages:
            raise UnknownOperationError(
                f"cannot replace unknown transition "
                f"{message.source!r}->{message.target!r}"
            )
        self._messages[message.pair] = message

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._operations

    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations.values())

    def operation(self, name: str) -> Operation:
        """Return the operation called *name* or raise."""
        try:
            return self._operations[name]
        except KeyError:
            raise UnknownOperationError(
                f"no operation {name!r} in workflow {self.name!r}"
            ) from None

    @property
    def operations(self) -> tuple[Operation, ...]:
        """All operations in insertion order."""
        return tuple(self._operations.values())

    @property
    def operation_names(self) -> tuple[str, ...]:
        """All operation names in insertion order."""
        return tuple(self._operations)

    @property
    def messages(self) -> tuple[Message, ...]:
        """All messages in insertion order."""
        return tuple(self._messages.values())

    def message(self, source: str, target: str) -> Message:
        """Return the message ``source -> target`` or raise."""
        try:
            return self._messages[(source, target)]
        except KeyError:
            raise UnknownOperationError(
                f"no transition {source!r}->{target!r} in {self.name!r}"
            ) from None

    def has_message(self, source: str, target: str) -> bool:
        """True when a ``source -> target`` transition exists."""
        return (source, target) in self._messages

    def predecessors(self, name: str) -> tuple[str, ...]:
        """Names of operations sending a message to *name*."""
        self.operation(name)
        return tuple(self._graph.predecessors(name))

    def successors(self, name: str) -> tuple[str, ...]:
        """Names of operations receiving a message from *name*."""
        self.operation(name)
        return tuple(self._graph.successors(name))

    def incoming(self, name: str) -> tuple[Message, ...]:
        """Messages arriving at *name*."""
        return tuple(self._messages[(p, name)] for p in self.predecessors(name))

    def outgoing(self, name: str) -> tuple[Message, ...]:
        """Messages leaving *name*."""
        return tuple(self._messages[(name, s)] for s in self.successors(name))

    @property
    def entries(self) -> tuple[str, ...]:
        """Operations without predecessors (workflow start points)."""
        return tuple(n for n in self._graph.nodes if self._graph.in_degree(n) == 0)

    @property
    def exits(self) -> tuple[str, ...]:
        """Operations without successors (workflow end points)."""
        return tuple(n for n in self._graph.nodes if self._graph.out_degree(n) == 0)

    @property
    def total_cycles(self) -> float:
        """``Sum_Cycles``: the cycles of all operations combined."""
        return sum(op.cycles for op in self._operations.values())

    @property
    def graph(self) -> nx.DiGraph:
        """A read-only view of the underlying digraph."""
        return self._graph.copy(as_view=True)

    def is_dag(self) -> bool:
        """True when the workflow has no cycles."""
        return nx.is_directed_acyclic_graph(self._graph)

    def is_line(self) -> bool:
        """True for a *line* workflow ``O1 -> O2 -> ... -> OM``.

        A line workflow has exactly one entry, one exit, and every node has
        in- and out-degree at most 1. The empty workflow is not a line; a
        single isolated operation is (a degenerate line of length 1).
        """
        if len(self) == 0:
            return False
        if len(self) == 1:
            return True
        if not nx.is_weakly_connected(self._graph):
            return False
        degrees_ok = all(
            self._graph.in_degree(n) <= 1 and self._graph.out_degree(n) <= 1
            for n in self._graph.nodes
        )
        return degrees_ok and len(self.entries) == 1 and len(self.exits) == 1

    def line_order(self) -> tuple[str, ...]:
        """Operations of a line workflow in execution order.

        Raises :class:`WorkflowError` when the workflow is not a line.
        """
        if not self.is_line():
            raise WorkflowError(
                f"workflow {self.name!r} is not a line; use topological_order()"
            )
        if len(self) == 1:
            return self.operation_names
        order = [self.entries[0]]
        while True:
            successors = tuple(self._graph.successors(order[-1]))
            if not successors:
                break
            order.append(successors[0])
        return tuple(order)

    def topological_order(self) -> tuple[str, ...]:
        """A topological ordering of the operations (DAG required)."""
        if not self.is_dag():
            raise WorkflowError(f"workflow {self.name!r} contains a cycle")
        return tuple(nx.topological_sort(self._graph))

    def decision_fraction(self) -> float:
        """Fraction of nodes that are decision nodes (0 for empty)."""
        if not self._operations:
            return 0.0
        decisions = sum(1 for op in self if op.is_decision)
        return decisions / len(self)

    def validate_xor_probabilities(self, tolerance: float = 1e-9) -> None:
        """Check that each XOR split's branch probabilities sum to 1.

        Raises :class:`WorkflowError` on violation. Non-XOR edges must all
        carry probability 1.
        """
        for op in self:
            out = self.outgoing(op.name)
            if op.kind is NodeKind.XOR_SPLIT:
                if not out:
                    continue
                total = sum(m.probability for m in out)
                if abs(total - 1.0) > tolerance:
                    raise WorkflowError(
                        f"XOR split {op.name!r}: branch probabilities sum to "
                        f"{total}, expected 1"
                    )
            else:
                for m in out:
                    if abs(m.probability - 1.0) > tolerance:
                        raise WorkflowError(
                            f"non-XOR edge {m.source!r}->{m.target!r} carries "
                            f"probability {m.probability}, expected 1"
                        )

    # ------------------------------------------------------------------
    # derived workflows
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Workflow":
        """A structural deep copy (operations and messages are immutable)."""
        clone = Workflow(name or self.name)
        clone.add_operations(self.operations)
        for message in self.messages:
            clone.add_transition(message)
        return clone

    def scaled(
        self,
        cycle_factor: float = 1.0,
        message_factor: float = 1.0,
        name: str | None = None,
    ) -> "Workflow":
        """A copy with operation cycles and message sizes scaled.

        Used by Class B experiments to vary the workload intensity without
        changing the workflow structure.
        """
        clone = Workflow(name or f"{self.name}-scaled")
        clone.add_operations(
            op.with_cycles(op.cycles * cycle_factor) for op in self.operations
        )
        for message in self.messages:
            clone.add_transition(
                replace(message, size_bits=message.size_bits * message_factor)
            )
        return clone

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def summary(self) -> Mapping[str, object]:
        """A small dict of structural statistics, handy for reports."""
        return {
            "name": self.name,
            "operations": len(self),
            "messages": len(self._messages),
            "decision_fraction": round(self.decision_fraction(), 4),
            "is_line": self.is_line(),
            "total_cycles": self.total_cycles,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workflow({self.name!r}, operations={len(self)}, "
            f"messages={len(self._messages)})"
        )
