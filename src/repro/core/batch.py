"""Vectorized batch evaluation of deployments over the compiled IR.

Every population- or sweep-shaped consumer used to score deployments one
mapping at a time through scalar Python loops: the genetic algorithm per
chromosome, the 32 000-draw quality protocol per sample, the hill
climber per candidate move, the fleet controller per rebalance
candidate. :class:`BatchEvaluator` scores a whole *batch* of deployments
-- a ``(K, M)`` integer array of server choices, one row per candidate
-- in NumPy across the batch axis:

* the affine route-delay table of the shared
  :class:`~repro.core.compiled.CompiledInstance` is materialised as
  dense ``(S, S)`` base/rate matrices (one per-message delay matrix per
  distinct message size, so genuinely size-dependent pairs are priced
  through the router exactly once per size);
* the topological forward pass runs as ``M`` vectorized steps over
  ``K``-vectors -- ``Tproc`` gathered from the ``(M, S)`` table, message
  delays via fancy-indexed endpoint lookups, and probability-weighted
  ``XOR`` joins accumulated in arrival order;
* per-server loads come from an op-ordered scatter-add and the penalty
  statistic is evaluated column-sequentially, so every reduction runs in
  the exact floating-point order of the scalar path.

**Determinism contract.** Each returned value is computed from exactly
the operands, in exactly the order, that
:meth:`~repro.core.compiled.CompiledInstance.forward_pass`,
:meth:`~repro.core.compiled.CompiledInstance.load_values` and
:meth:`~repro.core.compiled.CompiledInstance.penalty` use -- IEEE-754
double arithmetic is the same whether the lanes are Python floats or
NumPy float64 vectors -- so batch scores are bit-identical to the scalar
path wherever the operation order matches (the parity property suite
pins this, and seeded searches wired through the kernel return the same
deployments as their scalar counterparts). :meth:`BatchScores.argbest`
resolves ties like every existing consumer: the first row attaining the
minimum wins.

NumPy is required *here* but nowhere else: importing
:mod:`repro.core.batch` without NumPy raises a ``RuntimeError`` naming
``pip install numpy``, while every non-batch code path stays importable
(consumers import this module lazily and fall back to their scalar
implementations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - numpy is a declared dep
    raise RuntimeError(
        "repro.core.batch requires NumPy for its vectorized kernel; "
        "install it with `pip install numpy` (every non-batch code path "
        "works without it)"
    ) from exc

from repro.core.compiled import (
    JOIN_MIN,
    JOIN_XOR,
    CompiledInstance,
)
from repro.exceptions import DeploymentError

__all__ = ["BatchEvaluator", "BatchScores"]


@dataclass(frozen=True)
class BatchScores:
    """Scores of one evaluated batch, one entry per row.

    Attributes
    ----------
    execution, penalty, objective:
        ``(K,)`` float arrays: ``Texecute``, the fairness penalty and
        the scalar objective of each batch row, bit-identical to the
        scalar :meth:`~repro.core.compiled.CompiledInstance.components`
        of that row.
    migration:
        ``(K,)`` float array of per-row migration costs vs the
        transition baseline (already folded into ``objective`` with the
        migration weight); ``None`` when the compiled instance is not
        transition-aware.
    """

    execution: "np.ndarray"
    penalty: "np.ndarray"
    objective: "np.ndarray"
    migration: "np.ndarray | None" = None

    def __len__(self) -> int:
        """Number of scored rows."""
        return len(self.objective)

    def argbest(self) -> int:
        """Index of the best (minimum-objective) row.

        Ties resolve to the *first* minimal row -- the deterministic
        order every scalar consumer already uses (``max``/``min`` over
        a scan keeps the first extremum; ``np.argmin`` does the same).
        Raises on an empty batch.
        """
        if len(self.objective) == 0:
            raise DeploymentError("argbest() on an empty batch")
        return int(np.argmin(self.objective))


class BatchEvaluator:
    """Score batches of deployments against one compiled instance.

    Built once from a :class:`~repro.core.compiled.CompiledInstance`
    (construction resolves every server-pair route into the dense delay
    matrices); each :meth:`evaluate` call then prices ``K`` candidate
    deployments in ``M`` vectorized steps. Obtain the shared per-artifact
    evaluator through
    :meth:`CompiledInstance.batch_evaluator
    <repro.core.compiled.CompiledInstance.batch_evaluator>` rather than
    constructing duplicates.

    Parameters
    ----------
    compiled:
        The compiled problem instance to evaluate against.
    """

    def __init__(self, compiled: CompiledInstance):
        self.compiled = compiled
        self.num_ops = compiled.num_ops
        self.num_servers = compiled.num_servers
        self._order = compiled.order
        self._exits = compiled.exits
        self._join = compiled.join_code
        self._tproc = np.asarray(compiled.tproc, dtype=np.float64)
        self._wcycles = np.asarray(compiled.wcycles, dtype=np.float64)
        self._power = np.asarray(compiled.power, dtype=np.float64)
        self._xor_weights = compiled.xor_weights
        self._xor_total = compiled.xor_weight_total
        # (M, S) migration-cost table when transition-aware, else None
        self._migration_table = (
            np.asarray(compiled.migration_table, dtype=np.float64)
            if compiled.transition_aware
            else None
        )

        # ---- dense (S, S) affine route-delay matrices -----------------
        servers = self.num_servers
        base = np.zeros((servers, servers))
        rate = np.zeros((servers, servers))
        sized_pairs: list[tuple[int, int]] = []
        for i in range(servers):
            for j in range(servers):
                coeff = compiled.route_coefficients(i, j)
                if coeff:
                    base[i, j] = coeff[0]
                    rate[i, j] = coeff[1]
                else:
                    # genuinely size-dependent pair: priced per message
                    # size through the router when the matrix is built
                    sized_pairs.append((i, j))
        self._base = base
        self._rate = rate
        self._sized_pairs = tuple(sized_pairs)
        self._delay_matrices: dict[float, np.ndarray] = {}

        # ---- per-operation incoming edges, delay matrix attached ------
        self._incoming: tuple[tuple[tuple[int, "np.ndarray"], ...], ...] = (
            tuple(
                tuple(
                    (src, self._delay_matrix(size_bits))
                    for src, size_bits, _weight in compiled.incoming[op]
                )
                for op in range(self.num_ops)
            )
        )

    # ------------------------------------------------------------------
    # delay matrices
    # ------------------------------------------------------------------
    def _delay_matrix(self, size_bits: float) -> "np.ndarray":
        """The dense ``(S, S)`` delay matrix for one message size.

        ``base + size * rate`` elementwise -- the same expression the
        scalar :meth:`~repro.core.compiled.CompiledInstance.delay`
        evaluates per query, so every entry is the identical float.
        Size-dependent pairs are answered by the router, once per size.
        """
        matrix = self._delay_matrices.get(size_bits)
        if matrix is None:
            matrix = self._base + size_bits * self._rate
            if self._sized_pairs:
                router = self.compiled.router
                names = self.compiled.server_names
                values = router.transmission_times(
                    [(names[i], names[j]) for i, j in self._sized_pairs],
                    size_bits,
                )
                for (i, j), value in zip(self._sized_pairs, values):
                    matrix[i, j] = value
            self._delay_matrices[size_bits] = matrix
        return matrix

    def refresh_routes(
        self, affected: "set[tuple[int, int]] | None" = None
    ) -> None:
        """Rebuild the dense delay matrices after a route refresh.

        Called by :meth:`CompiledInstance.refresh_routes
        <repro.core.compiled.CompiledInstance.refresh_routes>` once the
        shared route table holds the post-event coefficients: re-reads
        every pair into ``base``/``rate`` and recomputes each cached
        per-size matrix **in place**, because the per-operation incoming
        tuples hold references to those arrays. One bulk pass instead of
        discarding the evaluator and re-resolving every pair lazily.

        *affected* (index pairs, both directions) scopes the expensive
        part: a size-dependent pair outside the affected set kept its
        per-size optimal paths across the (strictly worsening) change,
        so its old matrix entries are restored verbatim instead of
        re-running one Dijkstra per cached message size. That is only
        sound because :meth:`repro.network.routing.Router.invalidate`
        reports *every* pair whose per-size fallback entries it dropped
        -- including pairs whose classification paths avoid the change
        while some per-size optimum crossed it -- so anything outside
        *affected* provably kept all its sized paths. ``None`` means
        every pair may have changed -- re-query them all.
        """
        servers = self.num_servers
        compiled = self.compiled
        base = np.zeros((servers, servers))
        rate = np.zeros((servers, servers))
        sized_pairs: list[tuple[int, int]] = []
        for i in range(servers):
            for j in range(servers):
                coeff = compiled.route_coefficients(i, j)
                if coeff:
                    base[i, j] = coeff[0]
                    rate[i, j] = coeff[1]
                else:
                    sized_pairs.append((i, j))
        self._base = base
        self._rate = rate
        self._sized_pairs = tuple(sized_pairs)
        if compiled.transition_aware:
            self._migration_table = np.asarray(
                compiled.migration_table, dtype=np.float64
            )
        router = compiled.router
        names = compiled.server_names
        for size_bits, matrix in self._delay_matrices.items():
            kept = {
                (i, j): matrix[i, j]
                for i, j in self._sized_pairs
                if affected is not None and (i, j) not in affected
            }
            matrix[...] = base + size_bits * rate
            requery: list[tuple[int, int]] = []
            for i, j in self._sized_pairs:
                value = kept.get((i, j))
                if value is not None:
                    matrix[i, j] = value
                else:
                    requery.append((i, j))
            if requery:
                values = router.transmission_times(
                    [(names[i], names[j]) for i, j in requery], size_bits
                )
                for (i, j), value in zip(requery, values):
                    matrix[i, j] = value

    # ------------------------------------------------------------------
    # batch construction helpers
    # ------------------------------------------------------------------
    def index_batch(self, genomes: Iterable[Sequence[str]]) -> "np.ndarray":
        """``(K, M)`` index batch from server-*name* genomes.

        Each genome lists one server name per operation **in compiled
        operation order** (the workflow's ``operation_names`` order --
        what the genetic algorithm and the sampler draw). Unknown names
        raise :class:`~repro.exceptions.DeploymentError`.
        """
        server_index = self.compiled.server_index
        try:
            rows = [
                [server_index[name] for name in genome] for genome in genomes
            ]
        except KeyError as exc:
            raise DeploymentError(
                f"unknown server {exc.args[0]!r} in batch genome"
            ) from None
        if not rows:
            return np.empty((0, self.num_ops), dtype=np.intp)
        return np.asarray(rows, dtype=np.intp)

    def neighborhood(self, servers: Sequence[int]) -> "np.ndarray":
        """The single-move neighbourhood grid of one server vector.

        Returns the ``(M * S, M)`` batch in which row ``op * S + s``
        relocates operation ``op`` onto server ``s`` (rows where ``s``
        is the operation's current server are no-op rows scoring the
        incumbent). Row order matches the scalar hill-climbing scan --
        operations outer, servers inner -- so
        :meth:`BatchScores.argbest` picks the same move the scalar
        best-improvement sweep would.
        """
        base = np.asarray(servers, dtype=np.intp)
        if base.shape != (self.num_ops,):
            raise DeploymentError(
                f"server vector must have length {self.num_ops}, got "
                f"shape {base.shape}"
            )
        count = self.num_ops * self.num_servers
        grid = np.repeat(base[None, :], count, axis=0)
        rows = np.arange(count)
        grid[rows, rows // self.num_servers] = rows % self.num_servers
        return grid

    # ------------------------------------------------------------------
    # the batched kernel
    # ------------------------------------------------------------------
    def _coerce(self, batch) -> "np.ndarray":
        b = np.asarray(batch, dtype=np.intp)
        if b.ndim == 1 and b.size == 0:
            b = b.reshape(0, self.num_ops)
        if b.ndim != 2 or b.shape[1] != self.num_ops:
            raise DeploymentError(
                f"batch must be a (K, {self.num_ops}) array of server "
                f"indices, got shape {b.shape}"
            )
        if b.size and (b.min() < 0 or b.max() >= self.num_servers):
            raise DeploymentError(
                f"batch contains server indices outside "
                f"[0, {self.num_servers})"
            )
        return b

    def evaluate(self, batch) -> BatchScores:
        """Score every row of *batch*: ``(execution, penalty, objective)``.

        *batch* is any array-like coercible to a ``(K, M)`` integer
        array, ``batch[k][op_index] -> server_index``. ``K = 0`` is
        valid and returns empty arrays. Each row's three scores equal
        the scalar
        :meth:`~repro.core.compiled.CompiledInstance.components` of that
        row (see the module determinism contract).
        """
        b = self._coerce(batch)
        count = b.shape[0]
        if count == 0:
            empty = np.empty(0)
            return BatchScores(
                empty,
                empty.copy(),
                empty.copy(),
                empty.copy() if self._migration_table is not None else None,
            )
        # op-major transpose: bT[op] is one contiguous K-vector of the
        # batch's server choices for that operation
        bT = np.ascontiguousarray(b.T)
        execution = self._execution(bT)
        penalty = self._penalty(self._loads(bT))
        compiled = self.compiled
        objective = (
            compiled.execution_weight * execution
            + compiled.penalty_weight * penalty
        )
        if self._migration_table is None:
            return BatchScores(execution, penalty, objective)
        migration = self._migration(bT)
        # the same left-to-right order as the scalar objective_value:
        # (ew*e + pw*p) first, then + mw*m
        objective = objective + compiled.migration_weight * migration
        return BatchScores(execution, penalty, objective, migration)

    def _execution(self, bT: "np.ndarray") -> "np.ndarray":
        """``Texecute`` per row: the vectorized topological forward pass."""
        count = bT.shape[1]
        tproc = self._tproc
        join = self._join
        xor_weights = self._xor_weights
        xor_total = self._xor_total
        finish = np.empty((self.num_ops, count))
        for op in self._order:
            edges = self._incoming[op]
            row = tproc[op]
            dst = bT[op]
            if not edges:
                finish[op] = row[dst]
                continue
            code = join[op]
            if code == JOIN_XOR and xor_total[op] > 0:
                # probability-weighted average, accumulated in arrival
                # order (matches the scalar sequential sum bit-for-bit)
                total = xor_total[op]
                ready = None
                for (src, delay), weight in zip(edges, xor_weights[op]):
                    arrival = finish[src] + delay[bT[src], dst]
                    term = weight * arrival
                    ready = term if ready is None else ready + term
                ready = ready / total
            elif code == JOIN_MIN:
                ready = None
                for src, delay in edges:
                    arrival = finish[src] + delay[bT[src], dst]
                    ready = (
                        arrival
                        if ready is None
                        else np.minimum(ready, arrival)
                    )
            else:
                # plain/AND joins -- and XOR joins whose static weights
                # sum to zero, exactly as the scalar pass degrades
                ready = None
                for src, delay in edges:
                    arrival = finish[src] + delay[bT[src], dst]
                    ready = (
                        arrival
                        if ready is None
                        else np.maximum(ready, arrival)
                    )
            finish[op] = ready + row[dst]
        execution = finish[self._exits[0]].copy()
        for op in self._exits[1:]:
            np.maximum(execution, finish[op], out=execution)
        return execution

    def _loads(self, bT: "np.ndarray") -> "np.ndarray":
        """``(K, S)`` per-server loads in seconds.

        The scatter-add runs one operation at a time (row indices are
        unique within a step), so each ``(row, server)`` slot
        accumulates its weighted cycles in operation insertion order --
        the exact float sequence of the scalar
        :meth:`~repro.core.compiled.CompiledInstance.load_values`.
        """
        count = bT.shape[1]
        totals = np.zeros((count, self.num_servers))
        rows = np.arange(count)
        wcycles = self._wcycles
        for op in range(self.num_ops):
            totals[rows, bT[op]] += wcycles[op]
        return totals / self._power

    def _migration(self, bT: "np.ndarray") -> "np.ndarray":
        """``(K,)`` migration cost per row vs the transition baseline.

        Accumulates one operation at a time, so each row's total adds
        its table lookups in operation insertion order -- the exact
        float sequence of the scalar
        :meth:`~repro.core.compiled.CompiledInstance.migration_cost`.
        """
        count = bT.shape[1]
        table = self._migration_table
        totals = np.zeros(count)
        for op in range(self.num_ops):
            totals += table[op][bT[op]]
        return totals

    def _penalty(self, loads: "np.ndarray") -> "np.ndarray":
        """The compiled-in fairness statistic, one value per row.

        Column-sequential accumulation over the server axis keeps every
        sum in the scalar
        :func:`~repro.core.compiled.penalty_statistic` order.
        """
        count, servers = loads.shape
        if servers == 0:  # pragma: no cover - networks are never empty
            return np.zeros(count)
        acc = np.zeros(count)
        for j in range(servers):
            acc += loads[:, j]
        mean = acc / servers
        mode = self.compiled.penalty_mode
        if mode == "max":
            worst = np.abs(loads[:, 0] - mean)
            for j in range(1, servers):
                np.maximum(worst, np.abs(loads[:, j] - mean), out=worst)
            return worst
        if mode == "std":
            squares = np.zeros(count)
            for j in range(servers):
                deviation = np.abs(loads[:, j] - mean)
                squares += deviation * deviation
            return np.sqrt(squares / servers)
        total = np.zeros(count)
        for j in range(servers):
            total += np.abs(loads[:, j] - mean)
        if mode == "sum_abs":
            return total
        return total / servers  # mad

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchEvaluator(ops={self.num_ops}, "
            f"servers={self.num_servers})"
        )
