"""Execution-probability propagation (section 3.4).

Random-graph workflows contain ``XOR`` decision nodes, so a given
operation (and therefore a given message) only executes in some fraction
of workflow runs. The graph-topology algorithms weight every cost by that
fraction, amortising the deployment decision over many executions. The
paper obtains the branch weights "by monitoring initial executions of the
workflow or simple prediction mechanisms"; here they are supplied as edge
annotations (see :class:`repro.core.workflow.Message.probability`) and
propagated through the DAG:

* an entry operation executes with probability 1;
* the unconditional probability of an edge ``u -> v`` is
  ``prob(u) * branch_probability(u -> v)``;
* an ``XOR`` join fires with the *sum* of its incoming edge probabilities
  (exactly one branch runs);
* an ``AND``/``OR`` join fires whenever its region was entered, i.e. with
  the probability of its matched split -- which equals the *maximum* of
  its incoming edge probabilities in a well-formed workflow;
* any other node with a single predecessor inherits that edge's
  probability. Operational nodes with several predecessors are treated
  like ``AND`` joins (all inputs stem from the same region entry).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.workflow import NodeKind, Workflow

__all__ = ["execution_probabilities", "message_probabilities"]


def execution_probabilities(workflow: Workflow) -> dict[str, float]:
    """Per-operation execution probability, amortised over many runs.

    The workflow must be a DAG (raises through
    :meth:`Workflow.topological_order` otherwise). Probabilities are
    clamped to ``[0, 1]`` to absorb floating-point drift in deeply nested
    regions.
    """
    probabilities: dict[str, float] = {}
    for name in workflow.topological_order():
        operation = workflow.operation(name)
        incoming = workflow.incoming(name)
        if not incoming:
            probabilities[name] = 1.0
            continue
        edge_probs = [
            probabilities[m.source] * m.probability for m in incoming
        ]
        if operation.kind is NodeKind.XOR_JOIN:
            value = sum(edge_probs)
        else:
            value = max(edge_probs)
        probabilities[name] = min(1.0, max(0.0, value))
    return probabilities


def message_probabilities(
    workflow: Workflow,
    node_probabilities: Mapping[str, float] | None = None,
) -> dict[tuple[str, str], float]:
    """Unconditional probability that each message is actually sent.

    Parameters
    ----------
    workflow:
        The workflow whose messages are weighted.
    node_probabilities:
        Optional precomputed result of :func:`execution_probabilities`;
        recomputed when omitted.
    """
    if node_probabilities is None:
        node_probabilities = execution_probabilities(workflow)
    return {
        message.pair: node_probabilities[message.source] * message.probability
        for message in workflow.messages
    }
