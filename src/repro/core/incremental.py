"""Incremental move evaluation for deployment search.

Every search algorithm in this repository explores the *move*
neighbourhood -- relocate one operation to another server -- but the
:class:`~repro.core.cost.CostModel` prices each candidate from scratch:
two O(M) validation passes, a full load recompute and a complete forward
pass over the DAG, even though a single move only perturbs the moved
operation's region. This module provides the cheap per-candidate
evaluation that makes search over deployment spaces tractable at scale:

:class:`MoveEvaluator`
    Attaches once to a ``(CostModel, Deployment)`` pair -- validating a
    single time -- and answers ``propose(op, server)`` in time
    proportional to the *affected region*: the compiled per-``(op,
    server)`` ``Tproc`` table, the per-server-pair affine route-delay
    coefficients, O(1) running-sum load deltas (the penalty statistic
    itself is O(N) for ``mad``/``std``-style modes because the mean
    shifts), and a dirty-region forward pass that recomputes ``finish()``
    only for the moved operation's descendants.

:class:`TableScorer`
    Full-mapping scoring against the same tables, for algorithms that
    evaluate complete candidate mappings (genetic genomes,
    branch-and-bound leaves, the 32 000-sample quality protocol) --
    no throwaway ``Deployment`` construction, no validation passes.

Both borrow the cost model's
:class:`~repro.core.compiled.CompiledInstance` instead of building
private tables: one compilation of the problem instance serves the cost
model, every evaluator and scorer attached to it, the simulation engine
and the fleet. Dirty-region orders are memoised *on the artifact*, so
concurrent searches over the same instance share them too.

Both are guarded by an exact-equivalence contract: for any reachable
state, :attr:`MoveEvaluator.objective` and :meth:`TableScorer.objective`
agree with :meth:`CostModel.evaluate` (the property tests assert 1e-9;
in practice the forward pass is bit-identical because every term is
computed from the same operands in the same order, and only the
running-sum load totals may drift by ulps over very long move sequences
-- bounded by a periodic resync).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.cost import CostBreakdown, CostModel
from repro.core.mapping import Deployment
from repro.exceptions import DeploymentError

__all__ = ["MoveEvaluator", "MoveOutcome", "TableScorer"]

#: Commits between full load-table resyncs (bounds floating-point drift
#: of the running sums; the forward pass needs no resync -- it is exact).
DEFAULT_RESYNC_INTERVAL = 256


@dataclass(frozen=True)
class MoveOutcome:
    """The evaluation of one proposed move.

    Attributes
    ----------
    operation, server:
        The proposed move: relocate *operation* onto *server*.
    previous_server:
        Where the operation currently lives.
    objective, execution_time, time_penalty:
        The cost the deployment would have *after* the move.
    delta:
        ``objective - current objective`` (negative improves).
    migration_cost:
        The deployment's total migration cost vs the transition
        baseline *after* the move (0.0 when not transition-aware).
    """

    operation: str
    server: str
    previous_server: str
    objective: float
    execution_time: float
    time_penalty: float
    delta: float
    migration_cost: float = 0.0


class MoveEvaluator:
    """Incremental objective evaluation over single-operation moves.

    Attaches to a ``(cost_model, deployment)`` pair; the deployment is
    validated exactly once, here. After attachment the evaluator owns
    the move lifecycle: query candidates with :meth:`propose` (no
    mutation), make the last proposal real with :meth:`commit` (which
    also updates the attached :class:`~repro.core.mapping.Deployment`
    in place), or do both with :meth:`apply`. Mutating the deployment
    behind the evaluator's back desynchronises it -- call
    :meth:`resync` if that cannot be avoided.

    All static problem data -- index maps, ``Tproc``, route-delay
    coefficients, join weights, dirty regions -- comes from the cost
    model's shared :class:`~repro.core.compiled.CompiledInstance`; the
    evaluator itself holds only the running state of its deployment.

    Parameters
    ----------
    cost_model:
        The cost model defining the objective.
    deployment:
        A complete mapping; taken over (and kept in sync) by the
        evaluator.
    resync_interval:
        Commits between from-scratch load-table recomputations, bounding
        running-sum floating-point drift. ``0`` disables resyncs.
    """

    def __init__(
        self,
        cost_model: CostModel,
        deployment: Deployment,
        resync_interval: int = DEFAULT_RESYNC_INTERVAL,
    ):
        if resync_interval < 0:
            raise DeploymentError("resync_interval must be >= 0")
        deployment.validate(cost_model.workflow, cost_model.network)
        self.cost_model = cost_model
        self.compiled = cost_model.compiled
        self.deployment = deployment
        self.resync_interval = resync_interval
        self._pending: tuple | None = None
        self._commits_since_resync = 0
        #: Number of :meth:`propose` evaluations answered (diagnostics).
        self.proposals = 0
        self.resync()

    # ------------------------------------------------------------------
    # state (re)construction
    # ------------------------------------------------------------------
    def resync(self) -> None:
        """Recompute every running table from the attached deployment.

        Called on attach, after external deployment mutation, and
        periodically (every *resync_interval* commits) to squash
        running-sum drift.
        """
        compiled = self.compiled
        self._servers: list[int] = compiled.server_vector(self.deployment)
        # running per-server weighted-cycle sums, in cost-model load order
        cycles = [0.0] * compiled.num_servers
        wcycles = compiled.wcycles
        for op in range(compiled.num_ops):
            cycles[self._servers[op]] += wcycles[op]
        self._cycles = cycles
        self._finish: list[float] = compiled.forward_pass(self._servers)
        self._proc_total = compiled.processing_time(self._servers)
        self._comm_total = compiled.communication_time(self._servers)
        # load values as a positional list (cost-model server order) so a
        # proposal can patch two slots instead of rebuilding the list
        power = compiled.power
        self._loads_list = [
            cycles[j] / power[j] for j in range(compiled.num_servers)
        ]
        self._migration = compiled.migration_cost(self._servers)
        self._refresh_scalars()
        self._pending = None
        self._commits_since_resync = 0

    def _refresh_scalars(self) -> None:
        compiled = self.compiled
        self._execution = compiled.execution_from(self._finish)
        self._penalty = compiled.penalty(self._loads_list)
        self._objective = compiled.objective_value(
            self._execution, self._penalty, self._migration
        )

    # ------------------------------------------------------------------
    # current state
    # ------------------------------------------------------------------
    @property
    def objective(self) -> float:
        """The scalar objective of the attached deployment."""
        return self._objective

    @property
    def execution_time(self) -> float:
        """``Texecute`` of the attached deployment."""
        return self._execution

    @property
    def time_penalty(self) -> float:
        """The fairness penalty of the attached deployment."""
        return self._penalty

    @property
    def migration_cost(self) -> float:
        """Total migration cost vs the baseline (0.0 when not aware)."""
        return self._migration

    def response_times(self) -> dict[str, float]:
        """Per-operation finish times (a copy of the running table)."""
        compiled = self.compiled
        finish = self._finish
        return {compiled.op_names[op]: finish[op] for op in compiled.order}

    def loads(self) -> dict[str, float]:
        """Per-server load in seconds (from the running cycle sums)."""
        compiled = self.compiled
        return {
            compiled.server_names[j]: self._cycles[j] / compiled.power[j]
            for j in range(compiled.num_servers)
        }

    def breakdown(self) -> CostBreakdown:
        """A full :class:`~repro.core.cost.CostBreakdown`, incrementally.

        Matches :meth:`CostModel.evaluate` on the attached deployment
        (to within running-sum drift, see the module docstring).
        """
        return CostBreakdown(
            execution_time=self._execution,
            time_penalty=self._penalty,
            objective=self._objective,
            loads=self.loads(),
            communication_time=self._comm_total,
            processing_time=self._proc_total,
            response_times=self.response_times(),
            migration_cost=self._migration,
        )

    # ------------------------------------------------------------------
    # the move lifecycle
    # ------------------------------------------------------------------
    def propose(self, operation: str, server: str) -> MoveOutcome:
        """Price moving *operation* onto *server* without mutating.

        Cost: one dirty-region forward pass (the operation and its
        descendants) plus an O(N) penalty refresh; nothing else is
        touched. The result is cached so an immediately following
        :meth:`commit` is free.
        """
        compiled = self.compiled
        op = compiled.op_index[operation]
        target = compiled.server_index.get(server)
        if target is None:
            raise DeploymentError(
                f"cannot move {operation!r}: unknown server {server!r}"
            )
        source = self._servers[op]
        if target == source:
            outcome = MoveOutcome(
                operation, server, server,
                self._objective, self._execution, self._penalty, 0.0,
                self._migration,
            )
            self._pending = None
            return outcome
        self.proposals += 1
        priced = self._price(op, target, source)
        objective, execution, penalty = priced[0], priced[1], priced[2]
        outcome = MoveOutcome(
            operation,
            server,
            compiled.server_names[source],
            objective,
            execution,
            penalty,
            objective - self._objective,
            priced[8],
        )
        self._pending = (outcome, op, target, source) + priced[3:]
        return outcome

    def propose_value(self, operation: str, server: str) -> float:
        """Scalar objective of the move -- the scan-loop fast path.

        Same float results as :meth:`propose`, but nothing is packaged
        into a :class:`MoveOutcome` and nothing is cached for
        :meth:`commit` (any previously pending move is dropped). Use it
        for neighbourhood scans that only compare objectives and
        re-:meth:`propose` the winner.
        """
        compiled = self.compiled
        op = compiled.op_index[operation]
        target = compiled.server_index.get(server)
        if target is None:
            raise DeploymentError(
                f"cannot move {operation!r}: unknown server {server!r}"
            )
        self._pending = None
        source = self._servers[op]
        if target == source:
            return self._objective
        self.proposals += 1
        return self._price(op, target, source)[0]

    def _price(self, op: int, target: int, source: int):
        """Dirty-region pricing core shared by propose/propose_value.

        Returns ``(objective, execution, penalty, new_finish,
        source_cycles, target_cycles, source_load, target_load,
        migration)`` where *new_finish* maps dirty op indices to their
        new finish times and *migration* is the deployment's total
        migration cost after the move.
        """
        compiled = self.compiled
        # dirty-region forward pass over {op} U descendants; the server
        # vector is patched in place for the pass (and restored) rather
        # than copied -- plain list indexing in the hot loop
        servers = self._servers
        old_finish = self._finish
        new_finish: dict[int, float] = {}
        servers[op] = target
        try:
            incoming_all = compiled.incoming
            tproc = compiled.tproc
            join = compiled.join_code
            weights_all = compiled.xor_weights
            weight_total = compiled.xor_weight_total
            routes = compiled.routes
            delay = compiled.delay
            get = new_finish.get
            for node in compiled.dirty_order(op):
                incoming = incoming_all[node]
                if not incoming:
                    ready = 0.0
                else:
                    dst = servers[node]
                    arrivals = []
                    append = arrivals.append
                    for src, size_bits, _w in incoming:
                        upstream = get(src)
                        if upstream is None:
                            upstream = old_finish[src]
                        coeff = routes[servers[src]][dst]
                        if coeff:
                            d = coeff[0] + size_bits * coeff[1]
                        else:
                            d = delay(servers[src], dst, size_bits)
                        append(upstream + d)
                    code = join[node]
                    if code == 2:  # JOIN_XOR
                        total = weight_total[node]
                        if total <= 0:
                            ready = max(arrivals)
                        else:
                            ready = (
                                sum(
                                    w * a
                                    for w, a in zip(
                                        weights_all[node], arrivals
                                    )
                                )
                                / total
                            )
                    elif code == 1:  # JOIN_MIN
                        ready = min(arrivals)
                    else:
                        ready = max(arrivals)
                new_finish[node] = ready + tproc[node][servers[node]]
        finally:
            servers[op] = source
        execution = max(
            (
                new_finish[node]
                if node in new_finish
                else old_finish[node]
            )
            for node in compiled.exits
        )
        # O(1) running-sum load delta on the two affected servers; the
        # shared loads list is patched in place (and restored) so the
        # penalty statistic reads positionally, with no per-server branch
        weighted = compiled.wcycles[op]
        new_source_cycles = self._cycles[source] - weighted
        new_target_cycles = self._cycles[target] + weighted
        source_load = new_source_cycles / compiled.power[source]
        target_load = new_target_cycles / compiled.power[target]
        loads = self._loads_list
        old_i, old_j = loads[source], loads[target]
        loads[source] = source_load
        loads[target] = target_load
        try:
            penalty = compiled.penalty(loads)
        finally:
            loads[source] = old_i
            loads[target] = old_j
        if compiled.transition_aware:
            # O(1) migration delta: only the moved op's table row changes
            row = compiled.migration_table[op]
            migration = self._migration + row[target] - row[source]
        else:
            migration = self._migration
        objective = compiled.objective_value(execution, penalty, migration)
        return (
            objective,
            execution,
            penalty,
            new_finish,
            new_source_cycles,
            new_target_cycles,
            source_load,
            target_load,
            migration,
        )

    def commit(self) -> MoveOutcome:
        """Make the last :meth:`propose` real.

        Applies the cached dirty-region results, updates the running
        sums and assigns the move into the attached deployment. Raises
        when there is nothing to commit.
        """
        if self._pending is None:
            raise DeploymentError(
                "no pending move: call propose() before commit()"
            )
        (
            outcome,
            op,
            target,
            source,
            new_finish,
            source_cycles,
            target_cycles,
            source_load,
            target_load,
            migration,
        ) = self._pending
        self._pending = None
        compiled = self.compiled
        servers = self._servers
        servers[op] = target
        self.deployment.assign(outcome.operation, outcome.server)
        finish = self._finish
        for node, value in new_finish.items():
            finish[node] = value
        self._cycles[source] = source_cycles
        self._cycles[target] = target_cycles
        self._loads_list[source] = source_load
        self._loads_list[target] = target_load
        # diagnostics totals: O(degree) message + O(1) processing deltas
        tproc_row = compiled.tproc[op]
        self._proc_total += compiled.node_prob[op] * (
            tproc_row[target] - tproc_row[source]
        )
        delay = compiled.delay
        for src, size_bits, weight in compiled.incoming[op]:
            src_server = servers[src]
            self._comm_total += weight * (
                delay(src_server, target, size_bits)
                - delay(src_server, source, size_bits)
            )
        for dst, size_bits, weight in compiled.outgoing[op]:
            dst_server = servers[dst]
            self._comm_total += weight * (
                delay(target, dst_server, size_bits)
                - delay(source, dst_server, size_bits)
            )
        self._execution = outcome.execution_time
        self._penalty = outcome.time_penalty
        self._objective = outcome.objective
        self._migration = migration
        self._commits_since_resync += 1
        if (
            self.resync_interval
            and self._commits_since_resync >= self.resync_interval
        ):
            self.resync()
        return outcome

    def apply(self, operation: str, server: str) -> MoveOutcome:
        """:meth:`propose` + :meth:`commit` in one call.

        A no-op (returned outcome has ``delta == 0``) when the operation
        already lives on *server*.
        """
        outcome = self.propose(operation, server)
        if self._pending is not None:
            self.commit()
        return outcome


class TableScorer:
    """Full-mapping objective scoring against the compiled tables.

    For algorithms that price complete candidate mappings (genetic
    genomes, branch-and-bound leaves, random samples): the same result
    as ``cost_model.objective(Deployment(...))`` without constructing a
    throwaway :class:`~repro.core.mapping.Deployment`, without the two
    O(M) validation passes, and with every ``Tproc`` division and route
    lookup amortised into the shared
    :class:`~repro.core.compiled.CompiledInstance`.

    Parameters
    ----------
    cost_model:
        The cost model defining the objective.
    operations:
        Genome order: ``genome[i]`` is the server of ``operations[i]``.
        Defaults to the workflow's operation order.
    """

    def __init__(
        self,
        cost_model: CostModel,
        operations: Sequence[str] | None = None,
    ):
        self.cost_model = cost_model
        self.compiled = cost_model.compiled
        compiled = self.compiled
        ops = (
            tuple(operations)
            if operations is not None
            else compiled.op_names
        )
        if sorted(ops) != sorted(compiled.op_names):
            raise DeploymentError(
                "scorer operation order must cover exactly the workflow's "
                "operations"
            )
        self.operations: tuple[str, ...] = ops
        self._index = {name: i for i, name in enumerate(ops)}
        # genome position of each compiled op index, so a genome converts
        # to a server vector with one list comprehension
        self._genome_pos: tuple[int, ...] = tuple(
            self._index[name] for name in compiled.op_names
        )
        #: Number of genomes scored (diagnostics).
        self.evaluations = 0

    def components(
        self, genome: Sequence[str]
    ) -> tuple[float, float, float]:
        """``(execution_time, time_penalty, objective)`` of *genome*."""
        compiled = self.compiled
        self.evaluations += 1
        server_index = compiled.server_index
        servers = [server_index[genome[pos]] for pos in self._genome_pos]
        penalty = compiled.penalty(compiled.load_values(servers))
        execution = compiled.execution_from(compiled.forward_pass(servers))
        migration = compiled.migration_cost(servers)
        return (
            execution,
            penalty,
            compiled.objective_value(execution, penalty, migration),
        )

    def objective(self, genome: Sequence[str]) -> float:
        """The scalar objective of *genome* (cheapest entry point)."""
        return self.components(genome)[2]

    def score_mapping(self, mapping: Mapping[str, str]) -> float:
        """The scalar objective of a complete ``{op: server}`` dict."""
        return self.objective([mapping[name] for name in self.operations])
