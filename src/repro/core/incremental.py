"""Incremental move evaluation for deployment search.

Every search algorithm in this repository explores the *move*
neighbourhood -- relocate one operation to another server -- but the
:class:`~repro.core.cost.CostModel` prices each candidate from scratch:
two O(M) validation passes, a full load recompute and a complete forward
pass over the DAG, even though a single move only perturbs the moved
operation's region. This module provides the cheap per-candidate
evaluation that makes search over deployment spaces tractable at scale:

:class:`MoveEvaluator`
    Attaches once to a ``(CostModel, Deployment)`` pair -- validating a
    single time -- and answers ``propose(op, server)`` in time
    proportional to the *affected region*: a precomputed per-``(op,
    server)`` ``Tproc`` table, the router's per-server-pair
    transmission-time table, O(1) running-sum load deltas (the penalty
    statistic itself is O(N) for ``mad``/``std``-style modes because the
    mean shifts), and a dirty-region forward pass that recomputes
    ``finish()`` only for the moved operation's descendants.

:class:`TableScorer`
    Full-mapping scoring against the same tables, for algorithms that
    evaluate complete candidate mappings (genetic genomes,
    branch-and-bound leaves, the 32 000-sample quality protocol) --
    no throwaway ``Deployment`` construction, no validation passes.

Both are guarded by an exact-equivalence contract: for any reachable
state, :attr:`MoveEvaluator.objective` and :meth:`TableScorer.objective`
agree with :meth:`CostModel.evaluate` (the property tests assert 1e-9;
in practice the forward pass is bit-identical because every term is
computed from the same operands in the same order, and only the
running-sum load totals may drift by ulps over very long move sequences
-- bounded by a periodic resync).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import networkx as nx

from repro.core.cost import CostBreakdown, CostModel
from repro.core.mapping import Deployment
from repro.core.workflow import NodeKind
from repro.exceptions import DeploymentError

__all__ = ["MoveEvaluator", "MoveOutcome", "TableScorer"]

#: Commits between full load-table resyncs (bounds floating-point drift
#: of the running sums; the forward pass needs no resync -- it is exact).
DEFAULT_RESYNC_INTERVAL = 256


@dataclass(frozen=True)
class MoveOutcome:
    """The evaluation of one proposed move.

    Attributes
    ----------
    operation, server:
        The proposed move: relocate *operation* onto *server*.
    previous_server:
        Where the operation currently lives.
    objective, execution_time, time_penalty:
        The cost the deployment would have *after* the move.
    delta:
        ``objective - current objective`` (negative improves).
    """

    operation: str
    server: str
    previous_server: str
    objective: float
    execution_time: float
    time_penalty: float
    delta: float


class _Tables:
    """Shared precomputation for the evaluator and the scorer."""

    def __init__(self, cost_model: CostModel):
        workflow = cost_model.workflow
        network = cost_model.network
        self.cost_model = cost_model
        self.router = cost_model.router
        self.op_names: tuple[str, ...] = workflow.operation_names
        self.server_names: tuple[str, ...] = network.server_names
        self.order: tuple[str, ...] = cost_model._order
        self.exits: tuple[str, ...] = workflow.exits
        power = {name: network.server(name).power_hz for name in self.server_names}
        self.power = power
        self.server_pos = {name: i for i, name in enumerate(self.server_names)}
        # per-(op, server) Tproc table: cycles / power, precomputed once
        self.tproc: dict[str, dict[str, float]] = {
            op.name: {s: op.cycles / power[s] for s in self.server_names}
            for op in workflow
        }
        # probability-weighted cycles per op (the Load(s) numerator terms)
        self.wcycles: dict[str, float] = {
            op.name: op.cycles * cost_model.node_probability(op.name)
            for op in workflow
        }
        self.node_prob: dict[str, float] = {
            name: cost_model.node_probability(name) for name in self.op_names
        }
        # per-op join bookkeeping, in the exact incoming order the cost
        # model's forward pass uses (source name, message size, weight)
        self.kind: dict[str, NodeKind] = {
            op.name: op.kind for op in workflow
        }
        self.incoming: dict[str, tuple[tuple[str, float, float], ...]] = {}
        self.outgoing: dict[str, tuple[tuple[str, float, float], ...]] = {}
        for name in self.op_names:
            self.incoming[name] = tuple(
                (m.source, m.size_bits, cost_model.message_probability(m))
                for m in workflow.incoming(name)
            )
            self.outgoing[name] = tuple(
                (m.target, m.size_bits, cost_model.message_probability(m))
                for m in workflow.outgoing(name)
            )
        # static per-node join weights (and their sum, for XOR joins) so
        # the forward pass does not rebuild them per arrival
        self.weights: dict[str, tuple[float, ...]] = {
            name: tuple(w for _, _, w in self.incoming[name])
            for name in self.op_names
        }
        self.weight_total: dict[str, float] = {
            name: sum(self.weights[name]) for name in self.op_names
        }
        # dirty regions are resolved lazily (see dirty_order)
        self._graph = workflow.graph
        self._order_index = {name: i for i, name in enumerate(self.order)}
        self._dirty_order: dict[str, tuple[str, ...]] = {}
        # memoised message delays: (src_server, dst_server, size) -> s.
        # The value is exactly Router.transmission_time's (deterministic),
        # so the memo is bit-identical; it exists to spare the hot
        # forward pass a function call and counter updates per arrival.
        # Bounded by |distinct message sizes| x |server pairs|.
        self.delay_cache: dict[tuple[str, str, float], float] = {}

    def dirty_order(self, operation: str) -> tuple[str, ...]:
        """The operation plus its descendants, in topological order.

        Moving *operation* changes its own ``Tproc`` and the ``Tcomm`` of
        every incident message; the only ``finish()`` values that can
        change are the operation's and its descendants'.
        """
        cached = self._dirty_order.get(operation)
        if cached is None:
            region = nx.descendants(self._graph, operation) | {operation}
            cached = tuple(
                sorted(region, key=self._order_index.__getitem__)
            )
            self._dirty_order[operation] = cached
        return cached

    def ready_time(
        self,
        name: str,
        arrivals: Sequence[float],
        weights: Sequence[float],
    ) -> float:
        """Join semantics over incoming arrival times (cost-model order)."""
        kind = self.kind[name]
        if kind is NodeKind.XOR_JOIN:
            total_weight = sum(weights)
            if total_weight <= 0:
                return max(arrivals)
            return (
                sum(w * a for w, a in zip(weights, arrivals)) / total_weight
            )
        if kind is NodeKind.OR_JOIN:
            return min(arrivals)
        return max(arrivals)

    def penalty(self, load_values: Sequence[float]) -> float:
        """The fairness statistic, mirroring ``_penalty_from_loads``."""
        values = list(load_values)
        if not values:
            return 0.0
        mean = sum(values) / len(values)
        deviations = [abs(v - mean) for v in values]
        mode = self.cost_model.penalty_mode
        if mode == "mad":
            return sum(deviations) / len(values)
        if mode == "sum_abs":
            return sum(deviations)
        if mode == "max":
            return max(deviations)
        # std
        return math.sqrt(sum(d * d for d in deviations) / len(values))


class MoveEvaluator:
    """Incremental objective evaluation over single-operation moves.

    Attaches to a ``(cost_model, deployment)`` pair; the deployment is
    validated exactly once, here. After attachment the evaluator owns
    the move lifecycle: query candidates with :meth:`propose` (no
    mutation), make the last proposal real with :meth:`commit` (which
    also updates the attached :class:`~repro.core.mapping.Deployment`
    in place), or do both with :meth:`apply`. Mutating the deployment
    behind the evaluator's back desynchronises it -- call
    :meth:`resync` if that cannot be avoided.

    Parameters
    ----------
    cost_model:
        The cost model defining the objective.
    deployment:
        A complete mapping; taken over (and kept in sync) by the
        evaluator.
    resync_interval:
        Commits between from-scratch load-table recomputations, bounding
        running-sum floating-point drift. ``0`` disables resyncs.
    """

    def __init__(
        self,
        cost_model: CostModel,
        deployment: Deployment,
        resync_interval: int = DEFAULT_RESYNC_INTERVAL,
    ):
        if resync_interval < 0:
            raise DeploymentError("resync_interval must be >= 0")
        deployment.validate(cost_model.workflow, cost_model.network)
        self.cost_model = cost_model
        self.deployment = deployment
        self.resync_interval = resync_interval
        self._tables = _Tables(cost_model)
        self._pending: tuple | None = None
        self._commits_since_resync = 0
        #: Number of :meth:`propose` evaluations answered (diagnostics).
        self.proposals = 0
        self.resync()

    # ------------------------------------------------------------------
    # state (re)construction
    # ------------------------------------------------------------------
    def resync(self) -> None:
        """Recompute every running table from the attached deployment.

        Called on attach, after external deployment mutation, and
        periodically (every *resync_interval* commits) to squash
        running-sum drift.
        """
        tables = self._tables
        self._servers: dict[str, str] = {
            name: self.deployment.server_of(name) for name in tables.op_names
        }
        # running per-server weighted-cycle sums, in cost-model load order
        cycles = {name: 0.0 for name in tables.server_names}
        for name in tables.op_names:
            cycles[self._servers[name]] += tables.wcycles[name]
        self._cycles = cycles
        self._finish: dict[str, float] = {}
        self._run_forward(self._finish, self._servers, tables.order)
        self._proc_total = sum(
            tables.node_prob[name]
            * tables.tproc[name][self._servers[name]]
            for name in tables.op_names
        )
        self._comm_total = self._full_comm_total()
        # load values as a positional list (cost-model server order) so a
        # proposal can patch two slots instead of rebuilding the list
        self._loads_list = self._load_values()
        self._refresh_scalars()
        self._pending = None
        self._commits_since_resync = 0

    def _full_comm_total(self) -> float:
        tables = self._tables
        total = 0.0
        for m in self.cost_model.workflow.messages:
            total += self.cost_model.message_probability(m) * (
                tables.router.transmission_time(
                    self._servers[m.source],
                    self._servers[m.target],
                    m.size_bits,
                )
            )
        return total

    def _refresh_scalars(self) -> None:
        tables = self._tables
        self._execution = max(
            self._finish[name] for name in tables.exits
        )
        self._penalty = tables.penalty(self._loads_list)
        self._objective = (
            self.cost_model.execution_weight * self._execution
            + self.cost_model.penalty_weight * self._penalty
        )

    def _load_values(self) -> list[float]:
        tables = self._tables
        return [
            self._cycles[name] / tables.power[name]
            for name in tables.server_names
        ]

    def _run_forward(
        self,
        finish: dict[str, float],
        servers: Mapping[str, str],
        order: Sequence[str],
        fallback: Mapping[str, float] | None = None,
    ) -> None:
        """The cost model's forward pass restricted to *order*.

        *fallback* supplies finish times of operations outside *order*
        (the clean region during a dirty-region recompute).
        """
        tables = self._tables
        router = tables.router
        delay_cache = tables.delay_cache
        incoming_of = tables.incoming
        tproc = tables.tproc
        kind_of = tables.kind
        xor_join = NodeKind.XOR_JOIN
        or_join = NodeKind.OR_JOIN
        for name in order:
            incoming = incoming_of[name]
            if not incoming:
                ready = 0.0
            else:
                target_server = servers[name]
                arrivals = []
                append = arrivals.append
                for source, size_bits, _ in incoming:
                    upstream = finish.get(source)
                    if upstream is None:
                        upstream = fallback[source]  # type: ignore[index]
                    key = (servers[source], target_server, size_bits)
                    delay = delay_cache.get(key)
                    if delay is None:
                        delay = router.transmission_time(*key)
                        delay_cache[key] = delay
                    append(upstream + delay)
                # join semantics inlined (see _Tables.ready_time)
                kind = kind_of[name]
                if kind is xor_join:
                    total = tables.weight_total[name]
                    if total <= 0:
                        ready = max(arrivals)
                    else:
                        ready = (
                            sum(
                                w * a
                                for w, a in zip(tables.weights[name], arrivals)
                            )
                            / total
                        )
                elif kind is or_join:
                    ready = min(arrivals)
                else:
                    ready = max(arrivals)
            finish[name] = ready + tproc[name][servers[name]]

    # ------------------------------------------------------------------
    # current state
    # ------------------------------------------------------------------
    @property
    def objective(self) -> float:
        """The scalar objective of the attached deployment."""
        return self._objective

    @property
    def execution_time(self) -> float:
        """``Texecute`` of the attached deployment."""
        return self._execution

    @property
    def time_penalty(self) -> float:
        """The fairness penalty of the attached deployment."""
        return self._penalty

    def response_times(self) -> dict[str, float]:
        """Per-operation finish times (a copy of the running table)."""
        return dict(self._finish)

    def loads(self) -> dict[str, float]:
        """Per-server load in seconds (from the running cycle sums)."""
        tables = self._tables
        return {
            name: self._cycles[name] / tables.power[name]
            for name in tables.server_names
        }

    def breakdown(self) -> CostBreakdown:
        """A full :class:`~repro.core.cost.CostBreakdown`, incrementally.

        Matches :meth:`CostModel.evaluate` on the attached deployment
        (to within running-sum drift, see the module docstring).
        """
        return CostBreakdown(
            execution_time=self._execution,
            time_penalty=self._penalty,
            objective=self._objective,
            loads=self.loads(),
            communication_time=self._comm_total,
            processing_time=self._proc_total,
            response_times=self.response_times(),
        )

    # ------------------------------------------------------------------
    # the move lifecycle
    # ------------------------------------------------------------------
    def propose(self, operation: str, server: str) -> MoveOutcome:
        """Price moving *operation* onto *server* without mutating.

        Cost: one dirty-region forward pass (the operation and its
        descendants) plus an O(N) penalty refresh; nothing else is
        touched. The result is cached so an immediately following
        :meth:`commit` is free.
        """
        tables = self._tables
        source = self._servers[operation]
        if server not in tables.power:
            raise DeploymentError(
                f"cannot move {operation!r}: unknown server {server!r}"
            )
        if server == source:
            outcome = MoveOutcome(
                operation, server, source,
                self._objective, self._execution, self._penalty, 0.0,
            )
            self._pending = None
            return outcome
        self.proposals += 1
        priced = self._price(operation, server, source)
        objective, execution, penalty = priced[0], priced[1], priced[2]
        outcome = MoveOutcome(
            operation,
            server,
            source,
            objective,
            execution,
            penalty,
            objective - self._objective,
        )
        self._pending = (outcome,) + priced[3:]
        return outcome

    def propose_value(self, operation: str, server: str) -> float:
        """Scalar objective of the move -- the scan-loop fast path.

        Same float results as :meth:`propose`, but nothing is packaged
        into a :class:`MoveOutcome` and nothing is cached for
        :meth:`commit` (any previously pending move is dropped). Use it
        for neighbourhood scans that only compare objectives and
        re-:meth:`propose` the winner.
        """
        source = self._servers[operation]
        if server not in self._tables.power:
            raise DeploymentError(
                f"cannot move {operation!r}: unknown server {server!r}"
            )
        self._pending = None
        if server == source:
            return self._objective
        self.proposals += 1
        return self._price(operation, server, source)[0]

    def _price(self, operation: str, server: str, source: str):
        """Dirty-region pricing core shared by propose/propose_value.

        Returns ``(objective, execution, penalty, new_finish,
        source_cycles, target_cycles, source_load, target_load)``.
        """
        tables = self._tables
        # dirty-region forward pass over {operation} U descendants; the
        # server map is patched in place for the pass (and restored)
        # rather than wrapped -- plain dict lookups in the hot loop
        servers_map = self._servers
        new_finish: dict[str, float] = {}
        servers_map[operation] = server
        try:
            self._run_forward(
                new_finish,
                servers_map,
                tables.dirty_order(operation),
                fallback=self._finish,
            )
        finally:
            servers_map[operation] = source
        old_finish = self._finish
        execution = max(
            (
                new_finish[name]
                if name in new_finish
                else old_finish[name]
            )
            for name in tables.exits
        )
        # O(1) running-sum load delta on the two affected servers; the
        # shared loads list is patched in place (and restored) so the
        # penalty statistic reads positionally, with no per-server branch
        weighted = tables.wcycles[operation]
        new_source_cycles = self._cycles[source] - weighted
        new_target_cycles = self._cycles[server] + weighted
        source_load = new_source_cycles / tables.power[source]
        target_load = new_target_cycles / tables.power[server]
        loads = self._loads_list
        i = tables.server_pos[source]
        j = tables.server_pos[server]
        old_i, old_j = loads[i], loads[j]
        loads[i] = source_load
        loads[j] = target_load
        try:
            penalty = tables.penalty(loads)
        finally:
            loads[i] = old_i
            loads[j] = old_j
        objective = (
            self.cost_model.execution_weight * execution
            + self.cost_model.penalty_weight * penalty
        )
        return (
            objective,
            execution,
            penalty,
            new_finish,
            new_source_cycles,
            new_target_cycles,
            source_load,
            target_load,
        )

    def commit(self) -> MoveOutcome:
        """Make the last :meth:`propose` real.

        Applies the cached dirty-region results, updates the running
        sums and assigns the move into the attached deployment. Raises
        when there is nothing to commit.
        """
        if self._pending is None:
            raise DeploymentError(
                "no pending move: call propose() before commit()"
            )
        (
            outcome,
            new_finish,
            source_cycles,
            target_cycles,
            source_load,
            target_load,
        ) = self._pending
        self._pending = None
        operation, server = outcome.operation, outcome.server
        self._servers[operation] = server
        self.deployment.assign(operation, server)
        self._finish.update(new_finish)
        self._cycles[outcome.previous_server] = source_cycles
        self._cycles[server] = target_cycles
        server_pos = self._tables.server_pos
        self._loads_list[server_pos[outcome.previous_server]] = source_load
        self._loads_list[server_pos[server]] = target_load
        # diagnostics totals: O(degree) message + O(1) processing deltas
        tables = self._tables
        old_tproc = tables.tproc[operation][outcome.previous_server]
        new_tproc = tables.tproc[operation][server]
        self._proc_total += tables.node_prob[operation] * (
            new_tproc - old_tproc
        )
        router = tables.router
        for src, size_bits, weight in tables.incoming[operation]:
            src_server = self._servers[src]
            self._comm_total += weight * (
                router.transmission_time(src_server, server, size_bits)
                - router.transmission_time(
                    src_server, outcome.previous_server, size_bits
                )
            )
        for dst, size_bits, weight in tables.outgoing[operation]:
            dst_server = self._servers[dst]
            self._comm_total += weight * (
                router.transmission_time(server, dst_server, size_bits)
                - router.transmission_time(
                    outcome.previous_server, dst_server, size_bits
                )
            )
        self._execution = outcome.execution_time
        self._penalty = outcome.time_penalty
        self._objective = outcome.objective
        self._commits_since_resync += 1
        if (
            self.resync_interval
            and self._commits_since_resync >= self.resync_interval
        ):
            self.resync()
        return outcome

    def apply(self, operation: str, server: str) -> MoveOutcome:
        """:meth:`propose` + :meth:`commit` in one call.

        A no-op (returned outcome has ``delta == 0``) when the operation
        already lives on *server*.
        """
        outcome = self.propose(operation, server)
        if self._pending is not None:
            self.commit()
        return outcome


class TableScorer:
    """Full-mapping objective scoring against precomputed tables.

    For algorithms that price complete candidate mappings (genetic
    genomes, branch-and-bound leaves, random samples): the same result
    as ``cost_model.objective(Deployment(...))`` without constructing a
    throwaway :class:`~repro.core.mapping.Deployment`, without the two
    O(M) validation passes, and with every ``Tproc`` division and route
    lookup amortised into shared tables.

    Parameters
    ----------
    cost_model:
        The cost model defining the objective.
    operations:
        Genome order: ``genome[i]`` is the server of ``operations[i]``.
        Defaults to the workflow's operation order.
    """

    def __init__(
        self,
        cost_model: CostModel,
        operations: Sequence[str] | None = None,
    ):
        self.cost_model = cost_model
        self._tables = _Tables(cost_model)
        ops = (
            tuple(operations)
            if operations is not None
            else self._tables.op_names
        )
        if sorted(ops) != sorted(self._tables.op_names):
            raise DeploymentError(
                "scorer operation order must cover exactly the workflow's "
                "operations"
            )
        self.operations: tuple[str, ...] = ops
        self._index = {name: i for i, name in enumerate(ops)}
        #: Number of genomes scored (diagnostics).
        self.evaluations = 0

    def components(
        self, genome: Sequence[str]
    ) -> tuple[float, float, float]:
        """``(execution_time, time_penalty, objective)`` of *genome*."""
        tables = self._tables
        self.evaluations += 1
        index = self._index
        router = tables.router
        # loads, accumulated in the cost model's operation order
        cycles = {name: 0.0 for name in tables.server_names}
        for name in tables.op_names:
            cycles[genome[index[name]]] += tables.wcycles[name]
        penalty = tables.penalty(
            [cycles[s] / tables.power[s] for s in tables.server_names]
        )
        # forward pass in the cost model's topological order
        delay_cache = tables.delay_cache
        kind_of = tables.kind
        xor_join = NodeKind.XOR_JOIN
        or_join = NodeKind.OR_JOIN
        finish: dict[str, float] = {}
        for name in tables.order:
            incoming = tables.incoming[name]
            server = genome[index[name]]
            if not incoming:
                ready = 0.0
            else:
                arrivals = []
                append = arrivals.append
                for source, size_bits, _ in incoming:
                    key = (genome[index[source]], server, size_bits)
                    delay = delay_cache.get(key)
                    if delay is None:
                        delay = router.transmission_time(*key)
                        delay_cache[key] = delay
                    append(finish[source] + delay)
                # join semantics inlined (see _Tables.ready_time)
                kind = kind_of[name]
                if kind is xor_join:
                    total = tables.weight_total[name]
                    if total <= 0:
                        ready = max(arrivals)
                    else:
                        ready = (
                            sum(
                                w * a
                                for w, a in zip(tables.weights[name], arrivals)
                            )
                            / total
                        )
                elif kind is or_join:
                    ready = min(arrivals)
                else:
                    ready = max(arrivals)
            finish[name] = ready + tables.tproc[name][server]
        execution = max(finish[name] for name in tables.exits)
        objective = (
            self.cost_model.execution_weight * execution
            + self.cost_model.penalty_weight * penalty
        )
        return execution, penalty, objective

    def objective(self, genome: Sequence[str]) -> float:
        """The scalar objective of *genome* (cheapest entry point)."""
        return self.components(genome)[2]

    def score_mapping(self, mapping: Mapping[str, str]) -> float:
        """The scalar objective of a complete ``{op: server}`` dict."""
        return self.objective([mapping[name] for name in self.operations])
