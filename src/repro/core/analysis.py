"""Structural and cost analysis of workflows.

Tools the deployment algorithms themselves do not need but users of the
library constantly do:

* :func:`workflow_statistics` -- node/kind counts, depth, fan-out,
  message-size summary;
* :func:`region_tree` -- the nesting structure of decision regions (a
  well-formed workflow decomposes into a tree of regions);
* :func:`critical_path` -- the chain of operations and messages that
  realises ``Texecute`` under a given deployment, i.e. where an
  optimiser should look next.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.core.validation import check_well_formed
from repro.core.workflow import NodeKind, Workflow
from repro.exceptions import MalformedWorkflowError

__all__ = [
    "workflow_statistics",
    "RegionNode",
    "region_tree",
    "extract_region",
    "critical_path",
    "CriticalPath",
]


def workflow_statistics(workflow: Workflow) -> dict[str, object]:
    """Structural summary statistics of *workflow*.

    Keys: ``operations``, ``messages``, ``kind_counts`` (per
    :class:`NodeKind` value), ``decision_fraction``, ``depth`` (longest
    chain in hops), ``max_fan_out``, ``max_fan_in``, ``total_cycles``,
    ``total_message_bits``, ``mean_message_bits``.
    """
    order = workflow.topological_order()
    depth: dict[str, int] = {}
    for name in order:
        predecessors = workflow.predecessors(name)
        depth[name] = (
            max((depth[p] for p in predecessors), default=-1) + 1
        )
    kind_counts: dict[str, int] = {}
    for operation in workflow:
        kind_counts[operation.kind.value] = (
            kind_counts.get(operation.kind.value, 0) + 1
        )
    sizes = [message.size_bits for message in workflow.messages]
    return {
        "operations": len(workflow),
        "messages": len(workflow.messages),
        "kind_counts": kind_counts,
        "decision_fraction": workflow.decision_fraction(),
        "depth": max(depth.values()) + 1 if depth else 0,
        "max_fan_out": max(
            (len(workflow.successors(n)) for n in workflow.operation_names),
            default=0,
        ),
        "max_fan_in": max(
            (len(workflow.predecessors(n)) for n in workflow.operation_names),
            default=0,
        ),
        "total_cycles": workflow.total_cycles,
        "total_message_bits": sum(sizes),
        "mean_message_bits": sum(sizes) / len(sizes) if sizes else 0.0,
    }


@dataclass
class RegionNode:
    """One decision region (or the virtual root) in the region tree.

    Attributes
    ----------
    split, join:
        Names of the delimiting nodes (``None`` on the root).
    kind:
        The split's :class:`NodeKind` (``None`` on the root).
    children:
        Regions strictly nested inside this one.
    """

    split: str | None = None
    join: str | None = None
    kind: NodeKind | None = None
    children: list["RegionNode"] = field(default_factory=list)

    @property
    def is_root(self) -> bool:
        """True for the virtual whole-workflow region."""
        return self.split is None

    def depth(self) -> int:
        """Nesting depth below this node (0 for a leaf)."""
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def count(self) -> int:
        """Number of real regions in this subtree."""
        own = 0 if self.is_root else 1
        return own + sum(child.count() for child in self.children)


def region_tree(workflow: Workflow) -> RegionNode:
    """The nesting tree of decision regions of a well-formed workflow.

    Raises :class:`MalformedWorkflowError` when the workflow does not
    validate (regions are only well defined then).
    """
    report = check_well_formed(workflow)
    if not report.ok:
        raise MalformedWorkflowError(
            f"workflow {workflow.name!r} is malformed:\n  "
            + "\n  ".join(report.problems)
        )
    order = workflow.topological_order()
    position = {name: i for i, name in enumerate(order)}
    # sort regions by split position; a region nests inside the closest
    # enclosing (split, join) interval
    regions = sorted(
        (
            (position[split], position[join], split, join)
            for split, join in report.matches.items()
        ),
    )
    root = RegionNode()
    stack: list[tuple[int, RegionNode]] = [(len(order), root)]
    for split_pos, join_pos, split, join in regions:
        node = RegionNode(
            split=split,
            join=join,
            kind=workflow.operation(split).kind,
        )
        while stack[-1][0] < join_pos:
            stack.pop()
        stack[-1][1].children.append(node)
        stack.append((join_pos, node))
    return root


def extract_region(workflow: Workflow, split_name: str) -> Workflow:
    """The decision region headed by *split_name* as its own workflow.

    Contains the split, its matched join, and everything on paths
    between them -- a well-formed single-entry/single-exit workflow of
    its own (useful for analysing or re-costing one region in
    isolation). Raises when *split_name* is not a matched split of a
    well-formed workflow.
    """
    report = check_well_formed(workflow)
    if not report.ok:
        raise MalformedWorkflowError(
            f"workflow {workflow.name!r} is malformed:\n  "
            + "\n  ".join(report.problems)
        )
    if split_name not in report.matches:
        raise MalformedWorkflowError(
            f"{split_name!r} is not a split node of {workflow.name!r}"
        )
    join_name = report.matches[split_name]

    # members = nodes reachable from the split that reach the join
    position = {
        name: i for i, name in enumerate(workflow.topological_order())
    }
    members: set[str] = set()

    def reaches_join(name: str, memo: dict[str, bool]) -> bool:
        if name == join_name:
            return True
        if name in memo:
            return memo[name]
        memo[name] = any(
            position[s] <= position[join_name]
            and reaches_join(s, memo)
            for s in workflow.successors(name)
        )
        return memo[name]

    memo: dict[str, bool] = {}
    frontier = [split_name]
    while frontier:
        name = frontier.pop()
        if name in members or name == join_name:
            continue
        if not reaches_join(name, memo):
            continue
        members.add(name)
        frontier.extend(workflow.successors(name))
    members.add(join_name)

    region = Workflow(f"{workflow.name}:{split_name}")
    for name in workflow.topological_order():
        if name in members:
            region.add_operation(workflow.operation(name))
    for message in workflow.messages:
        if message.source in members and message.target in members:
            region.add_transition(message)
    return region


@dataclass(frozen=True)
class CriticalPath:
    """The dominating chain of ``Texecute`` under one deployment.

    Attributes
    ----------
    operations:
        Operation names from an entry to the critical exit.
    length_s:
        ``Texecute`` itself (the finish time of the critical exit). For
        workflows without XOR joins this equals the chain's own
        processing + communication time; XOR joins take expectations, so
        there the chain is the *dominant contributor* and its raw sums
        may differ from ``length_s``.
    processing_s, communication_s:
        The chain's own compute and transfer time.
    """

    operations: tuple[str, ...]
    length_s: float
    processing_s: float
    communication_s: float


def critical_path(
    workflow: Workflow,
    deployment: Deployment,
    cost_model: CostModel,
) -> CriticalPath:
    """Trace the chain that determines the (expected) execution time.

    Follows the cost model's forward pass and backtracks through the
    argmax predecessor at every node. At an ``XOR`` join -- where the
    model takes an expectation rather than a max -- the branch with the
    largest *probability-weighted arrival contribution* is followed: the
    chain an optimiser should attack first to reduce the expectation.
    ``OR`` joins follow their earliest (winning) arrival.
    """
    finish = cost_model.response_times(deployment)
    best_pred: dict[str, str | None] = {}
    for name in workflow.topological_order():
        operation = workflow.operation(name)
        incoming = workflow.incoming(name)
        if not incoming:
            best_pred[name] = None
            continue

        def arrival(message) -> float:
            return finish[message.source] + cost_model.tcomm(
                message, deployment
            )

        if operation.kind is NodeKind.XOR_JOIN:
            chosen = max(
                incoming,
                key=lambda m: cost_model.message_probability(m) * arrival(m),
            )
        elif operation.kind is NodeKind.OR_JOIN:
            chosen = min(incoming, key=arrival)
        else:
            chosen = max(incoming, key=arrival)
        best_pred[name] = chosen.source

    exit_name = max(workflow.exits, key=finish.__getitem__)
    chain = [exit_name]
    while best_pred[chain[-1]] is not None:
        chain.append(best_pred[chain[-1]])  # type: ignore[arg-type]
    chain.reverse()

    processing = sum(
        cost_model.tproc(name, deployment) for name in chain
    )
    communication = sum(
        cost_model.tcomm(workflow.message(a, b), deployment)
        for a, b in zip(chain, chain[1:])
    )
    return CriticalPath(
        operations=tuple(chain),
        length_s=finish[exit_name],
        processing_s=processing,
        communication_s=communication,
    )
