"""Transition-aware objectives: migration costs relative to a baseline.

The paper optimises a *one-shot* deployment: every candidate mapping is
priced in isolation, as if the fleet sprang into existence already
arranged. A live provider re-deploys a running system, and every move
has a price -- the operation's accumulated state must be transferred to
the new server and the operation is unavailable while it drains and
restarts. An objective that ignores this oscillates freely under load
drift (the operator-placement-under-change setting of Benoit et al. and
the continuous "perfect place" re-evaluation of Luckeneder & Barker).

Two value objects make the objective transition-aware:

:class:`MigrationCostModel`
    The per-operation price of *moving*: a linear state-size model
    (``state_bits_base + state_bits_per_cycle * C(op)`` -- heavier
    operations carry more state) plus a fixed ``downtime_s`` per move.
    The transfer itself is priced through the same per-server-pair
    route-delay table every other cost term uses, so a move between
    co-located replicas is cheap and a move across a slow link is not.

:class:`TransitionObjective`
    The full objective specification: the classic
    ``execution_weight * Texecute + penalty_weight * TimePenalty``
    pair plus ``migration_weight * MigrationCost`` relative to a
    *baseline* :class:`~repro.core.mapping.FrozenDeployment` (the
    currently running placement). Every consumer -- the compiled IR,
    :class:`~repro.core.cost.CostModel`,
    :class:`~repro.core.incremental.MoveEvaluator`,
    :class:`~repro.core.batch.BatchEvaluator`, the algorithms and the
    fleet controller -- evaluates through :meth:`TransitionObjective.value`
    or the compiled artifact's tables derived from it.

**Behaviour-preservation contract.** With ``migration_weight == 0`` (the
default) the objective is *exactly* the historical scalar: the migration
term is gated out before any floating-point operation happens, so every
seeded deployment, fleet log and RNG stream is byte-identical to the
pre-refactor code path. The frozen-oracle property suites in
``tests/properties/`` pin this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.mapping import Deployment, FrozenDeployment
from repro.exceptions import DeploymentError

__all__ = ["MigrationCostModel", "TransitionObjective", "PENALTY_MODES"]

#: Supported fairness statistics for the ``TimePenalty`` term (the
#: canonical tuple; :mod:`repro.core.compiled` re-exports it):
#: ``"mad"`` -- mean absolute deviation from the average load;
#: ``"sum_abs"`` -- total absolute deviation;
#: ``"max"`` -- worst single-server deviation;
#: ``"std"`` -- population standard deviation of the loads.
PENALTY_MODES = ("mad", "sum_abs", "max", "std")


@dataclass(frozen=True)
class MigrationCostModel:
    """The price of relocating one operation to another server.

    A move transfers the operation's state and restarts it: the state
    size is a linear function of the operation's cycles (state tracks
    work), the transfer is priced over the route between the baseline
    server and the destination, and ``downtime_s`` is charged once per
    move regardless of distance. An operation that stays on its
    baseline server costs nothing.

    Parameters
    ----------
    state_bits_per_cycle:
        Bits of transferable state per cycle of ``C(op)`` (>= 0).
    state_bits_base:
        Fixed per-operation state floor in bits (>= 0) -- container
        image, runtime heap, connection tables.
    downtime_s:
        Seconds of unavailability charged per move (>= 0), independent
        of where the operation lands.
    """

    state_bits_per_cycle: float = 0.0
    state_bits_base: float = 0.0
    downtime_s: float = 0.0

    def __post_init__(self) -> None:
        for name in ("state_bits_per_cycle", "state_bits_base", "downtime_s"):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                raise DeploymentError(
                    f"MigrationCostModel.{name} must be finite and >= 0, "
                    f"got {value!r}"
                )

    def state_bits(self, cycles: float) -> float:
        """Transferable state of an operation with ``C(op) = cycles``."""
        return self.state_bits_base + self.state_bits_per_cycle * cycles

    def move_cost(self, delay_s: float) -> float:
        """The cost of one move whose state transfer takes *delay_s*.

        The single pricing expression shared by the full migration-table
        compile and the link-scoped row refresh -- one float operation
        order, so scoped refreshes are bit-identical to recompiles.
        """
        return self.downtime_s + delay_s


@dataclass(frozen=True)
class TransitionObjective:
    """The complete objective specification, optionally transition-aware.

    The classic pair (``execution_weight``, ``penalty_weight``,
    ``penalty_mode``) plus the transition term: ``migration_weight``
    times the summed :class:`MigrationCostModel` cost of every operation
    that left its *baseline* server. The specification is inert data; the
    :class:`~repro.core.compiled.CompiledInstance` built from it owns
    the derived per-``(op, server)`` migration-cost table.

    The objective is *transition-aware* -- the migration term
    participates in evaluation -- only when all three of
    :attr:`migration`, a positive :attr:`migration_weight` and a
    :attr:`baseline` are present (:attr:`transition_aware`). Otherwise
    every evaluation reduces exactly to the historical two-term scalar.

    Parameters
    ----------
    execution_weight, penalty_weight:
        Coefficients of the classic scalar objective (both >= 0).
    penalty_mode:
        Fairness statistic; one of :data:`PENALTY_MODES`.
    migration_weight:
        Coefficient of the migration term (>= 0; 0 disables it).
    migration:
        The per-operation move-cost model; required when
        ``migration_weight > 0``.
    baseline:
        The currently running placement that moves are priced against.
        A mutable :class:`~repro.core.mapping.Deployment` is snapshotted
        into a :class:`~repro.core.mapping.FrozenDeployment` on
        construction.
    use_probabilities:
        Weight costs by execution probabilities (section 3.4). ``None``
        auto-enables exactly when the workflow contains an ``XOR``
        split, as everywhere else.
    """

    execution_weight: float = 0.5
    penalty_weight: float = 0.5
    penalty_mode: str = "mad"
    migration_weight: float = 0.0
    migration: MigrationCostModel | None = None
    baseline: FrozenDeployment | None = None
    use_probabilities: bool | None = None

    def __post_init__(self) -> None:
        if self.penalty_mode not in PENALTY_MODES:
            raise DeploymentError(
                f"unknown penalty mode {self.penalty_mode!r}; expected one "
                f"of {PENALTY_MODES}"
            )
        if self.execution_weight < 0 or self.penalty_weight < 0:
            raise DeploymentError("objective weights must be >= 0")
        if not math.isfinite(self.migration_weight) or self.migration_weight < 0:
            raise DeploymentError(
                f"migration_weight must be finite and >= 0, got "
                f"{self.migration_weight!r}"
            )
        if self.migration_weight > 0 and self.migration is None:
            raise DeploymentError(
                "migration_weight > 0 requires a MigrationCostModel"
            )
        if isinstance(self.baseline, Deployment):
            object.__setattr__(self, "baseline", self.baseline.frozen())

    @property
    def transition_aware(self) -> bool:
        """True when the migration term participates in evaluation."""
        return (
            self.migration is not None
            and self.migration_weight > 0
            and self.baseline is not None
        )

    def with_baseline(
        self, deployment: Deployment | FrozenDeployment
    ) -> "TransitionObjective":
        """This specification re-anchored to *deployment* as baseline."""
        if isinstance(deployment, Deployment):
            deployment = deployment.frozen()
        return replace(self, baseline=deployment)

    def value(
        self, execution: float, penalty: float, migration: float = 0.0
    ) -> float:
        """The scalar objective from its components.

        The shared formula behind every consumer. With
        ``migration_weight == 0`` the migration term is gated out
        entirely -- the returned float is produced by exactly the
        historical two-term expression.
        """
        base = (
            self.execution_weight * execution
            + self.penalty_weight * penalty
        )
        if self.migration_weight > 0.0:
            return base + self.migration_weight * migration
        return base
