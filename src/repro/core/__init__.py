"""Core model: workflows, deployments, cost functions, constraints.

This package implements the formal model of section 2.2 of the paper:

* :mod:`repro.core.workflow` -- operations, messages and the workflow digraph
  ``W(O, E)``, including decision nodes (``AND``/``OR``/``XOR`` and their
  complements).
* :mod:`repro.core.builder` -- a fluent builder that produces well-formed
  workflows by construction.
* :mod:`repro.core.validation` -- the well-formedness checker for arbitrary
  digraphs.
* :mod:`repro.core.probability` -- execution-probability propagation used by
  the random-graph algorithms (section 3.4).
* :mod:`repro.core.mapping` -- the deployment mapping ``O -> S``.
* :mod:`repro.core.migration` -- transition-aware objectives:
  :class:`MigrationCostModel` (per-op move cost from state-size/downtime
  parameters) and :class:`TransitionObjective` (the full objective
  specification, with migration priced relative to a baseline
  :class:`FrozenDeployment`).
* :mod:`repro.core.compiled` -- the compiled problem IR
  (:class:`CompiledInstance`): one integer-indexed artifact per
  ``(workflow, network, cost parameters)`` triple, shared by the cost
  model, the move evaluators, the simulation engine and the fleet.
* :mod:`repro.core.cost` -- the cost model of Table 1 (``Tproc``, ``Tcomm``,
  ``Load``, ``TimePenalty``, ``Texecute``) and the weighted objective.
* :mod:`repro.core.incremental` -- the incremental move-evaluation engine
  (:class:`MoveEvaluator`, :class:`TableScorer`) that prices search moves
  in time proportional to the affected region.
* :mod:`repro.core.batch` -- the vectorized batch evaluation kernel
  (``BatchEvaluator``) that scores a whole ``(K, M)`` array of candidate
  deployments per NumPy call. Requires NumPy, so it is re-exported
  lazily here: every other ``repro.core`` import works without it.
* :mod:`repro.core.rng` -- the shared seed-coercion helper
  (:func:`coerce_rng`) behind every stochastic entry point.
* :mod:`repro.core.constraints` -- the optional user-constraint set ``C``.
"""

from repro.core.workflow import (
    NodeKind,
    Operation,
    Message,
    Workflow,
)
from repro.core.builder import WorkflowBuilder
from repro.core.validation import (
    WellFormednessReport,
    check_well_formed,
    assert_well_formed,
)
from repro.core.probability import execution_probabilities
from repro.core.mapping import Deployment, FrozenDeployment
from repro.core.migration import MigrationCostModel, TransitionObjective
from repro.core.compiled import (
    CompiledInstance,
    batch_evaluator_or_none,
    penalty_statistic,
)
from repro.core.cost import CostModel, CostBreakdown
from repro.core.rng import coerce_rng
from repro.core.incremental import MoveEvaluator, MoveOutcome, TableScorer
from repro.core.constraints import (
    Constraint,
    MaxExecutionTime,
    MaxServerLoad,
    MaxTimePenalty,
    ConstraintSet,
)

def __getattr__(name):
    """Lazy (PEP 562) re-export of the NumPy-only batch kernel.

    ``repro.core.BatchEvaluator``/``BatchScores`` import
    :mod:`repro.core.batch` on first access, so merely importing
    ``repro.core`` never requires NumPy.
    """
    if name in ("BatchEvaluator", "BatchScores"):
        from repro.core import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "NodeKind",
    "BatchEvaluator",
    "BatchScores",
    "batch_evaluator_or_none",
    "Operation",
    "Message",
    "Workflow",
    "WorkflowBuilder",
    "WellFormednessReport",
    "check_well_formed",
    "assert_well_formed",
    "execution_probabilities",
    "Deployment",
    "FrozenDeployment",
    "MigrationCostModel",
    "TransitionObjective",
    "CompiledInstance",
    "penalty_statistic",
    "CostModel",
    "CostBreakdown",
    "coerce_rng",
    "MoveEvaluator",
    "MoveOutcome",
    "TableScorer",
    "Constraint",
    "MaxExecutionTime",
    "MaxServerLoad",
    "MaxTimePenalty",
    "ConstraintSet",
]
