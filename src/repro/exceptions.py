"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. Subclasses identify the layer that
failed: workflow modelling, network modelling, deployment, algorithms, the
simulator, or the experiment harness.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class WorkflowError(ReproError):
    """A workflow is structurally invalid or an operation is misused."""


class MalformedWorkflowError(WorkflowError):
    """A workflow violates the well-formedness rules of the paper.

    Well-formedness (paper, section 2.2) requires that every decision node
    ``a`` has a complement node ``/a`` and that all paths leaving ``a``
    reach ``/a`` before leaving the region -- decision nodes behave like
    balanced parentheses.
    """


class UnknownOperationError(WorkflowError):
    """An operation name was referenced that the workflow does not contain."""


class DuplicateOperationError(WorkflowError):
    """An operation with the same name was added twice."""


class DuplicateTransitionError(WorkflowError):
    """A second message between the same ordered pair of operations.

    The paper assumes each ordered pair of operations exchanges at most one
    message, so a duplicate transition is a modelling error.
    """


class NetworkError(ReproError):
    """A server network is structurally invalid or a server is misused."""


class UnknownServerError(NetworkError):
    """A server name was referenced that the network does not contain."""


class DuplicateServerError(NetworkError):
    """A server with the same name was added twice."""


class DisconnectedNetworkError(NetworkError):
    """Two servers that must communicate have no connecting path."""


class TopologyFormatError(NetworkError):
    """A topology file could not be parsed into a :class:`ServerNetwork`.

    Raised by :func:`repro.scenarios.load_topology` for unreadable files,
    malformed SNDlib-style sections, unknown node references and invalid
    numeric fields -- anywhere the problem is "the topology document is
    bad" rather than "the network API was misused".
    """


class DeploymentError(ReproError):
    """A mapping of operations to servers is invalid or incomplete."""


class IncompleteMappingError(DeploymentError):
    """A cost evaluation was requested for a partially assigned mapping."""


class AlgorithmError(ReproError):
    """A deployment algorithm was configured or applied incorrectly."""


class UnsupportedTopologyError(AlgorithmError):
    """An algorithm received a workflow/network topology it cannot handle.

    The paper pairs algorithm families with configurations (Line-Line,
    Line-Bus, Graph-Bus); applying e.g. the Line-Line algorithm to a random
    graph raises this error rather than silently producing nonsense.
    """


class SearchSpaceTooLargeError(AlgorithmError):
    """The exhaustive algorithm refused to enumerate N**M configurations."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ExperimentError(ReproError):
    """The experiment harness was configured incorrectly."""


class ConstraintViolationError(DeploymentError):
    """A user constraint (section 2.2, set C) was violated by a mapping."""


class ServiceError(ReproError):
    """The fleet controller was misused or a scenario is invalid."""


class ValidationError(ReproError):
    """A persisted document or parameter set failed validation.

    Raised by the durable-service layer when a checkpoint file is
    missing, malformed, truncated, or fails its replay verification --
    anywhere the problem is "the data handed to us is bad" rather than
    "the API was misused" (:class:`ServiceError`).
    """
