"""Graphviz DOT export for workflows, networks and deployments.

Pure text generation (no graphviz dependency): feed the output to
``dot -Tsvg`` or any DOT viewer. Conventions:

* operational nodes are boxes; ``AND``/``OR``/``XOR`` splits and joins
  are diamonds labelled with their kind;
* workflow edges are labelled with the message size (and the branch
  probability for XOR branches) and get thicker with size;
* deployment export clusters operations into one subgraph per server.
"""

from __future__ import annotations

from repro.core.mapping import Deployment
from repro.core.workflow import Message, NodeKind, Workflow
from repro.network.topology import ServerNetwork

__all__ = ["workflow_to_dot", "network_to_dot", "deployment_to_dot"]


def _quote(identifier: str) -> str:
    escaped = identifier.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _format_bits(bits: float) -> str:
    if bits >= 1e6:
        return f"{bits / 1e6:.2f} Mbit"
    if bits >= 1e3:
        return f"{bits / 1e3:.1f} kbit"
    return f"{bits:g} bit"


def _format_cycles(cycles: float) -> str:
    if cycles >= 1e6:
        return f"{cycles / 1e6:g} Mcyc"
    return f"{cycles:g} cyc"


def _edge_label(message: Message) -> str:
    label = _format_bits(message.size_bits)
    if message.probability != 1.0:
        label += f"\\np={message.probability:g}"
    return label


def workflow_to_dot(workflow: Workflow) -> str:
    """DOT digraph of *workflow*."""
    lines = [f"digraph {_quote(workflow.name)} {{", "  rankdir=LR;"]
    for operation in workflow.operations:
        if operation.kind is NodeKind.OPERATIONAL:
            shape, label = "box", (
                f"{operation.name}\\n{_format_cycles(operation.cycles)}"
            )
        else:
            shape, label = "diamond", (
                f"{operation.name}\\n[{operation.kind.value}]"
            )
        lines.append(
            f"  {_quote(operation.name)} "
            f"[shape={shape}, label={_quote(label)}];"
        )
    for message in workflow.messages:
        lines.append(
            f"  {_quote(message.source)} -> {_quote(message.target)} "
            f"[label={_quote(_edge_label(message))}];"
        )
    lines.append("}")
    return "\n".join(lines)


def network_to_dot(network: ServerNetwork) -> str:
    """DOT (undirected) graph of *network*."""
    lines = [f"graph {_quote(network.name)} {{", "  layout=circo;"]
    for server in network.servers:
        label = f"{server.name}\\n{server.power_hz / 1e9:g} GHz"
        lines.append(
            f"  {_quote(server.name)} [shape=box3d, label={_quote(label)}];"
        )
    for link in network.links:
        label = f"{link.speed_bps / 1e6:g} Mbps"
        lines.append(
            f"  {_quote(link.a)} -- {_quote(link.b)} "
            f"[label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def deployment_to_dot(
    workflow: Workflow, network: ServerNetwork, deployment: Deployment
) -> str:
    """DOT digraph of *workflow* clustered by hosting server.

    Cross-server messages are drawn bold red (they cost ``Tcomm``);
    co-located ones stay thin and grey.
    """
    deployment.validate(workflow, network)
    lines = [f"digraph {_quote(workflow.name + '@' + network.name)} {{"]
    for index, server in enumerate(network.servers):
        operations = deployment.operations_on(server.name)
        lines.append(f"  subgraph cluster_{index} {{")
        label = f"{server.name} ({server.power_hz / 1e9:g} GHz)"
        lines.append(f"    label={_quote(label)};")
        for name in operations:
            operation = workflow.operation(name)
            shape = (
                "box" if operation.kind is NodeKind.OPERATIONAL else "diamond"
            )
            lines.append(f"    {_quote(name)} [shape={shape}];")
        lines.append("  }")
    for message in workflow.messages:
        crossing = deployment.server_of(message.source) != deployment.server_of(
            message.target
        )
        style = (
            'color=red, penwidth=2, label=' + _quote(_edge_label(message))
            if crossing
            else "color=grey"
        )
        lines.append(
            f"  {_quote(message.source)} -> {_quote(message.target)} "
            f"[{style}];"
        )
    lines.append("}")
    return "\n".join(lines)
