"""Lossless JSON encoding of workflows, networks and deployments.

The format is versioned (``"format"`` and ``"version"`` fields) and
deliberately explicit -- every operation, message, server and link is a
small object with named fields in the library's SI units, so files are
diffable and hand-editable. Decoding validates through the normal
constructors, so a corrupted file fails with the same typed exceptions
the API raises.

A *problem instance* bundle (:func:`dump_instance` /
:func:`load_instance`) stores a workflow, a network and optionally a
deployment in one document -- the unit the CLI operates on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.core.mapping import Deployment
from repro.core.workflow import Message, NodeKind, Operation, Workflow
from repro.exceptions import ReproError
from repro.network.topology import Link, Server, ServerNetwork

__all__ = [
    "workflow_to_dict",
    "workflow_from_dict",
    "network_to_dict",
    "network_from_dict",
    "deployment_to_dict",
    "deployment_from_dict",
    "dump_instance",
    "load_instance",
    "dump_document",
    "load_document",
]

FORMAT_VERSION = 1


class CodecError(ReproError):
    """A document does not decode to a valid object."""


def _require(document: Mapping[str, Any], field: str, expected: str) -> Any:
    try:
        return document[field]
    except (KeyError, TypeError):
        raise CodecError(
            f"{expected} document is missing required field {field!r}"
        ) from None


def _check_format(document: Mapping[str, Any], expected: str) -> None:
    actual = _require(document, "format", expected)
    if actual != expected:
        raise CodecError(
            f"expected a {expected!r} document, got format {actual!r}"
        )
    version = document.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise CodecError(
            f"unsupported {expected} format version {version!r} "
            f"(this library writes version {FORMAT_VERSION})"
        )


# ----------------------------------------------------------------------
# workflow
# ----------------------------------------------------------------------
def workflow_to_dict(workflow: Workflow) -> dict[str, Any]:
    """Encode *workflow* as a JSON-compatible dict."""
    return {
        "format": "workflow",
        "version": FORMAT_VERSION,
        "name": workflow.name,
        "operations": [
            {
                "name": op.name,
                "cycles": op.cycles,
                "kind": op.kind.value,
            }
            for op in workflow.operations
        ],
        "messages": [
            {
                "source": message.source,
                "target": message.target,
                "size_bits": message.size_bits,
                "probability": message.probability,
            }
            for message in workflow.messages
        ],
    }


def workflow_from_dict(document: Mapping[str, Any]) -> Workflow:
    """Decode a workflow; raises :class:`CodecError` on malformed input."""
    _check_format(document, "workflow")
    workflow = Workflow(str(_require(document, "name", "workflow")))
    for entry in _require(document, "operations", "workflow"):
        kind_value = entry.get("kind", NodeKind.OPERATIONAL.value)
        try:
            kind = NodeKind(kind_value)
        except ValueError:
            raise CodecError(
                f"unknown operation kind {kind_value!r}"
            ) from None
        workflow.add_operation(
            Operation(
                str(_require(entry, "name", "operation")),
                float(_require(entry, "cycles", "operation")),
                kind,
            )
        )
    for entry in _require(document, "messages", "workflow"):
        workflow.add_transition(
            Message(
                str(_require(entry, "source", "message")),
                str(_require(entry, "target", "message")),
                float(_require(entry, "size_bits", "message")),
                float(entry.get("probability", 1.0)),
            )
        )
    return workflow


# ----------------------------------------------------------------------
# network
# ----------------------------------------------------------------------
def network_to_dict(network: ServerNetwork) -> dict[str, Any]:
    """Encode *network* as a JSON-compatible dict."""
    return {
        "format": "network",
        "version": FORMAT_VERSION,
        "name": network.name,
        "topology_kind": network.topology_kind,
        "servers": [
            {"name": server.name, "power_hz": server.power_hz}
            for server in network.servers
        ],
        "links": [
            {
                "a": link.a,
                "b": link.b,
                "speed_bps": link.speed_bps,
                "propagation_s": link.propagation_s,
            }
            for link in network.links
        ],
    }


def network_from_dict(document: Mapping[str, Any]) -> ServerNetwork:
    """Decode a server network; raises :class:`CodecError` on bad input."""
    _check_format(document, "network")
    network = ServerNetwork(
        str(_require(document, "name", "network")),
        topology_kind=str(document.get("topology_kind", "custom")),
    )
    for entry in _require(document, "servers", "network"):
        network.add_server(
            Server(
                str(_require(entry, "name", "server")),
                float(_require(entry, "power_hz", "server")),
            )
        )
    for entry in _require(document, "links", "network"):
        network.add_link(
            Link(
                str(_require(entry, "a", "link")),
                str(_require(entry, "b", "link")),
                float(_require(entry, "speed_bps", "link")),
                float(entry.get("propagation_s", 0.0)),
            )
        )
    return network


# ----------------------------------------------------------------------
# deployment
# ----------------------------------------------------------------------
def deployment_to_dict(deployment: Deployment) -> dict[str, Any]:
    """Encode *deployment* as a JSON-compatible dict."""
    return {
        "format": "deployment",
        "version": FORMAT_VERSION,
        "assignments": deployment.as_dict(),
    }


def deployment_from_dict(document: Mapping[str, Any]) -> Deployment:
    """Decode a deployment; raises :class:`CodecError` on bad input."""
    _check_format(document, "deployment")
    assignments = _require(document, "assignments", "deployment")
    if not isinstance(assignments, Mapping):
        raise CodecError("deployment assignments must be an object")
    return Deployment({str(k): str(v) for k, v in assignments.items()})


# ----------------------------------------------------------------------
# on-disk documents
# ----------------------------------------------------------------------
def dump_document(path: str | Path, document: Mapping[str, Any]) -> Path:
    """Write *document* to *path* in the library's canonical JSON form.

    Canonical means sorted keys, two-space indent and a trailing
    newline -- every persisted artifact (instance bundles, fleet
    checkpoints) diffs cleanly and byte-identically regardless of the
    writer's dict insertion order.
    """
    target = Path(path)
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    return target


def load_document(
    path: str | Path, expected: str | None = None
) -> dict[str, Any]:
    """Read a JSON document; optionally check its ``format`` field.

    Missing files and malformed JSON both raise :class:`CodecError`
    (with the path in the message), so callers never see a raw
    ``OSError``/``JSONDecodeError`` traceback for a bad file argument.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise CodecError(f"{path}: cannot read ({exc})") from None
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CodecError(f"{path}: not valid JSON ({exc})") from None
    if not isinstance(document, dict):
        raise CodecError(f"{path}: expected a JSON object at top level")
    if expected is not None:
        _check_format(document, expected)
    return document


# ----------------------------------------------------------------------
# problem-instance bundles
# ----------------------------------------------------------------------
def dump_instance(
    path: str | Path,
    workflow: Workflow,
    network: ServerNetwork,
    deployment: Deployment | None = None,
) -> None:
    """Write a workflow/network(/deployment) bundle to *path* as JSON."""
    document: dict[str, Any] = {
        "format": "instance",
        "version": FORMAT_VERSION,
        "workflow": workflow_to_dict(workflow),
        "network": network_to_dict(network),
    }
    if deployment is not None:
        document["deployment"] = deployment_to_dict(deployment)
    dump_document(path, document)


def load_instance(
    path: str | Path,
) -> tuple[Workflow, ServerNetwork, Deployment | None]:
    """Read a bundle written by :func:`dump_instance`."""
    document = load_document(path, "instance")
    workflow = workflow_from_dict(_require(document, "workflow", "instance"))
    network = network_from_dict(_require(document, "network", "instance"))
    deployment = None
    if "deployment" in document:
        deployment = deployment_from_dict(document["deployment"])
    return workflow, network, deployment
