"""Serialization: JSON round-trips and Graphviz DOT export.

* :mod:`repro.io.json_codec` -- lossless JSON encode/decode for
  workflows, server networks and deployments, so problem instances and
  solutions can be stored, diffed and shipped between tools (including
  the :mod:`repro.cli` command line).
* :mod:`repro.io.dot` -- Graphviz DOT text for workflows (decision nodes
  shaped by kind, edges weighted by message size), networks, and
  deployments (operations clustered by server).
"""

from repro.io.json_codec import (
    workflow_to_dict,
    workflow_from_dict,
    network_to_dict,
    network_from_dict,
    deployment_to_dict,
    deployment_from_dict,
    dump_instance,
    load_instance,
    dump_document,
    load_document,
)
from repro.io.dot import workflow_to_dot, network_to_dot, deployment_to_dot

__all__ = [
    "workflow_to_dict",
    "workflow_from_dict",
    "network_to_dict",
    "network_from_dict",
    "deployment_to_dict",
    "deployment_from_dict",
    "dump_instance",
    "load_instance",
    "dump_document",
    "load_document",
    "workflow_to_dot",
    "network_to_dot",
    "deployment_to_dot",
]
