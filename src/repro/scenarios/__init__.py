"""Real-topology scenario layer: file loaders and geo-region factories.

ROADMAP item 3's substrate story: instead of the synthetic line/bus/
star/mesh factories, build :class:`~repro.network.topology.
ServerNetwork`s from the shapes real evaluations use --

* :mod:`repro.scenarios.loader` -- :func:`load_topology` for
  SNDlib-style text files (and repro JSON network documents), plus the
  bundled Abilene backbone fixture (:func:`abilene_network`);
* :mod:`repro.scenarios.geo` -- seeded geo-distributed cloud-region
  fleets built from an inter-region latency matrix
  (:func:`geo_network` / :func:`random_geo_network`).

Everything here produces *heterogeneous* networks -- per-link speeds
and propagation delays -- which the routing stack treats as the general
case end to end (see :mod:`repro.network.routing` and
:meth:`repro.core.compiled.CompiledInstance.invalidate_routes`). The
fleet-facing scenario *packs* that replay dynamic events over these
substrates live in :mod:`repro.service.scenarios`.
"""

from repro.scenarios.geo import (
    GEO_REGIONS,
    REGION_LATENCY_MS,
    geo_network,
    random_geo_network,
    region_of,
    region_servers,
)
from repro.scenarios.loader import (
    SIGNAL_SPEED_M_PER_S,
    abilene_network,
    load_topology,
    parse_topology,
)

__all__ = [
    "GEO_REGIONS",
    "REGION_LATENCY_MS",
    "SIGNAL_SPEED_M_PER_S",
    "abilene_network",
    "geo_network",
    "load_topology",
    "parse_topology",
    "random_geo_network",
    "region_of",
    "region_servers",
]
