"""Topology file loading: SNDlib-style text and repro JSON networks.

Real evaluation substrates -- Abilene and its SNDlib siblings, the
topologies B-JointSP and the VNF-placement literature run on -- are
published as node/link files with geographic coordinates and link
capacities, not as Python factory calls. :func:`load_topology` turns
such a file into a :class:`~repro.network.topology.ServerNetwork` with
*heterogeneous* links: per-link speeds from the capacity column and
per-link propagation delays from great-circle distance at ~2/3 c (the
signal speed in optical fibre), or from an explicit per-link delay
column when the file provides one.

The supported text format is a pragmatic subset of SNDlib's native
format (which is itself the shape of the bundled ``data/abilene.txt``
fixture)::

    NODES (
      name ( longitude latitude )
      ...
    )
    LINKS (
      id ( endpoint-a endpoint-b ) capacity [delay_ms]
      ...
    )

``#`` starts a comment; blank lines are ignored. Files whose content
starts with ``{`` (or whose name ends in ``.json``) are instead decoded
as the repro JSON network document of
:mod:`repro.io.json_codec` -- so instance bundles and topology packs go
through the same entry point. Malformed input of either flavour raises
:class:`~repro.exceptions.TopologyFormatError` (a
:class:`~repro.exceptions.NetworkError`), never a bare traceback.

Node capacities (server powers) are not part of SNDlib files -- there,
CPU capacity is a user-supplied parameter set uniformly across nodes --
so the loader applies *default_power_hz* to every server; callers that
want heterogeneous powers perturb them afterwards via
:meth:`~repro.network.topology.ServerNetwork.replace_server` (see the
``abilene`` fleet scenario).
"""

from __future__ import annotations

import json
import math
from importlib import resources
from pathlib import Path

from repro.exceptions import ReproError, TopologyFormatError
from repro.network.topology import Link, Server, ServerNetwork

__all__ = [
    "SIGNAL_SPEED_M_PER_S",
    "abilene_network",
    "load_topology",
    "parse_topology",
]

#: Propagation speed assumed for links with geographic endpoints:
#: roughly 2/3 of c, the standard figure for light in optical fibre.
SIGNAL_SPEED_M_PER_S = 2.0e8

#: Mean Earth radius used for great-circle distances.
_EARTH_RADIUS_M = 6_371_000.0


def great_circle_m(
    lon_a: float, lat_a: float, lon_b: float, lat_b: float
) -> float:
    """Great-circle distance in metres between two lon/lat points."""
    phi_a, phi_b = math.radians(lat_a), math.radians(lat_b)
    d_phi = phi_b - phi_a
    d_lambda = math.radians(lon_b - lon_a)
    h = (
        math.sin(d_phi / 2.0) ** 2
        + math.cos(phi_a) * math.cos(phi_b) * math.sin(d_lambda / 2.0) ** 2
    )
    return 2.0 * _EARTH_RADIUS_M * math.asin(math.sqrt(min(1.0, h)))


def _fail(line_no: int, line: str, reason: str) -> TopologyFormatError:
    return TopologyFormatError(
        f"topology line {line_no}: {reason} (in {line.strip()!r})"
    )


def _float(token: str, line_no: int, line: str, field: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise _fail(
            line_no, line, f"{field} must be a number, got {token!r}"
        ) from None


def parse_topology(
    text: str,
    *,
    default_power_hz: float = 2e9,
    capacity_unit_bps: float = 1e6,
    name: str = "topology",
) -> ServerNetwork:
    """Parse SNDlib-style *text* into a connected ``ServerNetwork``.

    See the module docstring for the format. *capacity_unit_bps* scales
    the capacity column into bits/second (the default reads Mbps, the
    SNDlib convention); an optional trailing ``delay_ms`` on a link line
    overrides the distance-derived propagation delay.
    """
    nodes: dict[str, tuple[float, float]] = {}
    links: list[tuple[str, str, float, float]] = []
    section: str | None = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        upper = line.upper()
        if upper.startswith("NODES") or upper.startswith("LINKS"):
            if section is not None:
                raise _fail(line_no, line, "unterminated previous section")
            if not line.rstrip().endswith("("):
                raise _fail(line_no, line, "section header must end with '('")
            section = "nodes" if upper.startswith("NODES") else "links"
            continue
        if line == ")":
            if section is None:
                raise _fail(line_no, line, "')' outside any section")
            section = None
            continue
        tokens = line.replace("(", " ( ").replace(")", " ) ").split()
        if section == "nodes":
            # name ( lon lat )
            if (
                len(tokens) != 5
                or tokens[1] != "("
                or tokens[4] != ")"
            ):
                raise _fail(
                    line_no, line, "expected 'name ( lon lat )'"
                )
            node = tokens[0]
            if node in nodes:
                raise _fail(line_no, line, f"duplicate node {node!r}")
            nodes[node] = (
                _float(tokens[2], line_no, line, "longitude"),
                _float(tokens[3], line_no, line, "latitude"),
            )
        elif section == "links":
            # id ( a b ) capacity [delay_ms]
            if (
                len(tokens) not in (6, 7)
                or tokens[1] != "("
                or tokens[4] != ")"
            ):
                raise _fail(
                    line_no,
                    line,
                    "expected 'id ( a b ) capacity [delay_ms]'",
                )
            a, b = tokens[2], tokens[3]
            for endpoint in (a, b):
                if endpoint not in nodes:
                    raise _fail(
                        line_no, line, f"unknown endpoint {endpoint!r}"
                    )
            capacity = _float(tokens[5], line_no, line, "capacity")
            if not (math.isfinite(capacity) and capacity > 0):
                raise _fail(
                    line_no, line, f"capacity must be > 0, got {capacity!r}"
                )
            if len(tokens) == 7:
                delay_ms = _float(tokens[6], line_no, line, "delay_ms")
                if not (math.isfinite(delay_ms) and delay_ms >= 0):
                    raise _fail(
                        line_no,
                        line,
                        f"delay_ms must be >= 0, got {delay_ms!r}",
                    )
                propagation_s = delay_ms / 1e3
            else:
                lon_a, lat_a = nodes[a]
                lon_b, lat_b = nodes[b]
                propagation_s = (
                    great_circle_m(lon_a, lat_a, lon_b, lat_b)
                    / SIGNAL_SPEED_M_PER_S
                )
            links.append(
                (a, b, capacity * capacity_unit_bps, propagation_s)
            )
        else:
            raise _fail(line_no, line, "content outside NODES/LINKS sections")
    if section is not None:
        raise TopologyFormatError(
            f"topology {name!r}: unterminated {section.upper()} section"
        )
    if not nodes:
        raise TopologyFormatError(
            f"topology {name!r}: no NODES section (or it is empty)"
        )
    network = ServerNetwork(name, topology_kind="custom")
    for node in nodes:
        network.add_server(Server(node, default_power_hz))
    for a, b, speed_bps, propagation_s in links:
        if network.has_link(a, b):
            raise TopologyFormatError(
                f"topology {name!r}: duplicate link between {a!r} and {b!r}"
            )
        network.add_link(Link(a, b, speed_bps, propagation_s))
    network.require_connected()
    return network


def load_topology(
    path,
    *,
    default_power_hz: float = 2e9,
    capacity_unit_bps: float = 1e6,
    name: str | None = None,
) -> ServerNetwork:
    """Load a topology file into a connected ``ServerNetwork``.

    SNDlib-style text (see :func:`parse_topology`) or a repro JSON
    network document -- dispatched on a leading ``{`` or a ``.json``
    suffix. *name* defaults to the file's stem. Unreadable or malformed
    files raise :class:`~repro.exceptions.TopologyFormatError`.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise TopologyFormatError(
            f"cannot read topology file {str(path)!r}: {exc}"
        ) from exc
    label = name if name is not None else (path.stem or "topology")
    stripped = text.lstrip()
    if stripped.startswith("{") or path.suffix.lower() == ".json":
        from repro.io.json_codec import network_from_dict

        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TopologyFormatError(
                f"topology file {str(path)!r} is not valid JSON: {exc}"
            ) from exc
        try:
            network = network_from_dict(document)
        except ReproError as exc:
            raise TopologyFormatError(
                f"topology file {str(path)!r}: {exc}"
            ) from exc
        network.require_connected()
        if name is not None:
            network.name = name
        return network
    return parse_topology(
        text,
        default_power_hz=default_power_hz,
        capacity_unit_bps=capacity_unit_bps,
        name=label,
    )


def abilene_network(
    *,
    default_power_hz: float = 2e9,
    name: str = "abilene",
) -> ServerNetwork:
    """The bundled Abilene backbone: 12 PoPs, 15 heterogeneous links.

    Loaded from the package-data fixture ``data/abilene.txt`` (shipped
    in the wheel), with OC-192 trunk speeds and distance-derived
    propagation delays; every server gets *default_power_hz* (SNDlib
    leaves node capacity to the user). Sparse and genuinely multi-hop:
    the canonical real-topology counterpoint to the paper's line/bus.
    """
    fixture = resources.files("repro.scenarios").joinpath(
        "data/abilene.txt"
    )
    return parse_topology(
        fixture.read_text(),
        default_power_hz=default_power_hz,
        name=name,
    )
