"""Geo-distributed cloud-region networks from latency matrices.

"Optimal Deployment of Geographically Distributed Workflow Engines on
the Cloud" and "Uncovering the Perfect Place" (see PAPERS.md) study
workflow placement across cloud *regions*, where the dominant cost is
the measured wide-area round-trip time between regions, not link
bandwidth. This module builds :class:`~repro.network.topology.
ServerNetwork`s from exactly that shape of data: a symmetric
inter-region one-way-latency matrix in milliseconds plus a per-region
server count.

Servers are named ``{region}/{i}`` so region membership stays parseable
from the name alone -- :func:`region_of` is the inverse, and the
fleet's ``RegionOutage`` event uses it to find a region's servers.
Within a region servers see a fast LAN (high speed, sub-millisecond
propagation); across regions every server pair gets a backbone link
whose propagation delay is the matrix entry. The result is a complete
but *heterogeneous* graph: the router may well relay through a third
region when the triangle inequality fails in the measured matrix.

:func:`random_geo_network` is the seeded factory the scenario packs
use: region subset, per-server powers and latency jitter all derive
from one RNG, so a ``(regions, seed)`` pair is a reproducible fleet.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.rng import coerce_rng
from repro.exceptions import NetworkError
from repro.network.topology import Link, Server, ServerNetwork

__all__ = [
    "GEO_REGIONS",
    "REGION_LATENCY_MS",
    "geo_network",
    "random_geo_network",
    "region_of",
    "region_servers",
]

#: Eight cloud regions, the default pool of the seeded factory.
GEO_REGIONS: tuple[str, ...] = (
    "us-east",
    "us-west",
    "eu-west",
    "eu-central",
    "ap-northeast",
    "ap-southeast",
    "sa-east",
    "af-south",
)

#: Symmetric one-way inter-region latency in milliseconds -- the shape
#: of the public cloud-ping matrices (values are representative, not a
#: live measurement). Entries are stored once per unordered pair.
REGION_LATENCY_MS: dict[frozenset[str], float] = {
    frozenset(pair): latency
    for pair, latency in {
        ("us-east", "us-west"): 34.0,
        ("us-east", "eu-west"): 38.0,
        ("us-east", "eu-central"): 45.0,
        ("us-east", "ap-northeast"): 75.0,
        ("us-east", "ap-southeast"): 100.0,
        ("us-east", "sa-east"): 57.0,
        ("us-east", "af-south"): 113.0,
        ("us-west", "eu-west"): 65.0,
        ("us-west", "eu-central"): 73.0,
        ("us-west", "ap-northeast"): 52.0,
        ("us-west", "ap-southeast"): 85.0,
        ("us-west", "sa-east"): 87.0,
        ("us-west", "af-south"): 140.0,
        ("eu-west", "eu-central"): 12.0,
        ("eu-west", "ap-northeast"): 105.0,
        ("eu-west", "ap-southeast"): 87.0,
        ("eu-west", "sa-east"): 92.0,
        ("eu-west", "af-south"): 80.0,
        ("eu-central", "ap-northeast"): 112.0,
        ("eu-central", "ap-southeast"): 80.0,
        ("eu-central", "sa-east"): 100.0,
        ("eu-central", "af-south"): 88.0,
        ("ap-northeast", "ap-southeast"): 35.0,
        ("ap-northeast", "sa-east"): 130.0,
        ("ap-northeast", "af-south"): 150.0,
        ("ap-southeast", "sa-east"): 160.0,
        ("ap-southeast", "af-south"): 125.0,
        ("sa-east", "af-south"): 170.0,
    }.items()
}


def region_of(server_name: str) -> str:
    """The region prefix of ``{region}/{i}``-style server names.

    A name without a ``/`` is its own region, so region-level events
    degrade gracefully on non-geo fleets (a ``RegionOutage("S3")`` on a
    bus is just a single-server outage).
    """
    return server_name.split("/", 1)[0]


def region_servers(network: ServerNetwork, region: str) -> tuple[str, ...]:
    """Names of *network*'s servers whose :func:`region_of` is *region*."""
    return tuple(
        name for name in network.server_names if region_of(name) == region
    )


def _pair_latency_ms(
    latency_ms: Mapping[frozenset[str], float], a: str, b: str
) -> float:
    try:
        return latency_ms[frozenset((a, b))]
    except KeyError:
        raise NetworkError(
            f"no inter-region latency between {a!r} and {b!r} in the "
            f"latency matrix"
        ) from None


def geo_network(
    regions: Sequence[str] | None = None,
    *,
    servers_per_region: int = 2,
    latency_ms: Mapping[frozenset[str], float] | None = None,
    power_hz: float | Mapping[str, float] = 2e9,
    backbone_bps: float = 1e9,
    lan_bps: float = 10e9,
    lan_propagation_s: float = 2e-4,
    name: str = "geo",
) -> ServerNetwork:
    """A geo-region fleet from an inter-region latency matrix.

    Parameters
    ----------
    regions:
        Region names (default: the first four of :data:`GEO_REGIONS`).
        Every unordered pair must appear in *latency_ms*.
    servers_per_region:
        Servers per region, named ``{region}/{1..k}``.
    latency_ms:
        Symmetric one-way latency per unordered region pair, in
        milliseconds (default: :data:`REGION_LATENCY_MS`).
    power_hz:
        One power for every server, or a per-server-name mapping.
    backbone_bps, lan_bps, lan_propagation_s:
        Link speeds of the wide-area backbone and the intra-region LAN,
        and the LAN's (sub-millisecond) propagation delay.
    """
    if regions is None:
        regions = GEO_REGIONS[:4]
    regions = tuple(regions)
    if len(set(regions)) != len(regions):
        raise NetworkError(f"duplicate regions in {regions!r}")
    if servers_per_region < 1:
        raise NetworkError("servers_per_region must be >= 1")
    if latency_ms is None:
        latency_ms = REGION_LATENCY_MS
    network = ServerNetwork(name, topology_kind="custom")
    names: list[tuple[str, str]] = []  # (region, server name)
    for region in regions:
        for i in range(1, servers_per_region + 1):
            server = f"{region}/{i}"
            power = (
                power_hz[server]
                if isinstance(power_hz, Mapping)
                else float(power_hz)
            )
            network.add_server(Server(server, power))
            names.append((region, server))
    for index, (region_a, a) in enumerate(names):
        for region_b, b in names[index + 1 :]:
            if region_a == region_b:
                network.add_link(Link(a, b, lan_bps, lan_propagation_s))
            else:
                one_way = _pair_latency_ms(latency_ms, region_a, region_b)
                network.add_link(Link(a, b, backbone_bps, one_way / 1e3))
    return network


def random_geo_network(
    num_regions: int = 4,
    *,
    servers_per_region: int = 2,
    seed=None,
    power_range_hz: tuple[float, float] = (1e9, 4e9),
    latency_jitter: float = 0.1,
    backbone_bps: float = 1e9,
    lan_bps: float = 10e9,
    name: str = "geo-random",
) -> ServerNetwork:
    """A seeded heterogeneous geo fleet (the scenario-pack factory).

    Draws *num_regions* regions from :data:`GEO_REGIONS` (in order),
    samples every server's power uniformly from *power_range_hz* and
    jitters each inter-region latency by ``+- latency_jitter``
    (multiplicative) -- all from one RNG coerced via
    :func:`repro.core.rng.coerce_rng`, so the same seed always yields
    the same fleet.
    """
    if not 1 <= num_regions <= len(GEO_REGIONS):
        raise NetworkError(
            f"num_regions must lie in [1, {len(GEO_REGIONS)}], "
            f"got {num_regions!r}"
        )
    if not 0.0 <= latency_jitter < 1.0:
        raise NetworkError("latency_jitter must lie in [0, 1)")
    rng = coerce_rng(seed)
    regions = GEO_REGIONS[:num_regions]
    jittered: dict[frozenset[str], float] = {}
    for index, region_a in enumerate(regions):
        for region_b in regions[index + 1 :]:
            base = _pair_latency_ms(REGION_LATENCY_MS, region_a, region_b)
            factor = 1.0 + latency_jitter * rng.uniform(-1.0, 1.0)
            jittered[frozenset((region_a, region_b))] = base * factor
    powers = {
        f"{region}/{i}": rng.uniform(*power_range_hz)
        for region in regions
        for i in range(1, servers_per_region + 1)
    }
    return geo_network(
        regions,
        servers_per_region=servers_per_region,
        latency_ms=jittered,
        power_hz=powers,
        backbone_bps=backbone_bps,
        lan_bps=lan_bps,
        name=name,
    )
